//! Fleet-scale solve grid: the sparse potential-descent path at 10³
//! devices.
//!
//! Builds seeded synthetic fleets over a devices × registries grid
//! (calibrated continuum archetypes with splitmix64-jittered
//! heterogeneity, regional mirrors at seeded site rates), schedules a
//! generated dataflow on each, and prints the solve-time grid. The
//! headline cell is the ISSUE's acceptance bar: the 1,000-device /
//! 10-registry fleet must reach a *verified* equilibrium (sampled
//! unilateral-deviation check) in under a second.
//!
//! Schedules are byte-deterministic in the fleet seed; the timing
//! columns are wall-clock and vary run to run (the criterion curve
//! lives in `benches/nash_mesh.rs`, recorded in PERF.md).
//!
//! Run with `cargo run --release --example fleet_scale`.

use deep::core::{continuum, DeepScheduler, Scheduler, DEFAULT_SPARSE_THRESHOLD};
use deep::dataflow::DagGenerator;
use std::time::Instant;

fn main() {
    let devices = [50usize, 200, 1000];
    let registries = [2usize, 5, 10];
    let gen = DagGenerator { stages: 5, width: (2, 4), ..DagGenerator::default() };
    let app = gen.generate(42);
    let sched = DeepScheduler::paper();

    println!("Fleet-scale solve grid — app `{}` ({} microservices)", app.name(), app.len());
    println!("sparse threshold: |R|·|D| ≥ {DEFAULT_SPARSE_THRESHOLD}\n");
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>12} {:>12}",
        "devices", "registries", "path", "build", "solve", "verify"
    );

    for &d in &devices {
        for &r in &registries {
            let t0 = Instant::now();
            let mut tb = continuum::synthetic_fleet_testbed(d, r, 42);
            tb.publish_application(&app);
            let build = t0.elapsed();

            let path = if tb.registry_choices().len() * tb.devices.len() >= sched.sparse_threshold {
                "sparse"
            } else {
                "dense"
            };
            let t1 = Instant::now();
            let schedule = sched.schedule(&app, &tb);
            let solve = t1.elapsed();

            let t2 = Instant::now();
            let verified = sched.is_equilibrium_sampled(&app, &tb, &schedule, 32, 7);
            let verify = t2.elapsed();
            assert!(verified, "{d} devices / {r} registries: sampled deviation check failed");

            println!("{d:>8} {r:>10} {path:>8} {build:>12.2?} {solve:>12.2?} {verify:>12.2?}");

            if d == 1000 && r == 10 {
                let total = solve + verify;
                println!(
                    "\nheadline: 1,000-device / 10-registry fleet solved + verified in {total:.2?} \
                     ({})\n",
                    if total.as_secs_f64() < 1.0 { "under the 1 s bar" } else { "OVER the 1 s bar" }
                );
            }
        }
    }
}
