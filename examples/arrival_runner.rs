//! Arrival runner: drive a TOML scenario's `[[arrivals]]` timeline
//! through the online plane and compare re-equilibration policies.
//!
//! Loads a scenario file (see `docs/SCENARIOS.md` and `scenarios/`),
//! expands its sweep axes, and runs every expanded cell twice:
//!
//! * **full-resolve** — the periodic baseline that re-solves the whole
//!   mesh game from scratch on every admission;
//! * **incremental-repair** — warm-starts best-response dynamics from
//!   the incumbent equilibrium, falling back to a full re-solve only
//!   past the deviation budget or across a fault-window boundary.
//!
//! The headline is repair quality at a fraction of the solve work:
//! repair must hold steady-state mean `Td` within 2% of the baseline
//! while re-solving the full game only where the fault landscape
//! forces it (the `full-solves` column). Per-admission solve *time* is
//! wall-clock and lives in the `benches/arrival_soak.rs` criterion
//! bench — this example's output is byte-deterministic across runs,
//! like every other example in the workspace.
//!
//! Run with `cargo run --release --example arrival_runner` (defaults to
//! the checked-in arrival soak) or pass a scenario path:
//! `cargo run --release --example arrival_runner -- scenarios/arrival_soak.toml`.

use deep::arrival::{run_plane, ArrivalPlane, RepairPolicy};
use deep::scenario::Scenario;

fn main() {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/arrival_soak.toml");
    let path = std::env::args().nth(1).unwrap_or_else(|| default.to_string());
    let scenario = match Scenario::load(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "Scenario `{}` — {}, {} replication(s) from seed {}, {} arrival stream(s):",
        scenario.name,
        scenario.app,
        scenario.replications,
        scenario.seed,
        scenario.arrivals.len()
    );
    println!(
        "{:>28} {:>18} {:>10} {:>10} {:>9} {:>7} {:>11} {:>10}",
        "cell",
        "policy",
        "mean Td[s]",
        "p95 Td[s]",
        "react[s]",
        "queue",
        "full-solves",
        "deviations"
    );
    for cell in scenario.expand() {
        let full = run_plane(
            &cell,
            &ArrivalPlane { policy: RepairPolicy::Full, ..ArrivalPlane::default() },
        );
        let repair = run_plane(&cell, &ArrivalPlane::default());
        for outcome in [&full, &repair] {
            println!(
                "{:>28} {:>18} {:>10.1} {:>10.1} {:>9.1} {:>7.2} {:>6}/{:<4} {:>10}",
                cell.name,
                outcome.policy,
                outcome.mean_td(),
                outcome.percentile_td(95.0),
                outcome.mean_time_to_react(),
                outcome.mean_queue_depth(),
                outcome.jobs.iter().filter(|j| j.repair.full_solve).count(),
                outcome.jobs.len(),
                outcome.total_deviations()
            );
        }
        let drift = (repair.mean_td() / full.mean_td() - 1.0) * 100.0;
        println!("{:>28} repair drift {:+.2}%, {} fallback(s)", "", drift, repair.fallbacks());
    }
    println!(
        "\nBoth policies admit the same seeded arrival timeline at the same wave\n\
         barriers; only the per-admission re-equilibration differs. Repair keeps\n\
         the incumbent equilibrium warm and pays best-response deviations only\n\
         where new contention demands them — a full re-solve reprices every\n\
         microservice of every replica from scratch each time (per-admission\n\
         solve time: `cargo bench --bench arrival_soak`)."
    );
}
