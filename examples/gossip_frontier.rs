//! Gossip discovery frontier: view size × propagation rounds at fleet
//! scale.
//!
//! Builds a seeded 240-device synthetic continuum fleet, warms six
//! cloud-tier holders with every image of a generated dataflow (both
//! platforms), and pins the application to the edge tier — so every
//! placement pays a pull, and the 80 MB/s peer plane beats every
//! ~8–12 MB/s registry route whenever the puller *knows* a warm holder.
//! Discovery is the only variable: the omniscient snapshot plane (the
//! PR 5 baseline) against gossip over a grid of bounded view sizes and
//! epidemic rounds per wave. Scheduler and executor run the *same*
//! seeded plane, so each cell's equilibrium prices exactly the partial
//! views its run will materialize — under-propagated gossip shows up as
//! wave-one pulls routed to registries, and the realized Td measures
//! what bounded discovery costs.
//!
//! The headline is the ISSUE's acceptance bar: a bounded view of at
//! most 8 holders must land within 5 % of the omniscient snapshot's
//! equilibrium Td — bounded views are cheap because the warm holders
//! dominate every by-size selection; it is *propagation* (rounds per
//! wave) that buys the convergence.
//!
//! Run with `cargo run --release --example gossip_frontier`.

use deep::core::{continuum, DeepScheduler, Scheduler};
use deep::dataflow::{Application, DagGenerator, DeviceClass};
use deep::netsim::DeviceId;
use deep::registry::Platform;
use deep::simulator::{execute, ExecutorConfig, PeerDiscovery, RegistryChoice, Testbed};

const DEVICES: usize = 240;
const REGISTRIES: usize = 4;
const FLEET_SEED: u64 = 42;
const FANOUT: u32 = 3;
/// Cloud-tier fleet slots (every 16th device is a cloud clone, plus the
/// original continuum cloud at id 2) — the warm holders.
const HOLDERS: [usize; 6] = [2, 15, 31, 47, 63, 79];

/// Warm each holder with every image of `app`, both platforms — fleet
/// caches able to serve any edge puller's architecture.
fn warm_holders(tb: &mut Testbed, app: &Application) {
    for &j in &HOLDERS {
        let holder = DeviceId(j);
        let mut cache = tb.device(holder).cache.clone();
        for id in app.ids() {
            let ms = app.microservice(id);
            let entry = tb.entry(app.name(), &ms.name).unwrap().clone();
            for platform in [Platform::Amd64, Platform::Arm64] {
                tb.pull_mesh(RegistryChoice::Hub, holder, 1.0)
                    .session(RegistryChoice::Hub.registry_id())
                    .pull(&entry.hub_reference(platform), platform, &mut cache)
                    .unwrap();
            }
        }
        tb.device_mut(holder).cache = cache;
        // The frontier is meaningless if the holder evicted anything:
        // every advertised layer must really be servable.
        for id in app.ids() {
            let ms = app.microservice(id);
            let entry = tb.entry(app.name(), &ms.name).unwrap();
            for platform in [Platform::Amd64, Platform::Arm64] {
                for layer in &entry.manifest(platform).layers {
                    assert!(
                        tb.device(holder).cache.contains(&layer.digest),
                        "holder {j} evicted a warm layer — shrink the app"
                    );
                }
            }
        }
    }
}

fn realized(app: &Application, discovery: PeerDiscovery) -> (f64, f64) {
    let mut tb = continuum::synthetic_fleet_testbed(DEVICES, REGISTRIES, FLEET_SEED);
    tb.publish_application(app);
    warm_holders(&mut tb, app);
    let scheduler =
        DeepScheduler { peer_sharing: true, peer_discovery: discovery, ..DeepScheduler::default() };
    let schedule = scheduler.schedule(app, &tb);
    let cfg =
        ExecutorConfig { peer_sharing: true, peer_discovery: discovery, ..Default::default() };
    let (report, _) = execute(&mut tb, app, &schedule, &cfg).unwrap();
    (report.microservices.iter().map(|m| m.td.as_f64()).sum(), report.peer_downloaded_mb())
}

fn main() {
    let gen = DagGenerator { stages: 5, width: (2, 4), ..DagGenerator::default() };
    let base = gen.generate(42);
    // Pin every microservice to the edge tier: the warm cloud holders
    // can serve bytes but never host, so the peer plane is always in
    // play and discovery quality is the only variable.
    let pins: Vec<(&str, DeviceClass)> =
        base.ids().map(|id| (base.microservice(id).name.as_str(), DeviceClass::Edge)).collect();
    let app = continuum::pin_microservices(&base, &pins);
    println!(
        "Gossip discovery frontier — app `{}` ({} microservices, edge-pinned), {DEVICES} devices \
         / {REGISTRIES} registries, {} warm cloud holders, fanout {FANOUT}",
        app.name(),
        app.len(),
        HOLDERS.len()
    );

    let (omniscient, omni_peer_mb) = realized(&app, PeerDiscovery::Snapshot);
    assert!(omni_peer_mb > 1_000.0, "the omniscient equilibrium must ride the peer plane");
    println!("\nomniscient snapshot plane: Td {omniscient:.2} s, {omni_peer_mb:.0} MB via peers\n");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>9}",
        "view_size", "rounds", "Td (s)", "peer MB", "vs omni"
    );

    let mut best_small_view = f64::INFINITY;
    for &view_size in &[2u32, 4, 8] {
        for &rounds_per_wave in &[1u32, 2, 4] {
            let (td, peer_mb) = realized(
                &app,
                PeerDiscovery::Gossip { fanout: FANOUT, view_size, rounds_per_wave },
            );
            let delta = (td / omniscient - 1.0) * 100.0;
            println!(
                "{view_size:>10} {rounds_per_wave:>8} {td:>12.2} {peer_mb:>12.0} {delta:>+8.2}%"
            );
            if view_size <= 8 {
                best_small_view = best_small_view.min(td);
            }
        }
    }

    let best_delta = (best_small_view / omniscient - 1.0) * 100.0;
    println!(
        "\nheadline: best bounded view (≤ 8 holders) Td {best_small_view:.2} s, {best_delta:+.2} % \
         vs omniscient ({})",
        if best_delta.abs() <= 5.0 { "within the 5 % bar" } else { "OVER the 5 % bar" }
    );
    assert!(
        best_delta.abs() <= 5.0,
        "a bounded view of ≤ 8 holders must reach within 5 % of the omniscient snapshot \
         (got {best_delta:+.2} %)"
    );
}
