//! Drive both case studies through the Kubernetes-like orchestrator:
//! pod lifecycle, admission, and the warm-cache effect of a second
//! rollout.
//!
//! Run with `cargo run --example fleet_orchestration`.

use deep::core::{calibration, DeepScheduler, Scheduler};
use deep::dataflow::apps;
use deep::orchestrator::{EventKind, Orchestrator};
use deep::simulator::ExecutorConfig;

fn main() {
    let mut testbed = calibration::calibrated_testbed();
    let mut orch = Orchestrator::new(&testbed);
    let cfg = ExecutorConfig::default();

    for app in apps::case_studies() {
        println!("== rolling out {} ==", app.name());
        let report = orch
            .submit(&mut testbed, &app, |a, tb| DeepScheduler::paper().schedule(a, tb), &cfg)
            .expect("case studies are admissible");
        for (spec, status) in &report.pods {
            println!(
                "  {:40} node {} registry {:10} phase {:?} (finished at {})",
                spec.name,
                spec.node,
                spec.registry.to_string(),
                status.phase,
                status.finished_at.expect("succeeded pods have a finish time"),
            );
        }
        println!("  -> energy {} makespan {}\n", report.run.total_energy(), report.run.makespan);
    }

    // A second rollout of the text app: every layer is already cached on
    // the devices, so deployments are nearly free.
    let app = apps::text_processing();
    println!("== second rollout of {} (warm caches) ==", app.name());
    let report = orch
        .submit(&mut testbed, &app, |a, tb| DeepScheduler::paper().schedule(a, tb), &cfg)
        .expect("resubmission succeeds");
    let downloaded: f64 = report.run.microservices.iter().map(|m| m.downloaded_mb).sum();
    println!(
        "  downloaded {downloaded:.0} MB (cold run moved ~6900 MB), makespan {}",
        report.run.makespan
    );
    println!(
        "  orchestrator events so far: {} ({} pods succeeded)",
        report.events.len(),
        report.events.of_kind(EventKind::PodSucceeded).count()
    );
}
