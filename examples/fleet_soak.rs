//! Fleet-scale arrival soak: gossip discovery and scenario-priced
//! admissions at 800 devices — the headline artifact for PR 10's
//! delta-gossip and batched-draw-pricing rebuild.
//!
//! Builds a seeded 800-device synthetic fleet (calibrated continuum
//! archetypes, 3-registry mesh), warms it with one executed deployment,
//! then drives the two hot paths the delta rebuild targets and prints
//! their wall-clock:
//!
//! * **Wave barriers** — the epidemic advertise-and-spread step the
//!   executor pays at every wave. The first barriers do real delta
//!   exchange work while the fleet converges; once nothing moves, the
//!   stale counters collapse every exchange to an O(1) no-op, so the
//!   steady-state rows should sit orders of magnitude below the first.
//! * **Admissions** — one arriving application priced and placed under
//!   the scenario-priced scheduler (Monte-Carlo `E[Td]`, 64 draws, flaky
//!   regional) with gossip discovery on, both as a cold full solve and
//!   as an incremental repair from the incumbent equilibrium.
//!
//! Wall-clock varies run to run; the criterion curves live in
//! `benches/gossip_rounds.rs` and `benches/soak_scale.rs` (PERF.md).
//!
//! Run with `cargo run --release --example fleet_soak`.

use deep::arrival::DEFAULT_DEVIATION_BUDGET;
use deep::core::{continuum, DeepScheduler, Scheduler};
use deep::dataflow::DagGenerator;
use deep::registry::{FaultRates, LayerCache};
use deep::simulator::{
    execute, ExecutorConfig, GossipPlane, PeerDiscovery, RegistryChoice, Schedule, DEVICE_MEDIUM,
};
use std::time::Instant;

const DEVICES: usize = 800;
const DRAWS: u32 = 64;
const DISCOVERY: PeerDiscovery =
    PeerDiscovery::Gossip { fanout: 3, view_size: 8, rounds_per_wave: 1 };

fn main() {
    let gen = DagGenerator { stages: 4, width: (2, 3), ..DagGenerator::default() };
    let warm_app = gen.generate(42);

    let t0 = Instant::now();
    let mut tb = continuum::synthetic_fleet_testbed(DEVICES, 3, 42);
    tb.publish_application(&warm_app);
    tb.fault_model = tb.fault_model.clone().with_source(
        RegistryChoice::Regional.registry_id(),
        FaultRates { fatal_per_pull: 0.2, transient_per_fetch: 0.1 },
    );
    println!("fleet: {DEVICES} devices, 3 registries (built in {:.2?})", t0.elapsed());

    // Warm the fleet: one executed deployment leaves real layer caches
    // for the epidemic to advertise.
    let warm = Schedule::uniform(warm_app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &warm_app, &warm, &ExecutorConfig::default()).expect("warm run executes");

    // --- Wave barriers: converging first rounds, then steady state. ---
    let caches: Vec<&LayerCache> = tb.devices.iter().map(|d| &d.cache).collect();
    let mut plane = GossipPlane::new(DEVICES, 3, 8, 1, 42);
    println!("\nwave barriers ({} devices, fanout 3, view 8):", DEVICES);
    println!("{:>6} {:>14} {:>12}", "wave", "barrier", "regime");
    for wave in 0..8 {
        let t = Instant::now();
        plane.barrier_round(&caches);
        let dt = t.elapsed();
        let regime = if wave < 2 { "converging" } else { "steady (unchanged fleet)" };
        println!("{wave:>6} {dt:>14.2?} {regime:>12}");
    }

    // --- Admissions: scenario-priced solve per arriving app. ---
    let scheduler = DeepScheduler {
        peer_sharing: true,
        peer_discovery: DISCOVERY,
        ..DeepScheduler::scenario_priced(DRAWS, 7)
    };
    println!("\nadmissions (scenario-priced, {DRAWS} draws, gossip discovery):");
    println!("{:>10} {:>6} {:>14} {:>14}", "arrival", "|MS|", "full solve", "repair");
    for (k, seed) in [7u64, 19, 31].into_iter().enumerate() {
        let app = gen.generate(seed);
        tb.publish_application(&app);
        let t_full = Instant::now();
        let incumbent = scheduler.schedule(&app, &tb);
        let full = t_full.elapsed();
        let t_rep = Instant::now();
        let repaired =
            scheduler.incremental_repair(&app, &tb, &incumbent, DEFAULT_DEVIATION_BUDGET);
        let repair = t_rep.elapsed();
        assert_eq!(repaired.schedule.len(), app.len(), "repair covers every microservice");
        println!("{k:>10} {:>6} {full:>14.2?} {repair:>14.2?}", app.len());
    }
    println!("\ndone — criterion curves: benches/gossip_rounds.rs, benches/soak_scale.rs");
}
