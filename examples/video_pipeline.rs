//! The video-processing case study end to end: DEEP scheduling, simulated
//! execution with energy instrumentation, per-microservice metrics and the
//! Table III distribution.
//!
//! Run with `cargo run --example video_pipeline`.

use deep::core::{calibration, distribution, DeepScheduler, Scheduler};
use deep::dataflow::{apps, stages};
use deep::simulator::{execute, ExecutorConfig, TraceKind};

fn main() {
    let app = apps::video_processing();

    println!("== Figure 2a: {} ==", app.name());
    for stage in stages(&app) {
        let names: Vec<&str> =
            stage.members.iter().map(|&id| app.microservice(id).name.as_str()).collect();
        println!("  stage {}: {}", stage.depth, names.join(", "));
    }

    let mut testbed = calibration::calibrated_testbed();
    let schedule = DeepScheduler::paper().schedule(&app, &testbed);

    println!("\n== Table III: deployment distribution under DEEP ==");
    print!(
        "{}",
        distribution::render_distribution(&distribution::distribution_table(&app, &schedule))
    );

    let cfg = ExecutorConfig { seed: 1, jitter: 0.02, ..Default::default() };
    let (report, trace) = execute(&mut testbed, &app, &schedule, &cfg).expect("schedule executes");

    println!("\n== per-microservice measurements (one seeded trial) ==");
    println!(
        "{:12} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "microservice", "Td [s]", "Tc [s]", "Tp [s]", "CT [s]", "EC [J]", "metered [J]"
    );
    for m in &report.microservices {
        println!(
            "{:12} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>11.1} {:>11.1}",
            m.name,
            m.td.as_f64(),
            m.tc.as_f64(),
            m.tp.as_f64(),
            m.ct().as_f64(),
            m.energy.as_f64(),
            m.metered_energy.as_f64(),
        );
    }
    println!(
        "\ntotal energy {} | makespan {} | monitoring events {}",
        report.total_energy(),
        report.makespan,
        trace.len()
    );
    let barriers = trace.of_kind(TraceKind::StageBarrierReleased).count();
    println!("stage barriers released: {barriers}");
    let heaviest = report.max_energy_microservice().expect("non-empty run");
    println!(
        "heaviest microservice (Fig. 3a's observation): {} at {}",
        heaviest.name, heaviest.energy
    );
}
