//! The MinIO-side of the regional registry: erasure-coded storage
//! surviving drive failures, and the healing flow.
//!
//! Run with `cargo run --example minio_durability`.

use deep::objectstore::{DriveSet, ErasureCoder};

fn main() {
    // MinIO-style 4+2 erasure set: any two drives may fail.
    let coder = ErasureCoder::minio_default();
    println!(
        "erasure set: {} data + {} parity shards, {:.2}x storage overhead",
        coder.data_shards(),
        coder.parity_shards(),
        coder.overhead()
    );

    let mut set = DriveSet::new(4, 2).expect("4+2 is a valid geometry");
    // Store a few "layer blobs" of the regional registry.
    let layers: Vec<(String, Vec<u8>)> = (0..5)
        .map(|i| {
            let name = format!("sha256:layer-{i}");
            let body: Vec<u8> = (0..64_000u32).map(|b| ((b * (i + 3)) % 251) as u8).collect();
            (name, body)
        })
        .collect();
    for (name, body) in &layers {
        set.put(name, body);
    }
    println!("stored {} blobs on {} drives", set.object_count(), set.drive_count());

    // Two drives die.
    set.fail_drive(1).unwrap();
    set.fail_drive(4).unwrap();
    println!("drives 1 and 4 failed ({} online)", set.online_count());
    for (name, body) in &layers {
        let recovered = set.get(name).expect("k survivors reconstruct");
        assert_eq!(&recovered, body);
    }
    println!("all blobs still readable via Reed-Solomon reconstruction");

    // Replace the drives and heal.
    set.replace_drive(1).unwrap();
    set.replace_drive(4).unwrap();
    let rebuilt = set.heal().expect("healing succeeds with k survivors");
    println!("replaced drives healed: {rebuilt} shards rebuilt");

    // Third failure after healing is survivable again.
    set.fail_drive(0).unwrap();
    set.fail_drive(2).unwrap();
    for (name, body) in &layers {
        assert_eq!(&set.get(name).expect("still recoverable"), body);
    }
    println!("post-heal redundancy verified: two fresh failures tolerated");
}
