//! The paper's announced future work, running: DEEP scheduling across a
//! cloud–edge continuum (two edge devices + one cloud server).
//!
//! Run with `cargo run --example cloud_continuum`.

use deep::core::continuum;
use deep::core::{DeepScheduler, Scheduler};
use deep::simulator::{ExecutorConfig, DEVICE_CLOUD};

fn main() {
    let tb = continuum::continuum_testbed();
    println!("continuum testbed devices:");
    for d in &tb.devices {
        println!("  {:8} {:?} {} cores, {} @ {}", d.name, d.class, d.cores, d.memory, d.mips);
    }

    println!("\nper-application DEEP schedules on the continuum:");
    for app in continuum::continuum_case_studies() {
        let schedule = DeepScheduler::paper().schedule(&app, &tb);
        println!("  {}:", app.name());
        for (id, p) in schedule.iter() {
            let marker = if p.device == DEVICE_CLOUD { " <- offloaded" } else { "" };
            println!(
                "    {:12} -> {:10} on {}{marker}",
                app.microservice(id).name,
                p.registry.to_string(),
                tb.device(p.device).name,
            );
        }
    }

    println!("\nedge-only vs continuum (energy and makespan):\n");
    let rows = continuum::compare(&ExecutorConfig::default());
    print!("{}", continuum::render(&rows));
    println!(
        "\nReading: the camera-pinned transcode stage stays at the edge; the \
         cloud takes the ML-heavy stages where its per-instruction energy \
         advantage beats the WAN transfer cost. Images reach the cloud from \
         Docker Hub (the CDN peers with the datacenter) rather than from the \
         lab's regional registry across its thin uplink."
    );
}
