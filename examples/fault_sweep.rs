//! Fault sweep: failure rate × registry count.
//!
//! How lossy does the regional registry have to get before pricing
//! failure probability into the deployment game pays, and how does the
//! answer change as regional mirrors widen the mesh (more failover
//! targets *and* more strategy alternatives)?
//!
//! The grid lives in `scenarios/fault_sweep.toml`: a `mirror-count` ×
//! `fault-rate` sweep that [`Scenario::expand`] unrolls into concrete
//! cells (first axis slowest, matching the loop nesting this example
//! used before the DSL existed — `tests/scenario_files.rs` pins the
//! file-driven grid to the hard-coded recipe byte-for-byte).
//!
//! For every cell the sweep schedules the text-processing app twice —
//! `DeepScheduler::paper()` (happy-path payoffs) and
//! `DeepScheduler::fault_aware()` (expected-Td payoffs under the
//! testbed's `FaultModel`) — then executes both schedules under the
//! *same* seeded fault plans and reports the realized mean deployment
//! time over the Monte-Carlo sweep. The margin column is the headline:
//! what rerouting risk-weighted bytes off the lossy regional buys.
//!
//! Run with `cargo run --release --example fault_sweep`. The tier-1
//! script smoke-runs every example, so this sweep executes on every
//! push.

use deep::core::{run_scenario, DeepScheduler, Scheduler};
use deep::scenario::{Scenario, Target};
use deep::simulator::RegistryChoice;

/// Mean over the scenario's seeded replications of the per-run summed
/// deployment time (the sweep's historical aggregate).
fn realized_mean_td(cell: &Scenario, scheduler: &dyn Scheduler) -> f64 {
    let outcome = run_scenario(cell, scheduler);
    let total: f64 = outcome
        .reports
        .iter()
        .map(|r| r.microservices.iter().map(|m| m.td.as_f64()).sum::<f64>())
        .sum();
    total / outcome.reports.len() as f64
}

fn main() {
    let scenario =
        Scenario::load(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/fault_sweep.toml"))
            .expect("checked-in sweep scenario parses");
    let app = scenario.application();
    let plans = scenario.replications;
    println!("Fault sweep — text-processing, {plans} seeded fault plans per cell, lossy regional:");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>8} {:>16}",
        "mirrors", "rate", "happy Td[s]", "aware Td[s]", "margin", "aware reg share"
    );
    for cell in scenario.expand() {
        let mirrors = cell.testbed.mirrors;
        let rate = cell
            .rates
            .iter()
            .find(|r| r.target == Target::Regional)
            .map_or(0.0, |r| r.fatal_per_pull);
        let tb = deep::core::scenario_testbed(&cell);
        let aware = DeepScheduler::fault_aware().schedule(&app, &tb);
        let happy_td = realized_mean_td(&cell, &DeepScheduler::paper());
        let aware_td = realized_mean_td(&cell, &DeepScheduler::fault_aware());
        let share = aware.iter().filter(|(_, p)| p.registry == RegistryChoice::Regional).count()
            as f64
            / app.len() as f64;
        println!(
            "{mirrors:>8} {rate:>8.2} {happy_td:>12.1} {aware_td:>12.1} {:>7.1}% {:>15.0}%",
            (1.0 - aware_td / happy_td) * 100.0,
            share * 100.0
        );
    }
    println!(
        "\nExpected shape: at rate 0 the schedules coincide (margin 0, the\n\
         zero-fault invariant); as the regional gets lossier the fault-aware\n\
         game moves its bytes to the hub — and, once mirrors exist, to the\n\
         reliable replicas — while the happy-path scheduler keeps paying\n\
         failover detection on every dead pull."
    );
}
