//! Fault sweep: failure rate × registry count.
//!
//! How lossy does the regional registry have to get before pricing
//! failure probability into the deployment game pays, and how does the
//! answer change as regional mirrors widen the mesh (more failover
//! targets *and* more strategy alternatives)?
//!
//! For every grid cell the sweep schedules the text-processing app twice
//! — `DeepScheduler::paper()` (happy-path payoffs) and
//! `DeepScheduler::fault_aware()` (expected-Td payoffs under the
//! testbed's `FaultModel`) — then executes both schedules under the
//! *same* seeded fault plans and reports the realized mean deployment
//! time over the Monte-Carlo sweep. The margin column is the headline:
//! what rerouting risk-weighted bytes off the lossy regional buys.
//!
//! Run with `cargo run --release --example fault_sweep`. The tier-1
//! script smoke-runs every example, so this sweep executes on every
//! push.

use deep::core::{calibrate, DeepScheduler, Scheduler};
use deep::dataflow::apps;
use deep::netsim::{Bandwidth, Seconds};
use deep::registry::{FaultModel, FaultRates, RetryPolicy};
use deep::simulator::{execute, ExecutorConfig, RegistryChoice, Schedule, Testbed};

/// Seeded fault plans per cell: enough for a stable mean while keeping
/// the smoke run fast.
const PLANS: u64 = 60;

/// A Docker-ish retry policy: a dead registry costs 10 + 20 + 40 = 70 s
/// of exhausted backoff before the client fails over.
fn retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 4, base_backoff: Seconds::new(10.0), ..Default::default() }
}

fn build_testbed(mirrors: usize, rate: f64) -> Testbed {
    let mut tb = Testbed::paper();
    calibrate(&mut tb);
    for k in 0..mirrors {
        // Regional replicas at other sites, slightly different routes —
        // reliable, unlike the lossy paper regional.
        tb.add_regional_mirror(Bandwidth::megabytes_per_sec(10.0 + k as f64), Seconds::new(5.0));
    }
    tb.fault_model = FaultModel::default()
        .with_source(
            RegistryChoice::Regional.registry_id(),
            FaultRates { fatal_per_pull: rate, transient_per_fetch: rate },
        )
        .with_retry(retry());
    tb
}

fn realized_mean_td(mirrors: usize, rate: f64, schedule: &Schedule) -> f64 {
    let app = apps::text_processing();
    let mut total = 0.0;
    for seed in 0..PLANS {
        let mut tb = build_testbed(mirrors, rate);
        let cfg = ExecutorConfig { fault_injection: true, fault_seed: seed, ..Default::default() };
        let (report, _) = execute(&mut tb, &app, schedule, &cfg).expect("sweep schedule executes");
        total += report.microservices.iter().map(|m| m.td.as_f64()).sum::<f64>();
    }
    total / PLANS as f64
}

fn main() {
    let app = apps::text_processing();
    println!("Fault sweep — text-processing, {PLANS} seeded fault plans per cell, lossy regional:");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>8} {:>16}",
        "mirrors", "rate", "happy Td[s]", "aware Td[s]", "margin", "aware reg share"
    );
    for mirrors in 0..=2usize {
        for rate in [0.0, 0.1, 0.2, 0.4] {
            let tb = build_testbed(mirrors, rate);
            let happy = DeepScheduler::paper().schedule(&app, &tb);
            let aware = DeepScheduler::fault_aware().schedule(&app, &tb);
            let happy_td = realized_mean_td(mirrors, rate, &happy);
            let aware_td = realized_mean_td(mirrors, rate, &aware);
            let share = aware.iter().filter(|(_, p)| p.registry == RegistryChoice::Regional).count()
                as f64
                / app.len() as f64;
            println!(
                "{mirrors:>8} {rate:>8.2} {happy_td:>12.1} {aware_td:>12.1} {:>7.1}% {:>15.0}%",
                (1.0 - aware_td / happy_td) * 100.0,
                share * 100.0
            );
        }
    }
    println!(
        "\nExpected shape: at rate 0 the schedules coincide (margin 0, the\n\
         zero-fault invariant); as the regional gets lossier the fault-aware\n\
         game moves its bytes to the hub — and, once mirrors exist, to the\n\
         reliable replicas — while the happy-path scheduler keeps paying\n\
         failover detection on every dead pull."
    );
}
