//! Quickstart: schedule the text-processing case study with DEEP and
//! compare its energy bill against the two exclusive deployment methods.
//!
//! Run with `cargo run --example quickstart`.

use deep::core::{calibration, DeepScheduler, ExclusiveRegistry, Scheduler};
use deep::dataflow::apps;
use deep::simulator::{execute, ExecutorConfig};

fn main() {
    // The paper's testbed: an 8-core Intel "medium" device and a 4-core
    // Raspberry-Pi-class "small" device, two registries (Docker Hub behind
    // a CDN, a MinIO-backed regional registry), calibrated against the
    // paper's Table II benchmarks.
    let app = apps::text_processing();
    println!("application: {} ({} microservices)\n", app.name(), app.len());

    // DEEP's nash-game schedule.
    let testbed = calibration::calibrated_testbed();
    let schedule = DeepScheduler::paper().schedule(&app, &testbed);
    println!("DEEP assignment (regist(m_i), sched(m_i)):");
    for (id, placement) in schedule.iter() {
        let ms = app.microservice(id);
        println!(
            "  {:12} -> pull from {:10} run on device {}",
            ms.name,
            placement.registry.to_string(),
            placement.device
        );
    }

    // Execute each method on a fresh (cold-cache) testbed.
    let mut results = Vec::new();
    let methods: Vec<(&str, deep::simulator::Schedule)> = vec![
        ("DEEP", schedule),
        ("exclusively-regional", ExclusiveRegistry::regional().schedule(&app, &testbed)),
        ("exclusively-docker-hub", ExclusiveRegistry::hub().schedule(&app, &testbed)),
    ];
    for (name, sched) in methods {
        let mut tb = calibration::calibrated_testbed();
        let (report, _) = execute(&mut tb, &app, &sched, &ExecutorConfig::default())
            .expect("case-study schedules always execute");
        results.push((name, report.total_energy()));
    }

    println!("\ntotal energy per deployment method:");
    for (name, energy) in &results {
        println!("  {name:24} {energy}");
    }
    let deep = results[0].1.as_f64();
    let hub = results[2].1.as_f64();
    println!(
        "\nDEEP saves {:.1} J ({:.2} %) vs exclusively-Docker-Hub \
         (paper: ~18 J / 0.34 % on its physical testbed)",
        hub - deep,
        (hub - deep) / hub * 100.0
    );
}
