//! Scenario runner: replay a TOML chaos/soak scenario through the
//! executor and compare schedulers on *realized* deployment time.
//!
//! Loads a scenario file (see `docs/SCENARIOS.md` and `scenarios/`),
//! expands its sweep axes, and runs every expanded cell twice:
//!
//! * `DeepScheduler::fault_aware()` — the PR-4 baseline that prices
//!   per-pull failure *rates* into the game but cannot see scripted
//!   outage windows;
//! * the scenario-priced scheduler ([`deep::core::scenario_scheduler`])
//!   — Monte-Carlo `E[Td]` payoffs drawn over the scenario's own
//!   replication seed stream, clock-gated on its outage windows, so the
//!   game routes *around* a window instead of averaging over it.
//!
//! Both schedules then replay through `replications` seeded executor
//! runs with the scenario's chaos-event timeline. The margin column is
//! the tentpole headline: what pricing the scripted timeline buys over
//! pricing rates alone.
//!
//! Run with `cargo run --release --example scenario_runner` (defaults
//! to the sticky-outage soak) or pass a scenario path:
//! `cargo run --release --example scenario_runner -- scenarios/soak_smoke.toml`.

use deep::core::{run_scenario, scenario_scheduler, DeepScheduler};
use deep::scenario::Scenario;

fn main() {
    let default = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/soak_sticky_outage.toml");
    let path = std::env::args().nth(1).unwrap_or_else(|| default.to_string());
    let scenario = match Scenario::load(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "Scenario `{}` — {}, {} replication(s) from seed {}, {} scripted event(s):",
        scenario.name,
        scenario.app,
        scenario.replications,
        scenario.seed,
        scenario.events.len()
    );
    println!(
        "{:>34} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "cell", "aware Td[s]", "priced Td[s]", "margin", "aware f/o", "priced f/o"
    );
    for cell in scenario.expand() {
        let aware = run_scenario(&cell, &DeepScheduler::fault_aware());
        let priced = run_scenario(&cell, &scenario_scheduler(&cell));
        let margin = (1.0 - priced.mean_td() / aware.mean_td()) * 100.0;
        println!(
            "{:>34} {:>12.1} {:>12.1} {:>7.1}% {:>10} {:>10}",
            cell.name,
            aware.mean_td(),
            priced.mean_td(),
            margin,
            aware.failovers(),
            priced.failovers()
        );
    }
    println!(
        "\nThe fault-aware baseline prices per-pull rates but is blind to the\n\
         scripted windows; the scenario-priced game replays the same fault plans\n\
         it will be executed under and keeps risk-weighted bytes off any source\n\
         that is dark when its wave fires."
    );
}
