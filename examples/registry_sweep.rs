//! Sensitivity sweep: how the regional registry's bandwidth to the small
//! device moves DEEP's registry split and the energy gap between the
//! three deployment methods — plus the registry-mesh scenarios that
//! generalize the paper's hybrid: hub + regional + peer-cache split
//! pulls with their per-source byte breakdown.
//!
//! The first sweep explores the crossover structure behind Table III: the
//! hub wins routes where its sustained rate beats the regional LAN, the
//! regional registry wins where locality (low overhead, better
//! small-device rate) dominates. The mesh sweep then shows what the open
//! mesh buys beyond any single-registry choice: layers a fleet peer
//! already holds ride the LAN.
//!
//! The bandwidth and mirror-count grids live in
//! `scenarios/registry_sweep.toml` and `scenarios/n_regional_sweep.toml`
//! — `tests/scenario_files.rs` pins the file-driven grids to the
//! original hard-coded recipes byte-for-byte.
//!
//! Run with `cargo run --example registry_sweep`.

use deep::core::{
    calibrate, continuum, continuum_testbed, run_scenario, scenario_testbed, DeepScheduler,
    ExclusiveRegistry, Scheduler,
};
use deep::dataflow::{apps, DeviceClass};
use deep::netsim::{Bandwidth, DataSize};
use deep::registry::{LayerCache, PeerCacheSource, Platform, Reference, SourceParams};
use deep::scenario::Scenario;
use deep::simulator::{
    execute, ExecutorConfig, RegistryChoice, Schedule, Testbed, TestbedParams, DEVICE_MEDIUM,
    REGISTRY_PEER,
};

fn load_scenario(file: &str) -> Scenario {
    let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    Scenario::load(&path).expect("checked-in sweep scenario parses")
}

fn testbed_with_regional_small(mbps: f64) -> Testbed {
    let params = TestbedParams {
        regional_to_small: Bandwidth::megabytes_per_sec(mbps),
        ..TestbedParams::default()
    };
    let mut tb = Testbed::with_params(params);
    calibrate(&mut tb);
    tb
}

fn registry_sweep() {
    let app = apps::text_processing();
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>12}",
        "reg->small MB/s", "regional share", "DEEP [J]", "hub-only [J]", "reg-only [J]"
    );
    for cell in load_scenario("registry_sweep.toml").expand() {
        let mbps = cell.testbed.regional_to_small_mbps.expect("swept axis sets the override");
        let deep_outcome = run_scenario(&cell, &DeepScheduler::paper());
        let regional_share = deep_outcome
            .schedule
            .iter()
            .filter(|(_, p)| p.registry == RegistryChoice::Regional)
            .count() as f64
            / app.len() as f64;
        let deep = deep_outcome.mean_energy();
        let hub = run_scenario(&cell, &ExclusiveRegistry::hub()).mean_energy();
        let reg = run_scenario(&cell, &ExclusiveRegistry::regional()).mean_energy();
        println!(
            "{:>14.1} {:>13.0}% {:>12.1} {:>12.1} {:>12.1}",
            mbps,
            regional_share * 100.0,
            deep,
            hub,
            reg
        );
    }
    println!(
        "\nExpected shape: at low regional bandwidth DEEP pulls everything from \
         the Hub and matches hub-only; as the LAN rate grows the regional share \
         rises toward the paper's 83 % and DEEP tracks the better of the two \
         exclusive methods from below.\n"
    );
}

/// One mesh scenario: pull vp-ha-train onto the medium device, varying
/// which sources are in the mesh and how warm the fleet peer is.
fn mesh_sweep() {
    let tb = testbed_with_regional_small(9.5);
    let extract = tb.device(DEVICE_MEDIUM).extract_bw;
    let ha_hub = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let ha_regional = Reference::new("dcloud2.itec.aau.at", "aau/vp-ha-train", "amd64");

    // The fleet peer warmed with the sibling image (shares 5.2 of
    // 5.78 GB) — the warm-fleet steady state of a rolling deployment.
    let mut peer_cache = LayerCache::new(DataSize::gigabytes(64.0));
    tb.pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Hub.registry_id())
        .pull(
            &Reference::new("docker.io", "sina88/vp-la-train", "amd64"),
            Platform::Amd64,
            &mut peer_cache,
        )
        .expect("warm-up pull succeeds");
    let peer = PeerCacheSource::from_caches("peer-cache", [&peer_cache]);
    let peer_params =
        SourceParams { download_bw: tb.params.peer_bw, overhead: tb.params.peer_overhead };

    println!("Mesh scenarios — vp-ha-train (5.78 GB) onto the medium device:");
    println!("{:>28} {:>10}   per-source breakdown [MB]", "scenario", "Td [s]");

    let report = |label: &str, outcome: deep::registry::PullOutcome| {
        let breakdown = if outcome.per_source.is_empty() {
            "(fully cached)".to_string()
        } else {
            outcome
                .per_source
                .iter()
                .map(|b| format!("r{}:{:.0}", b.source.0, b.downloaded.as_megabytes()))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{label:>28} {:>10.1}   {breakdown}", outcome.deployment_time().as_f64());
    };

    // Hub-only (the seed pull path).
    let hub_only = tb
        .pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Hub.registry_id())
        .extract_bw(extract)
        .pull(&ha_hub, Platform::Amd64, &mut LayerCache::new(DataSize::gigabytes(64.0)))
        .expect("hub pull succeeds");
    report("hub only", hub_only);

    // Regional-only.
    let regional_only = tb
        .pull_mesh(RegistryChoice::Regional, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Regional.registry_id())
        .extract_bw(extract)
        .pull(&ha_regional, Platform::Amd64, &mut LayerCache::new(DataSize::gigabytes(64.0)))
        .expect("regional pull succeeds");
    report("regional only", regional_only);

    // Hub + regional (both registries, no peer): the cheapest registry
    // serves each layer.
    let two_registry = tb
        .mesh(DEVICE_MEDIUM)
        .session(RegistryChoice::Hub.registry_id())
        .extract_bw(extract)
        .pull(&ha_hub, Platform::Amd64, &mut LayerCache::new(DataSize::gigabytes(64.0)))
        .expect("mesh pull succeeds");
    report("hub + regional", two_registry);

    // Full mesh: hub + regional + warm peer.
    let mut full = tb.mesh(DEVICE_MEDIUM);
    full.add_blob_source(REGISTRY_PEER, &peer, peer_params);
    let split = full
        .session(RegistryChoice::Hub.registry_id())
        .extract_bw(extract)
        .pull(&ha_hub, Platform::Amd64, &mut LayerCache::new(DataSize::gigabytes(64.0)))
        .expect("split pull succeeds");
    report("hub + regional + peer", split);

    println!(
        "\nThe split pull fetches the 5.2 GB fleet-resident training stack from \
         the peer over the LAN and only the unique 580 MB app layer from a \
         registry — beating both exclusive pulls (the whole-image hub-vs-regional \
         choice of the paper is the single-source special case)."
    );
}

/// N-regional placement sweep: add regional mirrors one at a time and let
/// the mesh-wide Nash game redistribute placements over the widened
/// strategy space — where do additional regionals stop paying?
fn n_regional_sweep() {
    println!("\nN-regional sweep — registry count × placement (text-processing, DEEP):");
    println!(
        "{:>9} {:>10} {:>10} {:>12}   placement distribution (registry@device: share)",
        "mirrors", "DEEP [J]", "Td [s]", "mirror share"
    );
    for cell in load_scenario("n_regional_sweep.toml").expand() {
        let mirror_count = cell.testbed.mirrors;
        // Each mirror is a regional replica at another site: slightly
        // better route than the paper regional, device-independent.
        let tb = scenario_testbed(&cell);
        let app = apps::text_processing();
        let outcome = run_scenario(&cell, &DeepScheduler::paper());
        let report = &outcome.reports[0];
        let td: f64 = report.microservices.iter().map(|m| m.td.as_f64()).sum();
        let mirror_share =
            outcome.schedule.iter().filter(|(_, p)| tb.mirror(p.registry).is_some()).count() as f64
                / app.len() as f64;
        let distribution = outcome
            .schedule
            .distribution()
            .into_iter()
            .map(|((r, d), f)| format!("{r}@d{}:{:.0}%", d.0, f * 100.0))
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:>9} {:>10.1} {:>10.1} {:>11.0}%   {distribution}",
            mirror_count,
            report.total_energy().as_f64(),
            td,
            mirror_share * 100.0
        );
    }
    println!(
        "\nExpected shape: the first fast mirror pulls placements off the paper\n\
         regional registry; further mirrors stop paying once every route is\n\
         uncontended (the strategy space grows but the equilibrium stops moving)."
    );
}

/// The nash_mesh acceptance scenario: a rolling redeploy of the video
/// pipeline onto the cloud tier of a warm fleet. The peer-aware Nash
/// game prices the fleet-resident layers and lands an equilibrium Td
/// strictly below the best single-registry schedule.
fn peer_equilibrium() {
    let app = apps::video_processing();
    let pins: Vec<(&str, DeviceClass)> =
        app.ids().map(|id| (app.microservice(id).name.as_str(), DeviceClass::Cloud)).collect();
    let pinned = continuum::pin_microservices(&app, &pins);
    let run = |label: &str, scheduler: &dyn Scheduler, peer_sharing: bool| -> f64 {
        let mut tb = continuum_testbed();
        let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
        execute(&mut tb, &app, &warm, &ExecutorConfig::default()).expect("warm-up run");
        let schedule = scheduler.schedule(&pinned, &tb);
        let cfg = ExecutorConfig { peer_sharing, ..Default::default() };
        let (report, _) = execute(&mut tb, &pinned, &schedule, &cfg).expect("redeploy executes");
        let td: f64 = report.microservices.iter().map(|m| m.td.as_f64()).sum();
        let by_source = report
            .downloaded_by_source()
            .into_iter()
            .map(|(id, mb)| format!("r{}:{mb:.0}", id.0))
            .collect::<Vec<_>>()
            .join("  ");
        println!("{label:>28} {td:>10.1}   {by_source}");
        td
    };
    println!("\nEquilibrium Td — warm-fleet redeploy onto the cloud tier:");
    println!("{:>28} {:>10}   per-source breakdown [MB]", "method", "Td [s]");
    let hub = run("exclusively docker hub", &ExclusiveRegistry::hub(), false);
    let regional = run("exclusively regional", &ExclusiveRegistry::regional(), false);
    let mesh = run("DEEP + peer mesh", &DeepScheduler::with_peer_sharing(), true);
    println!(
        "\nThe peer-aware equilibrium beats the best single registry by {:.0}%:\n\
         the game now *prices* split pulls instead of discovering them at\n\
         deployment time.",
        (1.0 - mesh / hub.min(regional)) * 100.0
    );
}

fn main() {
    registry_sweep();
    mesh_sweep();
    n_regional_sweep();
    peer_equilibrium();
}
