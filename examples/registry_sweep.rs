//! Sensitivity sweep: how the regional registry's bandwidth to the small
//! device moves DEEP's registry split and the energy gap between the
//! three deployment methods.
//!
//! This explores the crossover structure behind Table III: the hub wins
//! routes where its sustained rate beats the regional LAN, the regional
//! registry wins where locality (low overhead, better small-device rate)
//! dominates.
//!
//! Run with `cargo run --example registry_sweep`.

use deep::core::{calibrate, DeepScheduler, ExclusiveRegistry, Scheduler};
use deep::dataflow::apps;
use deep::netsim::Bandwidth;
use deep::simulator::{execute, ExecutorConfig, RegistryChoice, Testbed, TestbedParams};

fn testbed_with_regional_small(mbps: f64) -> Testbed {
    let params = TestbedParams {
        regional_to_small: Bandwidth::megabytes_per_sec(mbps),
        ..TestbedParams::default()
    };
    let mut tb = Testbed::with_params(params);
    calibrate(&mut tb);
    tb
}

fn main() {
    let app = apps::text_processing();
    println!(
        "{:>14} {:>14} {:>12} {:>12} {:>12}",
        "reg->small MB/s", "regional share", "DEEP [J]", "hub-only [J]", "reg-only [J]"
    );
    for mbps in [2.0, 4.0, 6.0, 8.0, 9.5, 12.0, 16.0, 24.0] {
        let tb = testbed_with_regional_small(mbps);
        let deep_schedule = DeepScheduler::paper().schedule(&app, &tb);
        let regional_share = deep_schedule
            .iter()
            .filter(|(_, p)| p.registry == RegistryChoice::Regional)
            .count() as f64
            / app.len() as f64;

        let total = |schedule: &deep::simulator::Schedule| -> f64 {
            let mut run_tb = testbed_with_regional_small(mbps);
            let (report, _) = execute(&mut run_tb, &app, schedule, &ExecutorConfig::default())
                .expect("schedule executes");
            report.total_energy().as_f64()
        };
        let deep = total(&deep_schedule);
        let hub = total(&ExclusiveRegistry::hub().schedule(&app, &tb));
        let reg = total(&ExclusiveRegistry::regional().schedule(&app, &tb));
        println!(
            "{:>14.1} {:>13.0}% {:>12.1} {:>12.1} {:>12.1}",
            mbps,
            regional_share * 100.0,
            deep,
            hub,
            reg
        );
    }
    println!(
        "\nExpected shape: at low regional bandwidth DEEP pulls everything from \
         the Hub and matches hub-only; as the LAN rate grows the regional share \
         rises toward the paper's 83 % and DEEP tracks the better of the two \
         exclusive methods from below."
    );
}
