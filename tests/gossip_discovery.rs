//! Gossip-based peer discovery: the differential test plane.
//!
//! The contracts that let the epidemic discovery plane replace the
//! omniscient snapshot without changing the game:
//!
//! 1. **Snapshot parity** — a *converged* gossip configuration
//!    (all-pairs fanout, unbounded view, one round per wave) reproduces
//!    the `PeerPlane::PerPair` snapshot plane byte for byte: serialized
//!    Schedules are identical and serialized RunReports are identical,
//!    across the case studies, a mirrored registry mesh, and a proptest
//!    population of generated applications — with fault-aware pricing
//!    riding along.
//! 2. **Estimator/executor bit-for-bit under bounded views** — with a
//!    tiny fanout and a one-holder view the estimation context runs the
//!    *same* seeded plane over its mirrored caches and still predicts
//!    exactly what the executor measures, lag and all.
//! 3. **Protocol properties** — seeded determinism, monotone epidemic
//!    growth (more rounds only add knowledge, epochs never regress),
//!    all-pairs one-round convergence, and bounded views that are
//!    subsets of the full view.
//! 4. **Staleness safety** — a lying advertisement (the holder died, or
//!    chaos evicted its cache after the barrier) never panics and never
//!    serves vanished bytes: the pull pays the mesh's mid-pull failover,
//!    and the chaos path's epoch bump ages the stale ad out of the
//!    fleet's views.
//! 5. **Delta/oracle backend parity** — the epoch-vector delta plane
//!    (PR 10) reproduces the retained clone-based exchange
//!    ([`PeerDiscovery::GossipOracle`]) byte for byte through the whole
//!    pipeline: same Schedules, same RunReports, under bounded views,
//!    fault pricing, and chaos timelines alike.

use deep::core::{DeepScheduler, EstimationContext, Scheduler};
use deep::dataflow::{self, apps, Application};
use deep::netsim::gossip::GossipState;
use deep::netsim::{Bandwidth, DataSize, DeviceId, Seconds};
use deep::registry::{Digest, FaultModel, FaultRates, LayerCache, Platform};
use deep::simulator::{
    execute, execute_with_events, peer_source_id, ChaosEvent, ExecutorConfig, GossipPlane,
    PeerDiscovery, Placement, RegistryChoice, RunReport, Schedule, Testbed, TraceKind,
    DEVICE_CLOUD, DEVICE_MEDIUM, DEVICE_SMALL,
};
use proptest::prelude::*;

/// A calibrated continuum testbed (the peer plane needs same-arch
/// devices: medium and cloud are both amd64).
fn continuum() -> Testbed {
    deep::core::continuum_testbed()
}

/// The discovery configuration guaranteed to re-converge at every wave
/// barrier: all-pairs fanout (clamped to `devices - 1`), an unbounded
/// view, one epidemic round per wave — the snapshot-parity regime.
fn converged_gossip() -> PeerDiscovery {
    PeerDiscovery::Gossip { fanout: u32::MAX, view_size: u32::MAX, rounds_per_wave: 1 }
}

/// Warm `holder`'s cache with every image of `app` for both platforms —
/// a fleet cache able to serve amd64 and arm64 pullers alike.
fn warm_holder_both_arches(tb: &mut Testbed, app: &Application, holder: DeviceId) {
    let mut cache = tb.device(holder).cache.clone();
    for id in app.ids() {
        let ms = app.microservice(id);
        let entry = tb.entry(app.name(), &ms.name).unwrap().clone();
        for platform in [Platform::Amd64, Platform::Arm64] {
            let reference = entry.hub_reference(platform);
            tb.pull_mesh(RegistryChoice::Hub, holder, 1.0)
                .session(RegistryChoice::Hub.registry_id())
                .pull(&reference, platform, &mut cache)
                .unwrap();
        }
    }
    tb.device_mut(holder).cache = cache;
}

// ---------------------------------------------------------------------
// 1. Snapshot parity: converged gossip ≡ omniscient snapshot plane.
// ---------------------------------------------------------------------

/// Schedule with the peer-aware (and optionally fault-aware) scheduler
/// on a warm continuum fleet — optionally with a regional mirror in the
/// mesh — then execute the redeploy onto the cloud tier, once per
/// discovery mode, and compare byte for byte.
fn assert_snapshot_parity(app: &Application, fault_aware: bool, mirrored: bool) {
    let run = |discovery: PeerDiscovery| -> (Schedule, RunReport) {
        let mut tb = continuum();
        tb.publish_application(app);
        if mirrored {
            tb.add_regional_mirror(Bandwidth::megabytes_per_sec(11.0), Seconds::new(4.0));
        }
        if fault_aware {
            tb.fault_model = FaultModel::default().with_source(
                RegistryChoice::Regional.registry_id(),
                FaultRates { fatal_per_pull: 0.2, transient_per_fetch: 0.1 },
            );
        }
        // Warm the fleet: the medium edge device runs the app first.
        let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
        execute(&mut tb, app, &warm, &ExecutorConfig::default()).unwrap();
        let scheduler = DeepScheduler {
            peer_sharing: true,
            price_faults: fault_aware,
            peer_discovery: discovery,
            ..DeepScheduler::default()
        };
        let schedule = scheduler.schedule(app, &tb);
        let cfg =
            ExecutorConfig { peer_sharing: true, peer_discovery: discovery, ..Default::default() };
        let (report, _) = execute(&mut tb, app, &schedule, &cfg).unwrap();
        (schedule, report)
    };
    let (schedule_snap, report_snap) = run(PeerDiscovery::Snapshot);
    let (schedule_gsp, report_gsp) = run(converged_gossip());
    assert_eq!(
        serde_json::to_string(&schedule_gsp).unwrap(),
        serde_json::to_string(&schedule_snap).unwrap(),
        "{}: converged gossip changed the schedule",
        app.name()
    );
    assert_eq!(
        serde_json::to_string(&report_gsp).unwrap(),
        serde_json::to_string(&report_snap).unwrap(),
        "{}: converged gossip changed the RunReport",
        app.name()
    );
}

#[test]
fn case_studies_gossip_snapshot_parity() {
    for app in apps::case_studies() {
        assert_snapshot_parity(&app, false, false);
        assert_snapshot_parity(&app, true, false);
    }
}

#[test]
fn mirrored_mesh_gossip_snapshot_parity() {
    // A regional mirror widens the registry side of the mesh; the peer
    // side's discovery mode must stay invisible across it too.
    for app in apps::case_studies() {
        assert_snapshot_parity(&app, false, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated applications reproduce the snapshot stack byte for
    /// byte under converged gossip. (The vendored proptest seeds each
    /// case deterministically from the test name, so this sweep is
    /// fixed-seed in CI.)
    #[test]
    fn generated_apps_gossip_snapshot_parity(seed in 0u64..500) {
        let app = dataflow::DagGenerator::default().generate(seed);
        assert_snapshot_parity(&app, false, false);
    }
}

// ---------------------------------------------------------------------
// 2. Estimator/executor bit-for-bit under a *bounded* view.
// ---------------------------------------------------------------------

#[test]
fn estimator_matches_executor_under_a_bounded_view() {
    // A one-holder view, fanout one, one round per wave: the epidemic
    // is slow and the views are partial — some waves genuinely cannot
    // count on the warm holder yet. The estimation context runs the
    // same seeded plane over its mirrored caches, so every lag the
    // executor experiences is priced identically.
    let app = apps::video_processing();
    let discovery = PeerDiscovery::Gossip { fanout: 1, view_size: 1, rounds_per_wave: 1 };
    let mut tb = continuum();
    warm_holder_both_arches(&mut tb, &app, DEVICE_CLOUD);
    tb.set_peer_uplink(DEVICE_CLOUD, Bandwidth::megabytes_per_sec(20.0));
    let mut placements =
        vec![Placement { registry: RegistryChoice::Hub, device: DEVICE_MEDIUM }; app.len()];
    placements[app.by_name("transcode").unwrap().0] =
        Placement { registry: RegistryChoice::Regional, device: DEVICE_SMALL };
    placements[app.by_name("la-train").unwrap().0] =
        Placement { registry: RegistryChoice::Regional, device: DEVICE_SMALL };
    let schedule = Schedule::new(placements);
    let mut predictions = Vec::new();
    {
        let mut ctx =
            EstimationContext::new(&tb, &app).peer_sharing(true).peer_discovery(discovery, 0);
        for stage in dataflow::stages(&app) {
            ctx.begin_wave();
            for &id in &stage.members {
                let p = schedule.placement(id);
                predictions.push(ctx.estimate(id, p.registry, p.device));
                ctx.commit(id, p);
            }
        }
    }
    let cfg =
        ExecutorConfig { peer_sharing: true, peer_discovery: discovery, ..Default::default() };
    let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    for (est, measured) in predictions.iter().zip(&report.microservices) {
        assert_eq!(est.td, measured.td, "{}: td", measured.name);
        assert_eq!(est.ec, measured.energy, "{}: ec", measured.name);
    }
}

// ---------------------------------------------------------------------
// 3. Protocol properties of the epidemic itself.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same seed replays the same epidemic: every view, epoch and
    /// payload is identical across two independent runs.
    #[test]
    fn gossip_is_seeded_deterministic(
        devices in 2usize..12,
        seed in any::<u64>(),
        fanout in 1u32..4,
        rounds in 1u32..6,
    ) {
        let build = || {
            let mut state = GossipState::new(devices, seed);
            for d in 0..devices {
                state.advertise(d, (d as u32) * 7 + 1);
            }
            state.run_rounds(rounds, fanout);
            state
        };
        let (a, b) = (build(), build());
        for viewer in 0..devices {
            let va: Vec<(usize, u64, u32)> = a.known(viewer).map(|(h, e, p)| (h, e, *p)).collect();
            let vb: Vec<(usize, u64, u32)> = b.known(viewer).map(|(h, e, p)| (h, e, *p)).collect();
            prop_assert_eq!(va, vb, "viewer {} diverged under one seed", viewer);
        }
    }

    /// Epidemic growth is monotone: running more rounds only ever adds
    /// holders to a view or refreshes their epochs — never forgets, and
    /// never regresses an epoch. One all-pairs round from any partial
    /// state converges every view onto the freshest epoch of every ad
    /// (the full view is a superset of every bounded-fanout view).
    #[test]
    fn more_rounds_only_grow_views_and_never_regress_epochs(
        devices in 2usize..12,
        seed in any::<u64>(),
        fanout in 1u32..4,
        rounds in 1u32..6,
    ) {
        let mut state = GossipState::new(devices, seed);
        for d in 0..devices {
            state.advertise(d, d as u32);
        }
        state.run_rounds(rounds, fanout);
        let before: Vec<Vec<(usize, u64)>> =
            (0..devices).map(|v| state.known(v).map(|(h, e, _)| (h, e)).collect()).collect();
        state.run_rounds(1, u32::MAX);
        prop_assert!(state.converged(), "an all-pairs round converges the fleet");
        for (viewer, partial) in before.iter().enumerate() {
            let full: std::collections::BTreeMap<usize, u64> =
                state.known(viewer).map(|(h, e, _)| (h, e)).collect();
            prop_assert_eq!(full.len(), devices, "converged view knows every holder");
            for &(holder, epoch) in partial {
                let fresh = full.get(&holder).copied();
                prop_assert!(fresh >= Some(epoch), "epoch regressed for holder {}", holder);
            }
        }
    }
}

/// A bounded mesh view is always a subset of the unbounded view over
/// the same epidemic state, and never exceeds its configured size.
#[test]
fn bounded_mesh_views_are_subsets_of_the_full_view() {
    let mut caches = vec![LayerCache::new(DataSize::gigabytes(8.0)); 6];
    for (j, cache) in caches.iter_mut().enumerate() {
        // Distinct advertisement sizes so the bounded selection has
        // real choices to make.
        for layer in 0..=j {
            cache.insert(Digest::of(&[j as u8, layer as u8]), DataSize::megabytes(5.0));
        }
    }
    let refs: Vec<&LayerCache> = caches.iter().collect();
    let plane_at = |view_size: u32| {
        let mut plane = GossipPlane::new(6, u32::MAX, view_size, 1, 7);
        plane.barrier_round(&refs);
        plane
    };
    let full: Vec<_> =
        plane_at(u32::MAX).mesh_view(&refs, 0).into_iter().map(|(id, _)| id).collect();
    assert_eq!(full.len(), 5, "unbounded view sees every other holder");
    for view_size in 1..=6u32 {
        let bounded: Vec<_> =
            plane_at(view_size).mesh_view(&refs, 0).into_iter().map(|(id, _)| id).collect();
        assert!(bounded.len() <= view_size as usize);
        assert!(
            bounded.iter().all(|id| full.contains(id)),
            "view {view_size}: bounded holders {bounded:?} not a subset of {full:?}"
        );
    }
}

// ---------------------------------------------------------------------
// 5. Delta/oracle backend parity through the full pipeline.
// ---------------------------------------------------------------------

/// Schedule and execute under the delta plane and under the retained
/// clone-based oracle with the *same* gossip parameters, and require
/// byte-identical Schedules and RunReports. Unlike the snapshot-parity
/// suite this runs *bounded, slow* epidemics too — the regime where the
/// delta exchange and view cache actually have partial state to get
/// wrong — and threads a chaos timeline through both backends.
fn assert_backend_parity(
    app: &Application,
    fanout: u32,
    view_size: u32,
    rounds_per_wave: u32,
    fault_aware: bool,
    events: &[ChaosEvent],
) {
    let run = |discovery: PeerDiscovery| -> (Schedule, RunReport) {
        let mut tb = continuum();
        tb.publish_application(app);
        if fault_aware {
            tb.fault_model = FaultModel::default().with_source(
                RegistryChoice::Regional.registry_id(),
                FaultRates { fatal_per_pull: 0.2, transient_per_fetch: 0.1 },
            );
        }
        let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
        execute(&mut tb, app, &warm, &ExecutorConfig::default()).unwrap();
        let scheduler = DeepScheduler {
            peer_sharing: true,
            price_faults: fault_aware,
            peer_discovery: discovery,
            ..DeepScheduler::default()
        };
        let schedule = scheduler.schedule(app, &tb);
        let cfg =
            ExecutorConfig { peer_sharing: true, peer_discovery: discovery, ..Default::default() };
        let (report, _) = execute_with_events(&mut tb, app, &schedule, &cfg, events).unwrap();
        (schedule, report)
    };
    let (schedule_delta, report_delta) =
        run(PeerDiscovery::Gossip { fanout, view_size, rounds_per_wave });
    let (schedule_oracle, report_oracle) =
        run(PeerDiscovery::GossipOracle { fanout, view_size, rounds_per_wave });
    assert_eq!(
        serde_json::to_string(&schedule_delta).unwrap(),
        serde_json::to_string(&schedule_oracle).unwrap(),
        "{} (fanout {fanout}, view {view_size}): delta backend changed the schedule",
        app.name()
    );
    assert_eq!(
        serde_json::to_string(&report_delta).unwrap(),
        serde_json::to_string(&report_oracle).unwrap(),
        "{} (fanout {fanout}, view {view_size}): delta backend changed the RunReport",
        app.name()
    );
}

#[test]
fn case_studies_delta_matches_the_clone_based_oracle() {
    // Converged, bounded-view, and starved-epidemic regimes, with and
    // without fault pricing.
    for app in apps::case_studies() {
        assert_backend_parity(&app, u32::MAX, u32::MAX, 1, false, &[]);
        assert_backend_parity(&app, 2, 2, 1, true, &[]);
        assert_backend_parity(&app, 1, 1, 1, false, &[]);
    }
}

#[test]
fn chaos_timelines_delta_matches_the_clone_based_oracle() {
    // Cache-pressure chaos drives the eviction → readvertise → age-out
    // path: the delta backend's epoch bump and view-cache invalidation
    // must replay exactly what the clone-based exchange does.
    let app = apps::video_processing();
    let events = [ChaosEvent::cache_pressure(Seconds::new(1.0), DEVICE_MEDIUM, DataSize::ZERO)];
    assert_backend_parity(&app, u32::MAX, u32::MAX, 1, false, &events);
    assert_backend_parity(&app, 2, 2, 1, false, &events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Generated applications under a bounded view: the delta plane and
    /// the clone-based oracle stay byte-identical across the population.
    #[test]
    fn generated_apps_delta_matches_the_clone_based_oracle(seed in 0u64..500) {
        let app = dataflow::DagGenerator::default().generate(seed);
        assert_backend_parity(&app, 2, 2, 1, false, &[]);
    }
}

// ---------------------------------------------------------------------
// 4. Staleness safety: lying ads fail over, and age out.
// ---------------------------------------------------------------------

#[test]
fn gossip_churn_kills_one_holder_not_the_plane() {
    // The peer-churn contract of tests/peer_plane.rs, under gossip
    // discovery: two warm holders, the medium one drawn fatally dead
    // for every pull. Its converged advertisement is a lie the session
    // plans against — the pull must fail over to the *surviving small
    // holder*, never panic, and report exactly the dead holder.
    let app = apps::text_processing();
    let mut tb = continuum();
    let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
    let mut small_cache = tb.device(DEVICE_SMALL).cache.clone();
    for id in app.ids() {
        let ms = app.microservice(id);
        let entry = tb.entry(app.name(), &ms.name).unwrap().clone();
        tb.pull_mesh(RegistryChoice::Hub, DEVICE_SMALL, 1.0)
            .session(RegistryChoice::Hub.registry_id())
            .pull(&entry.hub_reference(Platform::Amd64), Platform::Amd64, &mut small_cache)
            .unwrap();
    }
    tb.device_mut(DEVICE_SMALL).cache = small_cache;
    let dead_holder = peer_source_id(DEVICE_MEDIUM);
    tb.fault_model = FaultModel::default()
        .with_source(dead_holder, FaultRates { fatal_per_pull: 1.0, transient_per_fetch: 0.0 });
    let schedule = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_CLOUD);
    let cfg = ExecutorConfig {
        peer_sharing: true,
        fault_injection: true,
        peer_discovery: converged_gossip(),
        ..Default::default()
    };
    let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let survivor = peer_source_id(DEVICE_SMALL);
    let mut failovers = 0;
    for m in &report.microservices {
        assert!(
            m.sources.iter().all(|s| s.source != dead_holder),
            "{}: the dead holder served bytes: {:?}",
            m.name,
            m.sources
        );
        if m.failed_sources.is_empty() {
            continue;
        }
        failovers += 1;
        assert_eq!(m.failed_sources, vec![dead_holder], "{}: exactly the holder died", m.name);
        assert!(
            m.sources.iter().any(|s| s.source == survivor),
            "{}: the surviving holder carries the failover: {:?}",
            m.name,
            m.sources
        );
    }
    assert!(failovers >= 2, "the run exercised per-holder failovers");
    assert_eq!(
        report.downloaded_by_peer().iter().map(|(d, _)| *d).collect::<Vec<_>>(),
        vec![DEVICE_SMALL],
        "only the survivor served"
    );
    assert!(report.peer_downloaded_mb() > 1_000.0, "the plane as a whole kept serving");
}

#[test]
fn post_eviction_pull_pays_failover_and_the_stale_ad_ages_out() {
    // The cache-pressure chaos event fires *after* the wave's gossip
    // round: the wave's pulls planned onto a now-stale advertisement
    // must fail over mid-pull to the registry and still land every
    // layer — and the event's epoch bump (readvertisement) must age
    // the evicted holder out of the fleet's views, so later waves stop
    // planning on it instead of mis-estimating.
    let app = apps::video_processing();
    let all_hub = |device| Schedule::uniform(app.len(), RegistryChoice::Hub, device);
    let run = |events: &[ChaosEvent]| {
        let mut tb = continuum();
        tb.publish_application(&app);
        execute(&mut tb, &app, &all_hub(DEVICE_MEDIUM), &ExecutorConfig::default()).unwrap();
        let cfg = ExecutorConfig {
            peer_sharing: true,
            peer_discovery: converged_gossip(),
            ..Default::default()
        };
        let out = execute_with_events(&mut tb, &app, &all_hub(DEVICE_CLOUD), &cfg, events).unwrap();
        (out, tb)
    };
    // Baseline: the peer serves the fleet-resident training stack; its
    // trace locates the training wave's start on the clock.
    let ((baseline, trace), _) = run(&[]);
    assert!(!baseline.downloaded_by_peer().is_empty(), "baseline rides the peer");
    let train_wave = trace
        .of_kind(TraceKind::DeploymentStarted)
        .find(|e| e.label == "ha-train")
        .expect("training wave traced")
        .at;
    let events = [ChaosEvent::cache_pressure(train_wave, DEVICE_MEDIUM, DataSize::ZERO)];
    let ((report, chaos_trace), tb) = run(&events);
    let peer_id = peer_source_id(DEVICE_MEDIUM);
    assert!(
        report.microservices.iter().any(|m| m.failed_sources.contains(&peer_id)),
        "some pull hit the stale advertisement and failed over"
    );
    // The training wave itself got nothing from the evicted peer.
    let ha = report.metrics("ha-train").unwrap();
    assert!(ha.failed_sources.contains(&peer_id), "{:?}", ha.failed_sources);
    assert!(ha.sources.iter().all(|b| b.source != peer_id), "{:?}", ha.sources);
    let dl = |r: &RunReport| -> f64 { r.microservices.iter().map(|m| m.downloaded_mb).sum() };
    assert!((dl(&report) - dl(&baseline)).abs() < 1e-6, "every layer still landed");
    let td = |r: &RunReport| -> f64 { r.microservices.iter().map(|m| m.td.as_f64()).sum() };
    assert!(td(&report) > td(&baseline), "failover cost is visible in Td");
    assert_eq!(chaos_trace.of_kind(TraceKind::ChaosEventFired).count(), 1);
    assert!(tb.device(DEVICE_MEDIUM).cache.is_empty(), "the eviction really happened");
    // The age-out: after the event's epoch bump and the next barrier
    // round, no view still advertises the emptied holder.
    let caches: Vec<&LayerCache> = (0..3).map(|j| &tb.device(DeviceId(j)).cache).collect();
    let mut plane = GossipPlane::new(3, u32::MAX, u32::MAX, 1, 0);
    plane.barrier_round(&caches);
    plane.readvertise(DEVICE_MEDIUM, &tb.device(DEVICE_MEDIUM).cache);
    plane.barrier_round(&caches);
    assert!(
        plane.mesh_view(&caches, DEVICE_CLOUD.0).iter().all(|(id, _)| *id != peer_id),
        "the emptied holder aged out of the cloud's view"
    );
}
