//! Mesh-aware Nash scheduling regressions.
//!
//! The scheduling stack now prices the whole registry mesh (per-source
//! route contention, peer-cache split pulls, N regional mirrors). These
//! tests pin the two contracts that make the generalization safe:
//!
//! 1. **Seed parity** — on the paper's two-registry testbed the mesh-wide
//!    solver must reproduce the seed hub-vs-regional Nash solver *byte for
//!    byte*. The oracle here is an independent reimplementation of the
//!    seed semantics on the retained [`PullPlanner`] pull path (primary
//!    route contention, single-source estimates), property-tested over the
//!    case studies and a population of generated applications.
//! 2. **Mesh advantage** — with a warm fleet, a hub+regional+peer mesh
//!    must reach an equilibrium deployment time strictly below the best
//!    single-registry schedule, and the peer source must be chosen only
//!    when marginally cheaper.

use deep::core::{calibration, DeepScheduler, ExclusiveRegistry, Scheduler};
use deep::dataflow::{self, apps, Application, MicroserviceId};
use deep::game::{support_enumeration, Bimatrix, Matrix};
use deep::netsim::{Bandwidth, DataSize, DeviceId, Seconds};
use deep::registry::{LayerCache, PeerCacheSource, Platform, PullPlanner, Reference, SourceParams};
use deep::simulator::{
    execute, ExecutorConfig, Placement, RegistryChoice, RunReport, Schedule, Testbed,
    DEVICE_MEDIUM, REGISTRY_PEER,
};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// The seed two-registry Nash solver, reimplemented as an oracle on the
// retained seed pull path (PullPlanner): strategy space fixed to
// {Hub, Regional}, contention charged once per pull on the primary route.
// ---------------------------------------------------------------------

struct SeedEstimate {
    td: Seconds,
    tc: Seconds,
    tp: Seconds,
    ec: f64,
}

struct SeedContext<'t> {
    testbed: &'t Testbed,
    app: &'t Application,
    caches: Vec<LayerCache>,
    route_load: HashMap<(RegistryChoice, usize), usize>,
    assigned: Vec<Option<Placement>>,
}

impl<'t> SeedContext<'t> {
    fn new(testbed: &'t Testbed, app: &'t Application) -> Self {
        SeedContext {
            testbed,
            app,
            caches: testbed.devices.iter().map(|d| d.cache.clone()).collect(),
            route_load: HashMap::new(),
            assigned: vec![None; app.len()],
        }
    }

    fn begin_wave(&mut self) {
        self.route_load.clear();
    }

    fn admissible_devices(&self, id: MicroserviceId) -> Vec<DeviceId> {
        let req = &self.app.microservice(id).requirements;
        self.testbed.devices.iter().filter(|d| d.admits(req)).map(|d| d.id).collect()
    }

    fn planner(&self, registry: RegistryChoice, device: DeviceId, slowdown: f64) -> PullPlanner {
        PullPlanner {
            download_bw: self
                .testbed
                .params
                .route_bandwidth(registry, device)
                .scale(1.0 / slowdown),
            extract_bw: self.testbed.device(device).extract_bw,
            overhead: self.testbed.params.overhead(registry),
        }
    }

    fn estimate(
        &self,
        id: MicroserviceId,
        registry: RegistryChoice,
        device: DeviceId,
    ) -> SeedEstimate {
        let ms = self.app.microservice(id);
        let dev = self.testbed.device(device);
        let entry = self.testbed.entry(self.app.name(), &ms.name).expect("image published");
        let reference = self.testbed.reference(entry, registry, dev.arch);
        let load = *self.route_load.get(&(registry, device.0)).unwrap_or(&0);
        let slowdown = self.testbed.params.contention_factor(load);
        let outcome = self
            .planner(registry, device, slowdown)
            .estimate(self.testbed.registry(registry), &reference, dev.arch, &self.caches[device.0])
            .expect("catalog images resolve");
        let td = outcome.deployment_time();
        let mut tc = Seconds::ZERO;
        for flow in self.app.incoming(id) {
            let producer = self.assigned[flow.from.0].expect("producer committed").device;
            tc += self
                .testbed
                .topology
                .device_transfer_time(producer, device, flow.size)
                .expect("topology covers devices");
        }
        let scoped = format!("{}/{}", self.app.name(), ms.name);
        let tp = dev.processing_time(&scoped, ms.requirements.cpu);
        let ec = dev.energy(&scoped, td, tc, tp).as_f64();
        SeedEstimate { td, tc, tp, ec }
    }

    fn commit(&mut self, id: MicroserviceId, placement: Placement) {
        let ms = self.app.microservice(id);
        let dev = self.testbed.device(placement.device);
        let entry = self.testbed.entry(self.app.name(), &ms.name).expect("image published");
        let reference = self.testbed.reference(entry, placement.registry, dev.arch);
        let outcome = self
            .planner(placement.registry, placement.device, 1.0)
            .pull(
                self.testbed.registry(placement.registry),
                &reference,
                dev.arch,
                &mut self.caches[placement.device.0],
            )
            .expect("catalog images resolve");
        if outcome.downloaded >= self.testbed.params.contention_threshold {
            *self.route_load.entry((placement.registry, placement.device.0)).or_insert(0) += 1;
        }
        self.assigned[id.0] = Some(placement);
    }
}

fn seed_stage_game(ctx: &SeedContext<'_>, id: MicroserviceId) -> Placement {
    let registries = [RegistryChoice::Hub, RegistryChoice::Regional];
    let devices = ctx.admissible_devices(id);
    let payoff = Matrix::from_fn(registries.len(), devices.len(), |r, c| {
        -ctx.estimate(id, registries[r], devices[c]).ec
    });
    let game = Bimatrix::common_interest(payoff);
    let (x, y) = support_enumeration(&game)
        .into_iter()
        .max_by(|a, b| {
            let pa = game.expected_payoffs(&a.0, &a.1).0;
            let pb = game.expected_payoffs(&b.0, &b.1).0;
            pa.partial_cmp(&pb).expect("payoffs are not NaN")
        })
        .expect("common-interest games have a pure equilibrium");
    Placement { registry: registries[x.mode()], device: devices[y.mode()] }
}

fn seed_profile_costs(app: &Application, testbed: &Testbed, profile: &[Placement]) -> Vec<f64> {
    let mut ctx = SeedContext::new(testbed, app);
    let mut costs = vec![0.0; app.len()];
    for stage in dataflow::stages(app) {
        ctx.begin_wave();
        for &id in &stage.members {
            let p = profile[id.0];
            costs[id.0] = ctx.estimate(id, p.registry, p.device).ec;
            ctx.commit(id, p);
        }
    }
    costs
}

/// The seed scheduler end to end: sequential stage games + joint
/// best-response refinement over the two-registry strategy space.
fn seed_schedule(app: &Application, testbed: &Testbed) -> Schedule {
    let mut ctx = SeedContext::new(testbed, app);
    let mut profile: Vec<Placement> = {
        let mut placements: Vec<Option<Placement>> = vec![None; app.len()];
        for stage in dataflow::stages(app) {
            ctx.begin_wave();
            for &id in &stage.members {
                let placement = seed_stage_game(&ctx, id);
                ctx.commit(id, placement);
                placements[id.0] = Some(placement);
            }
        }
        placements.into_iter().map(|p| p.expect("all visited")).collect()
    };
    let registries = [RegistryChoice::Hub, RegistryChoice::Regional];
    for _ in 0..32 {
        let mut changed = false;
        for id in app.ids() {
            let devices = SeedContext::new(testbed, app).admissible_devices(id);
            let current = seed_profile_costs(app, testbed, &profile)[id.0];
            let mut best = (current, profile[id.0]);
            for &registry in &registries {
                for &device in &devices {
                    let candidate = Placement { registry, device };
                    if candidate == profile[id.0] {
                        continue;
                    }
                    let mut probe = profile.clone();
                    probe[id.0] = candidate;
                    let cost = seed_profile_costs(app, testbed, &probe)[id.0];
                    if cost < best.0 - 1e-9 {
                        best = (cost, candidate);
                    }
                }
            }
            if best.1 != profile[id.0] {
                profile[id.0] = best.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Schedule::new(profile)
}

/// Replay a schedule with the seed estimator (old semantics) to predict
/// what the seed executor would have measured.
fn seed_replay(app: &Application, testbed: &Testbed, schedule: &Schedule) -> Vec<SeedEstimate> {
    let mut ctx = SeedContext::new(testbed, app);
    let mut out = Vec::new();
    for stage in dataflow::stages(app) {
        ctx.begin_wave();
        for &id in &stage.members {
            let p = schedule.placement(id);
            out.push(ctx.estimate(id, p.registry, p.device));
            ctx.commit(id, p);
        }
    }
    out
}

fn assert_seed_parity(app: &Application, testbed: &Testbed) {
    let mesh = DeepScheduler::paper().schedule(app, testbed);
    let seed = seed_schedule(app, testbed);
    assert_eq!(
        serde_json::to_string(&mesh).unwrap(),
        serde_json::to_string(&seed).unwrap(),
        "{}: mesh-wide solver diverged from the seed two-registry solver",
        app.name()
    );
    // Executor regression: the new per-source executor realises exactly
    // what the seed semantics predict for a two-registry schedule.
    let mut run_tb = calibration::calibrated_testbed();
    run_tb.publish_application(app);
    let replay = seed_replay(app, &run_tb, &mesh);
    let (report, _) = execute(&mut run_tb, app, &mesh, &ExecutorConfig::default()).unwrap();
    for (est, measured) in replay.iter().zip(&report.microservices) {
        assert_eq!(est.td, measured.td, "{}: td", measured.name);
        assert_eq!(est.tc, measured.tc, "{}: tc", measured.name);
        assert_eq!(est.tp, measured.tp, "{}: tp", measured.name);
        assert_eq!(est.ec, measured.energy.as_f64(), "{}: ec", measured.name);
    }
}

#[test]
fn case_studies_reproduce_seed_schedules_byte_for_byte() {
    let tb = calibration::calibrated_testbed();
    for app in apps::case_studies() {
        assert_seed_parity(&app, &tb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A {Hub, Regional}-only mesh yields byte-identical schedules and
    /// executor measurements to the seed two-registry Nash solver, across
    /// a population of generated applications.
    #[test]
    fn generated_apps_reproduce_seed_schedules_byte_for_byte(seed in 0u64..500) {
        let mut tb = calibration::calibrated_testbed();
        let app = dataflow::DagGenerator::default().generate(seed);
        tb.publish_application(&app);
        assert_seed_parity(&app, &tb);
    }
}

// ---------------------------------------------------------------------
// Three-source meshes: the peer is chosen only when marginally cheaper,
// and pricing it moves the equilibrium.
// ---------------------------------------------------------------------

/// Pull vp-ha-train through hub+regional+peer with the peer route at
/// `peer_bw`, returning the peer's bytes in the breakdown.
fn peer_bytes_at(peer_bw: Bandwidth) -> DataSize {
    let tb = calibration::calibrated_testbed();
    // Fleet peer warmed with the sibling image: holds the shared 5.2 GB.
    let mut peer_cache = LayerCache::new(DataSize::gigabytes(64.0));
    tb.pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Hub.registry_id())
        .pull(
            &Reference::new("docker.io", "sina88/vp-la-train", "amd64"),
            Platform::Amd64,
            &mut peer_cache,
        )
        .unwrap();
    let peer = PeerCacheSource::from_caches("peer-cache", [&peer_cache]);
    let mut mesh = tb.mesh(DEVICE_MEDIUM);
    mesh.add_blob_source(
        REGISTRY_PEER,
        &peer,
        SourceParams { download_bw: peer_bw, overhead: tb.params.peer_overhead },
    );
    let out = mesh
        .session(RegistryChoice::Hub.registry_id())
        .pull(
            &Reference::new("docker.io", "sina88/vp-ha-train", "amd64"),
            Platform::Amd64,
            &mut LayerCache::new(DataSize::gigabytes(64.0)),
        )
        .unwrap();
    out.per_source
        .iter()
        .find(|b| b.source == REGISTRY_PEER)
        .map(|b| b.downloaded)
        .unwrap_or(DataSize::ZERO)
}

#[test]
fn peer_source_is_chosen_only_when_marginally_cheaper() {
    // Slower than every registry route: the peer is advertised but never
    // marginally cheaper, so no layer rides it.
    assert_eq!(peer_bytes_at(Bandwidth::megabytes_per_sec(1.0)), DataSize::ZERO);
    // Exactly the hub rate: the peer's first-use overhead keeps it
    // strictly more expensive (ties break toward the primary anyway).
    assert_eq!(peer_bytes_at(Bandwidth::megabytes_per_sec(13.0)), DataSize::ZERO);
    // Fast fleet LAN: the whole fleet-resident 5.2 GB stack rides the
    // peer; only the unique app layer still comes from a registry.
    assert_eq!(peer_bytes_at(Bandwidth::megabytes_per_sec(80.0)), DataSize::megabytes(5200.0));
}

/// The acceptance scenario shared with `examples/registry_sweep.rs` and
/// the `nash_mesh` bench: a rolling redeploy of the video pipeline onto
/// the cloud tier of a warm fleet (the medium edge device already ran the
/// app). Returns the executed total deployment time.
fn cloud_redeploy_td(scheduler: &dyn Scheduler, peer_sharing: bool) -> (f64, RunReport) {
    let mut tb = deep::core::continuum_testbed();
    let app = apps::video_processing();
    let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
    // The redeploy targets the cloud tier (the edge devices stay busy
    // serving the first instance).
    let pins: Vec<(&str, dataflow::DeviceClass)> = app
        .ids()
        .map(|id| (app.microservice(id).name.as_str(), dataflow::DeviceClass::Cloud))
        .collect();
    let pinned = deep::core::continuum::pin_microservices(&app, &pins);
    let schedule = scheduler.schedule(&pinned, &tb);
    let cfg = ExecutorConfig { peer_sharing, ..Default::default() };
    let (report, _) = execute(&mut tb, &pinned, &schedule, &cfg).unwrap();
    let td: f64 = report.microservices.iter().map(|m| m.td.as_f64()).sum();
    (td, report)
}

#[test]
fn peer_mesh_equilibrium_beats_the_best_single_registry_schedule() {
    let (hub_td, _) = cloud_redeploy_td(&ExclusiveRegistry::hub(), false);
    let (regional_td, _) = cloud_redeploy_td(&ExclusiveRegistry::regional(), false);
    let (mesh_td, report) = cloud_redeploy_td(&DeepScheduler::with_peer_sharing(), true);
    let best_single = hub_td.min(regional_td);
    assert!(
        mesh_td < best_single,
        "mesh equilibrium Td {mesh_td} vs best single-registry {best_single}"
    );
    // "Measurably lower": the fleet-resident layers ride the peer LAN.
    assert!(mesh_td < best_single * 0.95, "{mesh_td} vs {best_single}");
    assert!(
        report.peer_downloaded_mb() > 1_000.0,
        "peer links served the stack: {:?}",
        report.downloaded_by_source()
    );
    // The per-holder breakdown names the warm medium device.
    assert_eq!(report.downloaded_by_peer()[0].0, DEVICE_MEDIUM);
}

#[test]
fn peer_aware_schedule_is_an_equilibrium_of_the_peer_game() {
    // The peer-aware scheduler's output is a pure Nash equilibrium under
    // its own (peer-priced) payoffs on the warm continuum fleet.
    let mut tb = deep::core::continuum_testbed();
    let app = apps::video_processing();
    let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
    let sched = DeepScheduler::with_peer_sharing();
    let schedule = sched.schedule(&app, &tb);
    assert!(sched.is_equilibrium(&app, &tb, &schedule));
}

// ---------------------------------------------------------------------
// N-regional mirrors enter the strategy space end to end.
// ---------------------------------------------------------------------

#[test]
fn mirrors_enter_the_nash_strategy_space_end_to_end() {
    // A fast mirror close to the small device dominates the paper
    // regional registry there: DEEP must route the small device's pulls
    // through it, and the executor must realise those pulls.
    let mut tb = calibration::calibrated_testbed();
    let mirror = tb.add_regional_mirror(Bandwidth::megabytes_per_sec(40.0), Seconds::new(2.0));
    let app = apps::text_processing();
    let schedule = DeepScheduler::paper().schedule(&app, &tb);
    assert!(
        schedule.iter().any(|(_, p)| p.registry == mirror),
        "nothing routed through the mirror: {schedule:?}"
    );
    let (report, _) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default()).unwrap();
    let mirror_mb = report
        .downloaded_by_source()
        .iter()
        .find(|(id, _)| *id == mirror.registry_id())
        .map(|(_, mb)| *mb)
        .unwrap_or(0.0);
    assert!(mirror_mb > 0.0, "mirror served no bytes: {:?}", report.downloaded_by_source());
    // And the result stays an equilibrium of the widened game.
    assert!(DeepScheduler::is_joint_equilibrium(&app, &tb, &schedule));
}
