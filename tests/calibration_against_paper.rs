//! Regenerated Table II against the published values: processing times
//! land on the calibrated midpoints, energies land in the right
//! neighbourhoods and orderings.

use deep::core::{calibration, Experiments};

#[test]
fn table2_processing_times_match_paper_midpoints_on_medium() {
    let exp = Experiments { trials: 6, base_seed: 11, jitter: 0.02 };
    let rows = exp.table2();
    let paper = calibration::paper_rows();
    for (row, p) in rows.iter().zip(&paper) {
        let mid = p.tp_mid();
        let measured_mid = (row.tp_medium.lo + row.tp_medium.hi) / 2.0;
        assert!(
            (measured_mid - mid).abs() / mid < 0.03,
            "{}/{}: measured {measured_mid:.1} vs paper {mid:.1}",
            row.application,
            row.microservice
        );
    }
}

#[test]
fn table2_energy_orderings_match_paper() {
    // Which device is cheaper per microservice is the load-bearing fact
    // for Table III; the regenerated energies must agree with the paper's
    // orderings row by row.
    let exp = Experiments { trials: 4, base_seed: 3, jitter: 0.02 };
    let rows = exp.table2();
    let paper = calibration::paper_rows();
    for (row, p) in rows.iter().zip(&paper) {
        let paper_medium_cheaper = p.ec_medium_mid() < p.ec_small_mid();
        let measured_medium_cheaper =
            (row.ec_medium.lo + row.ec_medium.hi) < (row.ec_small.lo + row.ec_small.hi);
        assert_eq!(
            measured_medium_cheaper,
            paper_medium_cheaper,
            "{}/{}: measured med {:?} small {:?}, paper med {} small {}",
            row.application,
            row.microservice,
            row.ec_medium,
            row.ec_small,
            p.ec_medium_mid(),
            p.ec_small_mid()
        );
    }
}

#[test]
fn table2_training_rows_dominate_energy() {
    let exp = Experiments { trials: 3, base_seed: 5, jitter: 0.02 };
    let rows = exp.table2();
    for app in ["video-processing", "text-processing"] {
        let max = rows
            .iter()
            .filter(|r| r.application == app)
            .max_by(|a, b| {
                let ea = a.ec_medium.hi.max(a.ec_small.hi);
                let eb = b.ec_medium.hi.max(b.ec_small.hi);
                ea.partial_cmp(&eb).unwrap()
            })
            .unwrap();
        assert!(max.microservice.contains("train"), "{app}: {}", max.microservice);
    }
}

#[test]
fn table2_energy_within_order_of_magnitude_of_paper() {
    // Absolute energies depend on deployment residuals that our bandwidth
    // model deliberately simplifies (the paper's testbed had large fixed
    // per-pull costs our simulation halves for small images — see
    // EXPERIMENTS.md). We therefore require the right order of magnitude
    // here; exact per-row deviations are recorded in EXPERIMENTS.md.
    let exp = Experiments { trials: 3, base_seed: 9, jitter: 0.02 };
    let rows = exp.table2();
    let paper = calibration::paper_rows();
    for (row, p) in rows.iter().zip(&paper) {
        let measured = (row.ec_medium.lo + row.ec_medium.hi) / 2.0;
        let target = p.ec_medium_mid();
        let ratio = measured / target;
        assert!(
            (0.25..3.0).contains(&ratio),
            "{}/{} medium: measured {measured:.0} vs paper {target:.0}",
            row.application,
            row.microservice
        );
        let measured = (row.ec_small.lo + row.ec_small.hi) / 2.0;
        let target = p.ec_small_mid();
        let ratio = measured / target;
        assert!(
            (0.25..3.0).contains(&ratio),
            "{}/{} small: measured {measured:.0} vs paper {target:.0}",
            row.application,
            row.microservice
        );
    }
}

#[test]
fn calibration_speed_factors_separate_the_applications() {
    // Video's ML stages slow 3.2× on ARM, text runs near parity, and the
    // hardware-codec transcode stays at 1.0 — the measured asymmetry that
    // drives Table III's device split.
    let rows = calibration::paper_rows();
    for r in &rows {
        match (r.application, r.microservice) {
            ("video-processing", "transcode") => assert_eq!(r.small_speed_factor, 1.0),
            ("video-processing", _) => assert_eq!(r.small_speed_factor, 3.2),
            ("text-processing", _) => assert_eq!(r.small_speed_factor, 1.1),
            _ => unreachable!(),
        }
    }
}
