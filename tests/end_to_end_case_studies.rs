//! End-to-end reproduction of the paper's evaluation on both case-study
//! applications: schedule with DEEP, execute on the calibrated testbed,
//! and check every published observable's shape.

use deep::core::{calibration, distribution, DeepScheduler, ExclusiveRegistry, Scheduler};
use deep::dataflow::apps;
use deep::simulator::{execute, ExecutorConfig, RegistryChoice, DEVICE_MEDIUM, DEVICE_SMALL};

#[test]
fn full_pipeline_video() {
    let mut tb = calibration::calibrated_testbed();
    let app = apps::video_processing();
    let schedule = DeepScheduler::paper().schedule(&app, &tb);
    let (report, trace) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default()).unwrap();

    // Table III shape.
    let rows = distribution::distribution_table(&app, &schedule);
    assert!((rows[0].hub_share - 5.0 / 6.0).abs() < 1e-9);
    assert!((rows[1].regional_share - 1.0 / 6.0).abs() < 1e-9);

    // Total energy is in the paper's kJ regime (Fig. 3b video bars sit
    // between 5 and 14 kJ).
    let total = report.total_energy().as_f64();
    assert!((5_000.0..14_000.0).contains(&total), "video total {total} J");

    // Training dominates (Fig. 3a).
    assert_eq!(report.max_energy_microservice().unwrap().name, "ha-train");

    // Monitoring captured the full lifecycle.
    assert_eq!(trace.of_kind(deep::simulator::TraceKind::ProcessingFinished).count(), 6);
}

#[test]
fn full_pipeline_text() {
    let mut tb = calibration::calibrated_testbed();
    let app = apps::text_processing();
    let schedule = DeepScheduler::paper().schedule(&app, &tb);
    let (report, _) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default()).unwrap();

    // Table III: 2 microservices on medium split across registries, 4 on
    // small from the regional registry.
    let on_medium = schedule.iter().filter(|(_, p)| p.device == DEVICE_MEDIUM).count();
    let on_small = schedule.iter().filter(|(_, p)| p.device == DEVICE_SMALL).count();
    assert_eq!((on_medium, on_small), (2, 4));
    let regional = schedule.iter().filter(|(_, p)| p.registry == RegistryChoice::Regional).count();
    assert_eq!(regional, 5, "83 % of text images pulled regionally");

    let total = report.total_energy().as_f64();
    assert!((3_000.0..9_000.0).contains(&total), "text total {total} J");
}

#[test]
fn deep_energy_ordering_holds_end_to_end() {
    // Fig. 3b: DEEP ≤ exclusively-regional and ≤ exclusively-hub, measured
    // by actual simulated execution (not just scheduler estimates).
    for app in apps::case_studies() {
        let scheduler_tb = calibration::calibrated_testbed();
        let mut totals = Vec::new();
        let schedules = [
            DeepScheduler::paper().schedule(&app, &scheduler_tb),
            ExclusiveRegistry::regional().schedule(&app, &scheduler_tb),
            ExclusiveRegistry::hub().schedule(&app, &scheduler_tb),
        ];
        for schedule in &schedules {
            let mut tb = calibration::calibrated_testbed();
            let (report, _) = execute(&mut tb, &app, schedule, &ExecutorConfig::default()).unwrap();
            totals.push(report.total_energy().as_f64());
        }
        assert!(totals[0] <= totals[1] + 1e-6, "{}: deep vs regional {totals:?}", app.name());
        assert!(totals[0] <= totals[2] + 1e-6, "{}: deep vs hub {totals:?}", app.name());
    }
}

#[test]
fn deep_schedule_is_nash_equilibrium_of_deployment_game() {
    let tb = calibration::calibrated_testbed();
    for app in apps::case_studies() {
        let schedule = DeepScheduler::paper().schedule(&app, &tb);
        assert!(DeepScheduler::is_joint_equilibrium(&app, &tb, &schedule), "{}", app.name());
    }
}

#[test]
fn makespan_dominated_by_deployment_and_training() {
    let mut tb = calibration::calibrated_testbed();
    let app = apps::video_processing();
    let schedule = DeepScheduler::paper().schedule(&app, &tb);
    let (report, _) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default()).unwrap();
    // The 5.78 GB training image dominates the timeline; makespan must
    // exceed its deployment alone but stay within the CT sum.
    let ha = report.metrics("ha-train").unwrap();
    assert!(report.makespan >= ha.td);
    let ct_sum: f64 = report.microservices.iter().map(|m| m.ct().as_f64()).sum();
    assert!(report.makespan.as_f64() <= ct_sum, "concurrent waves shorten the run");
}

#[test]
fn metered_and_analytic_energy_agree() {
    let mut tb = calibration::calibrated_testbed();
    for app in apps::case_studies() {
        let schedule = DeepScheduler::paper().schedule(&app, &tb);
        let (report, _) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default()).unwrap();
        let analytic = report.total_energy().as_f64();
        let metered = report.total_metered_energy().as_f64();
        assert!(
            (analytic - metered).abs() / analytic < 0.02,
            "{}: analytic {analytic} vs instruments {metered}",
            app.name()
        );
        tb.reset_caches();
    }
}
