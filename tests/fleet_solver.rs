//! Fleet-scale solver parity: the sparse potential-descent path must be
//! an *optimisation*, never a behaviour change.
//!
//! `DeepScheduler` picks its solve path by strategy-space size
//! (`sparse_threshold`, default keeps every paper-sized testbed dense).
//! These tests pin the two contracts that make the fleet path safe:
//!
//! 1. **Byte parity** — forcing the sparse path (`sparse_threshold: 1`)
//!    reproduces the default dense schedule byte for byte (serialized
//!    `Schedule` and executed `RunReport`) on the paper case studies,
//!    the continuum, a mirrored mesh, and proptest-generated apps; and
//!    forcing the dense path (`sparse_threshold: usize::MAX`) on a
//!    fleet that would auto-select sparse agrees too.
//! 2. **Fleet equilibria** — on seeded synthetic fleets the sparse path
//!    still lands on a verified pure Nash equilibrium (exhaustive and
//!    sampled deviation checks).

use deep::core::{calibration, continuum, DeepScheduler, Scheduler};
use deep::dataflow::{apps, Application, DagGenerator};
use deep::simulator::{execute, ExecutorConfig, RunReport, Schedule, Testbed};
use proptest::prelude::*;

fn forced_sparse() -> DeepScheduler {
    DeepScheduler { sparse_threshold: 1, ..DeepScheduler::paper() }
}

fn forced_dense() -> DeepScheduler {
    DeepScheduler { sparse_threshold: usize::MAX, ..DeepScheduler::paper() }
}

fn schedule_json(s: &Schedule) -> String {
    serde_json::to_string(s).expect("schedules serialize")
}

fn report_json(r: &RunReport) -> String {
    serde_json::to_string(r).expect("reports serialize")
}

/// Execute `schedule` on a fresh copy of the testbed built by `build`.
fn run(build: &dyn Fn() -> Testbed, app: &Application, schedule: &Schedule) -> RunReport {
    let mut tb = build();
    tb.publish_application(app);
    let (report, _) =
        execute(&mut tb, app, schedule, &ExecutorConfig::default()).expect("execution succeeds");
    report
}

#[test]
fn sparse_path_matches_dense_byte_for_byte_on_paper_case_studies() {
    let builders: [(&str, &dyn Fn() -> Testbed); 2] = [
        ("calibrated", &calibration::calibrated_testbed),
        ("continuum", &continuum::continuum_testbed),
    ];
    for (name, build) in builders {
        let tb = build();
        for app in apps::case_studies() {
            let dense = DeepScheduler::paper().schedule(&app, &tb);
            let sparse = forced_sparse().schedule(&app, &tb);
            assert_eq!(
                schedule_json(&dense),
                schedule_json(&sparse),
                "{name}/{}: sparse path diverged",
                app.name()
            );
            assert_eq!(
                report_json(&run(build, &app, &dense)),
                report_json(&run(build, &app, &sparse)),
                "{name}/{}: executed reports diverged",
                app.name()
            );
        }
    }
}

#[test]
fn sparse_path_matches_dense_on_a_mirrored_mesh() {
    use deep::netsim::{Bandwidth, Seconds};
    let build = || {
        let mut tb = calibration::calibrated_testbed();
        tb.add_regional_mirror(Bandwidth::megabytes_per_sec(9.0), Seconds::new(4.0));
        tb.add_regional_mirror(Bandwidth::megabytes_per_sec(11.0), Seconds::new(6.0));
        tb
    };
    let tb = build();
    for app in apps::case_studies() {
        let dense = DeepScheduler::paper().schedule(&app, &tb);
        let sparse = forced_sparse().schedule(&app, &tb);
        assert_eq!(schedule_json(&dense), schedule_json(&sparse), "{}", app.name());
    }
}

#[test]
fn default_scheduler_stays_dense_on_paper_sized_testbeds() {
    // The bit-for-bit seed guarantee rests on the default threshold
    // keeping paper-sized strategy spaces on the dense path; pin the
    // arithmetic so a threshold change cannot silently flip them.
    for tb in [calibration::calibrated_testbed(), continuum::continuum_testbed()] {
        let space = tb.registry_choices().len() * tb.devices.len();
        assert!(
            space < deep::core::DEFAULT_SPARSE_THRESHOLD,
            "paper-sized space {space} must stay below the sparse threshold"
        );
    }
}

#[test]
fn forced_dense_agrees_with_auto_sparse_on_a_fleet() {
    // 40 devices × 2 registries = 80 ≥ the default threshold, so the
    // default path is sparse; the dense path must still agree (it is
    // merely too slow to be the default out there).
    let tb = continuum::synthetic_fleet_testbed(40, 2, 11);
    assert!(
        tb.registry_choices().len() * tb.devices.len() >= deep::core::DEFAULT_SPARSE_THRESHOLD,
        "fleet must sit in the sparse regime"
    );
    let mut tb = tb;
    let gen = DagGenerator::default();
    for seed in 0..3u64 {
        let app = gen.generate(seed);
        tb.publish_application(&app);
        let auto = DeepScheduler::paper().schedule(&app, &tb);
        let dense = forced_dense().schedule(&app, &tb);
        assert_eq!(schedule_json(&auto), schedule_json(&dense), "seed {seed}");
    }
}

#[test]
fn fleet_equilibria_verify_exhaustively_and_by_sampling() {
    let mut tb = continuum::synthetic_fleet_testbed(30, 3, 7);
    let sched = DeepScheduler::paper();
    let gen = DagGenerator::default();
    for seed in [1u64, 17] {
        let app = gen.generate(seed);
        tb.publish_application(&app);
        let schedule = sched.schedule(&app, &tb);
        assert!(sched.is_equilibrium(&app, &tb, &schedule), "seed {seed}");
        assert!(sched.is_equilibrium_sampled(&app, &tb, &schedule, 32, seed), "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_path_matches_dense_on_generated_apps(seed in 0u64..500) {
        let mut tb = calibration::calibrated_testbed();
        let app = DagGenerator::default().generate(seed);
        tb.publish_application(&app);
        let dense = DeepScheduler::paper().schedule(&app, &tb);
        let sparse = forced_sparse().schedule(&app, &tb);
        prop_assert_eq!(schedule_json(&dense), schedule_json(&sparse));
    }
}
