//! Property-based tests over the cross-crate invariants.

use deep::core::{calibration, DeepScheduler, Scheduler};
use deep::dataflow::{stages, DagGenerator};
use deep::game::{support_enumeration, Bimatrix, Matrix};
use deep::netsim::{Bandwidth, DataSize};
use deep::objectstore::ErasureCoder;
use deep::registry::sha256::{sha256, Sha256};
use deep::simulator::{execute, ExecutorConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated applications always validate, decompose into stages that
    /// partition the microservices, and schedule + execute cleanly.
    #[test]
    fn generated_apps_schedule_and_execute(seed in 0u64..500) {
        let gen = DagGenerator::default();
        let app = gen.generate(seed);
        // Stage partition.
        let st = stages(&app);
        let total: usize = st.iter().map(|s| s.members.len()).sum();
        prop_assert_eq!(total, app.len());
        // Producers strictly earlier than consumers.
        let stage_of = |id| st.iter().position(|s| s.members.contains(&id)).unwrap();
        for f in app.flows() {
            prop_assert!(stage_of(f.from) < stage_of(f.to));
        }
        // Schedule + execute.
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        let schedule = DeepScheduler::without_refinement().schedule(&app, &tb);
        let (report, _) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default())
            .expect("generated apps are admissible on the paper testbed");
        // Conservation: CT decomposes, totals sum.
        let mut sum = 0.0;
        for m in &report.microservices {
            let ct = m.td.as_f64() + m.tc.as_f64() + m.tp.as_f64();
            prop_assert!((m.ct().as_f64() - ct).abs() < 1e-9);
            prop_assert!(m.energy.as_f64() >= 0.0);
            sum += m.energy.as_f64();
        }
        prop_assert!((report.total_energy().as_f64() - sum).abs() < 1e-6);
    }

    /// SHA-256 streaming equals one-shot for arbitrary splits.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split_frac in 0.0f64..1.0
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Reed–Solomon: any loss pattern within the parity budget decodes
    /// bit-exactly.
    #[test]
    fn erasure_decodes_any_tolerable_loss(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        k in 2usize..6,
        m in 1usize..4,
        loss_seed in any::<u64>()
    ) {
        let coder = ErasureCoder::new(k, m).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            coder.encode(&data).into_iter().map(Some).collect();
        // Deterministically drop up to m shards.
        let mut rng = loss_seed;
        let mut dropped = 0;
        while dropped < m {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (rng >> 33) as usize % shards.len();
            if shards[idx].is_some() {
                shards[idx] = None;
                dropped += 1;
            }
        }
        prop_assert_eq!(coder.decode(&shards, data.len()).unwrap(), data);
    }

    /// Every equilibrium reported by support enumeration verifies as a
    /// Nash equilibrium, on random games.
    #[test]
    fn support_enumeration_is_sound(
        entries_a in proptest::collection::vec(-10.0f64..10.0, 9),
        entries_b in proptest::collection::vec(-10.0f64..10.0, 9)
    ) {
        let a = Matrix::from_fn(3, 3, |i, j| entries_a[i * 3 + j]);
        let b = Matrix::from_fn(3, 3, |i, j| entries_b[i * 3 + j]);
        let game = Bimatrix::new(a, b);
        for (x, y) in support_enumeration(&game) {
            prop_assert!(game.is_nash(&x, &y));
        }
    }

    /// Unit arithmetic: transfer time scales linearly in size and
    /// inversely in bandwidth.
    #[test]
    fn transfer_time_scaling(mb in 1.0f64..10_000.0, bw in 1.0f64..1_000.0) {
        let t1 = DataSize::megabytes(mb) / Bandwidth::megabytes_per_sec(bw);
        let t2 = DataSize::megabytes(2.0 * mb) / Bandwidth::megabytes_per_sec(bw);
        let t3 = DataSize::megabytes(mb) / Bandwidth::megabytes_per_sec(2.0 * bw);
        prop_assert!((t2.as_f64() - 2.0 * t1.as_f64()).abs() < 1e-6 * t1.as_f64().max(1.0));
        prop_assert!((t3.as_f64() - 0.5 * t1.as_f64()).abs() < 1e-6 * t1.as_f64().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DEEP's schedule is never worse than the best exclusive method on
    /// the scheduler's own estimates (sanity of the game solution), for
    /// random workloads.
    #[test]
    fn deep_estimates_dominate_exclusive_estimates(seed in 0u64..100) {
        use deep::core::ExclusiveRegistry;
        let gen = DagGenerator { stages: 3, width: (1, 3), ..DagGenerator::default() };
        let app = gen.generate(seed);
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        let energy_of = |s: &deep::simulator::Schedule| -> f64 {
            let mut run_tb = calibration::calibrated_testbed();
            run_tb.publish_application(&app);
            let (report, _) = execute(&mut run_tb, &app, s, &ExecutorConfig::default()).unwrap();
            report.total_energy().as_f64()
        };
        let deep_e = energy_of(&DeepScheduler::paper().schedule(&app, &tb));
        let hub_e = energy_of(&ExclusiveRegistry::hub().schedule(&app, &tb));
        let reg_e = energy_of(&ExclusiveRegistry::regional().schedule(&app, &tb));
        prop_assert!(deep_e <= hub_e.min(reg_e) + 1e-6,
            "deep {} vs hub {} regional {}", deep_e, hub_e, reg_e);
    }
}
