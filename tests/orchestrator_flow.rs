//! The full Figure-1 loop through the orchestrator: user submits, DEEP
//! schedules, the orchestrator binds and drives the testbed, monitoring
//! records everything.

use deep::core::{calibration, DeepScheduler, Scheduler};
use deep::dataflow::apps;
use deep::orchestrator::{EventKind, Orchestrator, PodPhase};
use deep::simulator::{ExecutorConfig, RegistryChoice, DEVICE_SMALL};

#[test]
fn deep_bound_submission_reproduces_table_iii_placements() {
    let mut tb = calibration::calibrated_testbed();
    let mut orch = Orchestrator::new(&tb);
    let app = apps::text_processing();
    let report = orch
        .submit(
            &mut tb,
            &app,
            |a, t| DeepScheduler::paper().schedule(a, t),
            &ExecutorConfig::default(),
        )
        .unwrap();
    // 4 pods on the small node, all regional.
    let small_regional = report
        .pods
        .iter()
        .filter(|(s, _)| s.node == DEVICE_SMALL && s.registry == RegistryChoice::Regional)
        .count();
    assert_eq!(small_regional, 4);
    for (_, status) in &report.pods {
        assert_eq!(status.phase, PodPhase::Succeeded);
    }
}

#[test]
fn both_applications_roll_out_sequentially() {
    let mut tb = calibration::calibrated_testbed();
    let mut orch = Orchestrator::new(&tb);
    let mut makespans = Vec::new();
    for app in apps::case_studies() {
        let report = orch
            .submit(
                &mut tb,
                &app,
                |a, t| DeepScheduler::paper().schedule(a, t),
                &ExecutorConfig::default(),
            )
            .unwrap();
        makespans.push(report.run.makespan);
    }
    assert_eq!(makespans.len(), 2);
    // Events accumulated for 12 pods total.
    // (Access via a third, trivial submission's event log snapshot.)
}

#[test]
fn pod_timelines_respect_dag_barriers() {
    let mut tb = calibration::calibrated_testbed();
    let mut orch = Orchestrator::new(&tb);
    let app = apps::video_processing();
    let report = orch
        .submit(
            &mut tb,
            &app,
            |a, t| DeepScheduler::paper().schedule(a, t),
            &ExecutorConfig::default(),
        )
        .unwrap();
    let status = |name: &str| {
        report.pods.iter().find(|(s, _)| s.name.ends_with(name)).map(|(_, st)| st.clone()).unwrap()
    };
    // transcode -> frame -> trainers -> infers.
    let transcode = status("transcode");
    let frame = status("frame");
    let ha_train = status("ha-train");
    let ha_infer = status("ha-infer");
    assert!(frame.started_at.unwrap().as_f64() >= transcode.finished_at.unwrap().as_f64());
    assert!(ha_train.started_at.unwrap().as_f64() >= frame.finished_at.unwrap().as_f64());
    assert!(ha_infer.started_at.unwrap().as_f64() >= ha_train.finished_at.unwrap().as_f64());
}

#[test]
fn event_log_matches_pod_count() {
    let mut tb = calibration::calibrated_testbed();
    let mut orch = Orchestrator::new(&tb);
    let app = apps::text_processing();
    let report = orch
        .submit(
            &mut tb,
            &app,
            |a, t| DeepScheduler::paper().schedule(a, t),
            &ExecutorConfig::default(),
        )
        .unwrap();
    for kind in [
        EventKind::PodSubmitted,
        EventKind::PodBound,
        EventKind::ImagePulled,
        EventKind::PodStarted,
        EventKind::PodSucceeded,
    ] {
        assert_eq!(report.events.of_kind(kind).count(), 6, "{kind:?}");
    }
}
