//! Reproducibility: identical seeds produce identical results across the
//! whole pipeline (scheduling, execution, experiment drivers).

use deep::core::{calibration, DeepScheduler, Experiments, Scheduler};
use deep::dataflow::{apps, DagGenerator};
use deep::simulator::{execute, ExecutorConfig};

#[test]
fn executor_runs_are_bit_identical_per_seed() {
    let app = apps::video_processing();
    let cfg = ExecutorConfig { seed: 77, jitter: 0.02, ..Default::default() };
    let run = || {
        let mut tb = calibration::calibrated_testbed();
        let schedule = DeepScheduler::paper().schedule(&app, &tb);
        let (report, trace) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
        (report, trace.len())
    };
    let (a, ta) = run();
    let (b, tb_) = run();
    assert_eq!(a, b);
    assert_eq!(ta, tb_);
}

#[test]
fn different_seeds_differ_but_stay_in_band() {
    let app = apps::text_processing();
    let energies: Vec<f64> = (0..5u64)
        .map(|seed| {
            let mut tb = calibration::calibrated_testbed();
            let schedule = DeepScheduler::paper().schedule(&app, &tb);
            let cfg = ExecutorConfig { seed, jitter: 0.02, ..Default::default() };
            let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
            report.total_energy().as_f64()
        })
        .collect();
    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max > min, "jitter produces variation: {energies:?}");
    assert!((max - min) / min < 0.05, "±2 % jitter keeps runs within 5 %: {energies:?}");
}

#[test]
fn experiment_drivers_are_deterministic() {
    let exp = Experiments { trials: 3, base_seed: 21, jitter: 0.02 };
    assert_eq!(exp.table2(), exp.table2());
    assert_eq!(exp.fig3a(), exp.fig3a());
    assert_eq!(exp.fig3b(), exp.fig3b());
    assert_eq!(exp.table3(), exp.table3());
}

#[test]
fn generated_workload_pipeline_is_deterministic() {
    let gen = DagGenerator::default();
    let run = || {
        let app = gen.generate(5);
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        let schedule = DeepScheduler::paper().schedule(&app, &tb);
        let cfg = ExecutorConfig { seed: 9, jitter: 0.01, ..Default::default() };
        let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
        (schedule, report.total_energy().as_f64())
    };
    let (s1, e1) = run();
    let (s2, e2) = run();
    assert_eq!(s1, s2);
    assert_eq!(e1, e2);
}
