//! The checked-in scenario files (`scenarios/*.toml`) are load-bearing:
//! the sweep examples drive their grids from them and the tier-1 script
//! soaks them. These tests pin three contracts:
//!
//! 1. every checked-in file is in canonical [`Scenario::to_toml`] form
//!    (so `parse ∘ to_toml` is the identity on the shipped set);
//! 2. the file-driven grids reproduce the examples' original hard-coded
//!    recipes byte-for-byte — serialized schedules *and* executed
//!    [`RunReport`]s (checked on a grid subset to keep the suite fast);
//! 3. the sticky-outage soak headline: the scenario-priced scheduler
//!    routes around the scripted windows and beats the rate-only
//!    `DeepScheduler::fault_aware` baseline on realized mean `Td` (the
//!    margin PERF.md records).

use deep::core::{
    calibrate, run_scenario, scenario_scheduler, scenario_testbed, DeepScheduler, Scheduler,
};
use deep::netsim::{Bandwidth, Seconds};
use deep::registry::{FaultModel, FaultRates, RetryPolicy};
use deep::scenario::Scenario;
use deep::simulator::{execute, ExecutorConfig, RegistryChoice, Schedule, Testbed, TestbedParams};

fn load(file: &str) -> Scenario {
    let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    Scenario::load(&path).expect("checked-in scenario parses")
}

#[test]
fn checked_in_scenarios_are_in_canonical_form() {
    for file in [
        "fault_sweep.toml",
        "registry_sweep.toml",
        "n_regional_sweep.toml",
        "soak_sticky_outage.toml",
        "soak_smoke.toml",
        "arrival_soak.toml",
        "gossip_frontier.toml",
    ] {
        let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).expect("scenario file reads");
        let scenario = Scenario::parse(&text).expect("scenario parses");
        assert_eq!(scenario.to_toml(), text, "{file} is not in canonical to_toml form");
    }
}

/// The original hard-coded `examples/fault_sweep.rs` testbed recipe,
/// kept verbatim as the parity reference.
fn fault_sweep_reference_testbed(mirrors: usize, rate: f64) -> Testbed {
    let mut tb = Testbed::paper();
    calibrate(&mut tb);
    for k in 0..mirrors {
        tb.add_regional_mirror(Bandwidth::megabytes_per_sec(10.0 + k as f64), Seconds::new(5.0));
    }
    tb.fault_model = FaultModel::default()
        .with_source(
            RegistryChoice::Regional.registry_id(),
            FaultRates { fatal_per_pull: rate, transient_per_fetch: rate },
        )
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Seconds::new(10.0),
            ..Default::default()
        });
    tb
}

fn schedules_match(reference: &Schedule, from_file: &Schedule, ctx: &str) {
    assert_eq!(
        serde_json::to_string(reference).unwrap(),
        serde_json::to_string(from_file).unwrap(),
        "{ctx}: file-driven schedule diverged from the hard-coded recipe"
    );
}

#[test]
fn fault_sweep_file_reproduces_the_hard_coded_grid() {
    let grid = load("fault_sweep.toml").expand();
    assert_eq!(grid.len(), 12, "3 mirror counts × 4 rates");
    // Subset: the zero-rate corner (exercises the fault_injection flag
    // difference, covered by the zero-fault invariant) and a lossy
    // mirrored cell. Expansion order: first axis (mirror-count) slowest.
    for (idx, mirrors, rate) in [(0usize, 0usize, 0.0f64), (6, 1, 0.2)] {
        let cell = &grid[idx];
        assert_eq!(cell.testbed.mirrors, mirrors);
        let app = cell.application();
        let reference_tb = fault_sweep_reference_testbed(mirrors, rate);
        let file_tb = scenario_testbed(cell);
        for (name, scheduler) in
            [("paper", DeepScheduler::paper()), ("aware", DeepScheduler::fault_aware())]
        {
            let reference = scheduler.schedule(&app, &reference_tb);
            let from_file = scheduler.schedule(&app, &file_tb);
            schedules_match(&reference, &from_file, &format!("{}/{name}", cell.name));
        }
        // Realized execution parity over the first seeds of the stream:
        // the original recipe always injects (`fault_injection: true`),
        // the scenario path gates injection on a non-zero model — the
        // zero-fault invariant makes both byte-identical at rate 0.
        let schedule = DeepScheduler::fault_aware().schedule(&app, &reference_tb);
        for seed in 0..3u64 {
            let mut ref_tb = fault_sweep_reference_testbed(mirrors, rate);
            let cfg =
                ExecutorConfig { fault_injection: true, fault_seed: seed, ..Default::default() };
            let (reference, _) = execute(&mut ref_tb, &app, &schedule, &cfg).unwrap();
            let mut file_tb = scenario_testbed(cell);
            let (from_file, _) =
                execute(&mut file_tb, &app, &schedule, &cell.executor_config(seed as u32)).unwrap();
            assert_eq!(
                serde_json::to_string(&reference).unwrap(),
                serde_json::to_string(&from_file).unwrap(),
                "{} seed {seed}: realized report diverged",
                cell.name
            );
        }
    }
}

#[test]
fn registry_sweep_file_reproduces_the_hard_coded_recipe() {
    let grid = load("registry_sweep.toml").expand();
    assert_eq!(grid.len(), 8);
    // The paper's own operating point.
    let cell = grid.iter().find(|c| c.testbed.regional_to_small_mbps == Some(9.5)).unwrap();
    let app = cell.application();
    let reference_tb = {
        let params = TestbedParams {
            regional_to_small: Bandwidth::megabytes_per_sec(9.5),
            ..TestbedParams::default()
        };
        let mut tb = Testbed::with_params(params);
        calibrate(&mut tb);
        tb
    };
    let reference_schedule = DeepScheduler::paper().schedule(&app, &reference_tb);
    let outcome = run_scenario(cell, &DeepScheduler::paper());
    schedules_match(&reference_schedule, &outcome.schedule, &cell.name);
    let mut run_tb = {
        let params = TestbedParams {
            regional_to_small: Bandwidth::megabytes_per_sec(9.5),
            ..TestbedParams::default()
        };
        let mut tb = Testbed::with_params(params);
        calibrate(&mut tb);
        tb
    };
    let (reference_report, _) =
        execute(&mut run_tb, &app, &reference_schedule, &ExecutorConfig::default()).unwrap();
    assert_eq!(outcome.reports.len(), 1);
    assert_eq!(
        serde_json::to_string(&reference_report).unwrap(),
        serde_json::to_string(&outcome.reports[0]).unwrap(),
        "zero-event cell must replay the plain executor path byte-for-byte"
    );
}

#[test]
fn n_regional_sweep_file_reproduces_the_hard_coded_recipe() {
    let grid = load("n_regional_sweep.toml").expand();
    assert_eq!(grid.len(), 4);
    let cell = &grid[2];
    assert_eq!(cell.testbed.mirrors, 2);
    let app = cell.application();
    let reference_tb = {
        let mut tb = Testbed::paper();
        calibrate(&mut tb);
        for k in 0..2 {
            tb.add_regional_mirror(
                Bandwidth::megabytes_per_sec(10.0 + k as f64),
                Seconds::new(5.0),
            );
        }
        tb
    };
    let reference = DeepScheduler::paper().schedule(&app, &reference_tb);
    let outcome = run_scenario(cell, &DeepScheduler::paper());
    schedules_match(&reference, &outcome.schedule, &cell.name);
}

#[test]
fn sticky_outage_soak_priced_scheduler_beats_fault_aware() {
    // The tentpole headline: under the checked-in sticky correlated
    // outage (regional AND mirror-0 dark for the whole run) the rate-only
    // fault_aware game still routes onto the doomed sources — it sees
    // healthy rates — while the scenario-priced game replays the windows
    // and keeps every pull on the hub.
    let scenario = load("soak_sticky_outage.toml");
    let aware = run_scenario(&scenario, &DeepScheduler::fault_aware());
    let priced = run_scenario(&scenario, &scenario_scheduler(&scenario));
    assert!(aware.failovers() > 0, "the blind baseline must actually hit the windows");
    assert_eq!(priced.failovers(), 0, "routing around the windows avoids all failover");
    for (_, placement) in priced.schedule.iter() {
        assert_eq!(placement.registry, RegistryChoice::Hub, "dark sources priced out");
    }
    let margin = 1.0 - priced.mean_td() / aware.mean_td();
    // Measured ≈ 44 % (PERF.md); assert a conservative floor so the
    // headline cannot silently erode.
    assert!(margin > 0.30, "realized mean-Td margin {margin:.3} fell below 30%");
}
