//! Cross-crate cache behaviour: layer dedup across images, applications
//! and registries, and eviction under tight storage.

use deep::core::calibration;
use deep::dataflow::apps;
use deep::netsim::DataSize;
use deep::registry::{Digest, LayerCache, Platform, PullPlanner, Reference, Registry};
use deep::simulator::{execute, ExecutorConfig, RegistryChoice, Schedule, DEVICE_MEDIUM};

#[test]
fn second_deployment_of_an_application_is_nearly_free() {
    let mut tb = calibration::calibrated_testbed();
    let app = apps::text_processing();
    let schedule = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    let cfg = ExecutorConfig::default();
    let (cold, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let (warm, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let cold_dl: f64 = cold.microservices.iter().map(|m| m.downloaded_mb).sum();
    let warm_dl: f64 = warm.microservices.iter().map(|m| m.downloaded_mb).sum();
    // 6.9 GB of images dedup to ~4 GB of unique layers even cold.
    assert!(cold_dl > 3_500.0, "cold run moves gigabytes: {cold_dl} MB");
    assert_eq!(warm_dl, 0.0, "warm run is fully cached");
    assert!(warm.total_energy() < cold.total_energy());
}

#[test]
fn cross_application_base_layers_dedup() {
    // video ha-infer and text retrieve both sit on python:3.9-slim; after
    // running video on the medium device, text's retrieve pull shrinks.
    let mut tb = calibration::calibrated_testbed();
    let cfg = ExecutorConfig::default();

    let text = apps::text_processing();
    let text_schedule = Schedule::uniform(text.len(), RegistryChoice::Hub, DEVICE_MEDIUM);

    // Baseline: retrieve cold.
    let (cold, _) = execute(&mut tb, &text, &text_schedule, &cfg).unwrap();
    let cold_retrieve = cold.metrics("retrieve").unwrap().downloaded_mb;
    assert!((cold_retrieve - 140.0).abs() < 1.0);

    // Fresh testbed, video first.
    let mut tb = calibration::calibrated_testbed();
    let video = apps::video_processing();
    let video_schedule = Schedule::uniform(video.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &video, &video_schedule, &cfg).unwrap();
    let (after_video, _) = execute(&mut tb, &text, &text_schedule, &cfg).unwrap();
    let warm_retrieve = after_video.metrics("retrieve").unwrap().downloaded_mb;
    assert!(
        (warm_retrieve - 20.0).abs() < 1.0,
        "python:3.9-slim (120 MB) cached by video: {warm_retrieve} MB"
    );
}

#[test]
fn registries_are_interchangeable_for_cached_layers() {
    // Content addressing: pulling from the Hub then re-pulling the same
    // image regionally transfers nothing.
    let tb = calibration::calibrated_testbed();
    let planner = PullPlanner {
        download_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        extract_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        overhead: deep::netsim::Seconds::new(1.0),
    };
    let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
    let hub_ref = Reference::new("docker.io", "sina88/tp-decompress", "amd64");
    planner.pull(&tb.hub, &hub_ref, Platform::Amd64, &mut cache).unwrap();
    let reg_ref = Reference::new("dcloud2.itec.aau.at", "aau/tp-decompress", "amd64");
    let out = planner.pull(&tb.regional, &reg_ref, Platform::Amd64, &mut cache).unwrap();
    assert_eq!(out.downloaded, DataSize::ZERO);
    assert_eq!(out.cache_hits, 3);
}

#[test]
fn tight_storage_evicts_lru_layers() {
    // A cache that can hold only one big training image thrashes between
    // siblings once the shared stack no longer fits alongside both apps.
    let mut cache = LayerCache::new(DataSize::gigabytes(6.0));
    let tb = calibration::calibrated_testbed();
    let planner = PullPlanner {
        download_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        extract_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        overhead: deep::netsim::Seconds::new(1.0),
    };
    let ha = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let infer = Reference::new("docker.io", "sina88/vp-ha-infer", "amd64");
    planner.pull(&tb.hub, &ha, Platform::Amd64, &mut cache).unwrap();
    assert!(cache.used() <= DataSize::gigabytes(6.0));
    // Pulling the 3.53 GB infer image must evict training layers.
    planner.pull(&tb.hub, &infer, Platform::Amd64, &mut cache).unwrap();
    assert!(cache.used() <= DataSize::gigabytes(6.0), "quota holds: {}", cache.used());
    // Re-pulling ha-train now re-downloads something.
    let again = planner.pull(&tb.hub, &ha, Platform::Amd64, &mut cache).unwrap();
    assert!(again.downloaded > DataSize::ZERO, "eviction forced re-downloads");
}

#[test]
fn digests_are_stable_across_testbed_instances() {
    // The content address of a layer must not depend on which testbed or
    // registry instance produced it (pure function of the layer identity).
    let a = calibration::calibrated_testbed();
    let b = calibration::calibrated_testbed();
    let ref_a = Reference::new("docker.io", "sina88/vp-frame", "arm64");
    let m1 = a.hub.resolve(&ref_a, Platform::Arm64).unwrap();
    let m2 = b.hub.resolve(&ref_a, Platform::Arm64).unwrap();
    assert_eq!(m1.digest(), m2.digest());
    let digests1: Vec<&Digest> = m1.layers.iter().map(|l| &l.digest).collect();
    let digests2: Vec<&Digest> = m2.layers.iter().map(|l| &l.digest).collect();
    assert_eq!(digests1, digests2);
}
