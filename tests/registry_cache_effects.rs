//! Cross-crate cache behaviour: layer dedup across images, applications
//! and registries, eviction under tight storage, and mesh split pulls
//! (hub + regional + peer cache serving one image).

use deep::core::calibration;
use deep::dataflow::apps;
use deep::netsim::{DataSize, RegistryId};
use deep::registry::{
    Digest, LayerCache, ManifestSource, PeerCacheSource, Platform, PullPlanner, Reference,
    SourceParams,
};
use deep::simulator::{
    execute, ExecutorConfig, RegistryChoice, Schedule, DEVICE_MEDIUM, REGISTRY_PEER,
};

#[test]
fn second_deployment_of_an_application_is_nearly_free() {
    let mut tb = calibration::calibrated_testbed();
    let app = apps::text_processing();
    let schedule = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    let cfg = ExecutorConfig::default();
    let (cold, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let (warm, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let cold_dl: f64 = cold.microservices.iter().map(|m| m.downloaded_mb).sum();
    let warm_dl: f64 = warm.microservices.iter().map(|m| m.downloaded_mb).sum();
    // 6.9 GB of images dedup to ~4 GB of unique layers even cold.
    assert!(cold_dl > 3_500.0, "cold run moves gigabytes: {cold_dl} MB");
    assert_eq!(warm_dl, 0.0, "warm run is fully cached");
    assert!(warm.total_energy() < cold.total_energy());
}

#[test]
fn cross_application_base_layers_dedup() {
    // video ha-infer and text retrieve both sit on python:3.9-slim; after
    // running video on the medium device, text's retrieve pull shrinks.
    let mut tb = calibration::calibrated_testbed();
    let cfg = ExecutorConfig::default();

    let text = apps::text_processing();
    let text_schedule = Schedule::uniform(text.len(), RegistryChoice::Hub, DEVICE_MEDIUM);

    // Baseline: retrieve cold.
    let (cold, _) = execute(&mut tb, &text, &text_schedule, &cfg).unwrap();
    let cold_retrieve = cold.metrics("retrieve").unwrap().downloaded_mb;
    assert!((cold_retrieve - 140.0).abs() < 1.0);

    // Fresh testbed, video first.
    let mut tb = calibration::calibrated_testbed();
    let video = apps::video_processing();
    let video_schedule = Schedule::uniform(video.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &video, &video_schedule, &cfg).unwrap();
    let (after_video, _) = execute(&mut tb, &text, &text_schedule, &cfg).unwrap();
    let warm_retrieve = after_video.metrics("retrieve").unwrap().downloaded_mb;
    assert!(
        (warm_retrieve - 20.0).abs() < 1.0,
        "python:3.9-slim (120 MB) cached by video: {warm_retrieve} MB"
    );
}

#[test]
fn registries_are_interchangeable_for_cached_layers() {
    // Content addressing: pulling from the Hub then re-pulling the same
    // image regionally transfers nothing.
    let tb = calibration::calibrated_testbed();
    let planner = PullPlanner {
        download_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        extract_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        overhead: deep::netsim::Seconds::new(1.0),
    };
    let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
    let hub_ref = Reference::new("docker.io", "sina88/tp-decompress", "amd64");
    planner.pull(&tb.hub, &hub_ref, Platform::Amd64, &mut cache).unwrap();
    let reg_ref = Reference::new("dcloud2.itec.aau.at", "aau/tp-decompress", "amd64");
    let out = planner.pull(&tb.regional, &reg_ref, Platform::Amd64, &mut cache).unwrap();
    assert_eq!(out.downloaded, DataSize::ZERO);
    assert_eq!(out.cache_hits, 3);
}

#[test]
fn tight_storage_evicts_lru_layers() {
    // A cache that can hold only one big training image thrashes between
    // siblings once the shared stack no longer fits alongside both apps.
    let mut cache = LayerCache::new(DataSize::gigabytes(6.0));
    let tb = calibration::calibrated_testbed();
    let planner = PullPlanner {
        download_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        extract_bw: deep::netsim::Bandwidth::megabytes_per_sec(10.0),
        overhead: deep::netsim::Seconds::new(1.0),
    };
    let ha = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let infer = Reference::new("docker.io", "sina88/vp-ha-infer", "amd64");
    planner.pull(&tb.hub, &ha, Platform::Amd64, &mut cache).unwrap();
    assert!(cache.used() <= DataSize::gigabytes(6.0));
    // Pulling the 3.53 GB infer image must evict training layers.
    planner.pull(&tb.hub, &infer, Platform::Amd64, &mut cache).unwrap();
    assert!(cache.used() <= DataSize::gigabytes(6.0), "quota holds: {}", cache.used());
    // Re-pulling ha-train now re-downloads something.
    let again = planner.pull(&tb.hub, &ha, Platform::Amd64, &mut cache).unwrap();
    assert!(again.downloaded > DataSize::ZERO, "eviction forced re-downloads");
}

#[test]
fn single_source_mesh_reproduces_the_seed_pull_path() {
    // The mesh parity contract at testbed calibration: a session over the
    // testbed's hub-only mesh equals the seed planner pull, field for
    // field, cold and warm.
    let tb = calibration::calibrated_testbed();
    let mesh = tb.pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0);
    let session = mesh
        .session(RegistryChoice::Hub.registry_id())
        .extract_bw(tb.device(DEVICE_MEDIUM).extract_bw);
    let planner = PullPlanner {
        download_bw: tb.params.route_bandwidth(RegistryChoice::Hub, DEVICE_MEDIUM),
        extract_bw: tb.device(DEVICE_MEDIUM).extract_bw,
        overhead: tb.params.hub_overhead,
    };
    let r = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let mut mesh_cache = LayerCache::new(DataSize::gigabytes(64.0));
    let mut seed_cache = LayerCache::new(DataSize::gigabytes(64.0));
    for _ in 0..2 {
        let mesh_out = session.pull(&r, Platform::Amd64, &mut mesh_cache).unwrap();
        let seed_out = planner.pull(&tb.hub, &r, Platform::Amd64, &mut seed_cache).unwrap();
        assert_eq!(mesh_out, seed_out);
    }
}

#[test]
fn split_pull_beats_the_best_single_registry_pull() {
    // The acceptance scenario: a fleet peer holds the 5.2 GB training
    // stack; deploying the sibling via a hub+regional+peer mesh must beat
    // both exclusive pulls on total Td.
    let tb = calibration::calibrated_testbed();
    let extract = tb.device(DEVICE_MEDIUM).extract_bw;

    // Warm a peer with vp-la-train (shares 5.2 of vp-ha-train's 5.78 GB).
    let mut peer_cache = LayerCache::new(DataSize::gigabytes(64.0));
    let la = Reference::new("docker.io", "sina88/vp-la-train", "amd64");
    tb.pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Hub.registry_id())
        .pull(&la, Platform::Amd64, &mut peer_cache)
        .unwrap();
    let peer = PeerCacheSource::from_caches("peer-cache", [&peer_cache]);

    let ha_hub = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let ha_regional = Reference::new("dcloud2.itec.aau.at", "aau/vp-ha-train", "amd64");

    let single = |choice: RegistryChoice, r: &Reference| {
        let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
        tb.pull_mesh(choice, DEVICE_MEDIUM, 1.0)
            .session(choice.registry_id())
            .extract_bw(extract)
            .pull(r, Platform::Amd64, &mut cache)
            .unwrap()
            .deployment_time()
    };
    let hub_only = single(RegistryChoice::Hub, &ha_hub);
    let regional_only = single(RegistryChoice::Regional, &ha_regional);

    let mut mesh = tb.mesh(DEVICE_MEDIUM);
    mesh.add_blob_source(
        REGISTRY_PEER,
        &peer,
        SourceParams { download_bw: tb.params.peer_bw, overhead: tb.params.peer_overhead },
    );
    let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
    let split = mesh
        .session(RegistryChoice::Hub.registry_id())
        .extract_bw(extract)
        .pull(&ha_hub, Platform::Amd64, &mut cache)
        .unwrap();

    assert!(
        split.deployment_time().as_f64() < hub_only.as_f64().min(regional_only.as_f64()),
        "split {} vs hub {hub_only} / regional {regional_only}",
        split.deployment_time()
    );
    // The breakdown shows the split: most bytes from the peer, the unique
    // app layer from a registry.
    assert!(split.per_source.len() >= 2, "{:?}", split.per_source);
    let peer_bytes = split
        .per_source
        .iter()
        .find(|b| b.source == REGISTRY_PEER)
        .map(|b| b.downloaded)
        .unwrap_or(DataSize::ZERO);
    assert_eq!(peer_bytes, DataSize::megabytes(5200.0));
    let total: DataSize = split.per_source.iter().fold(DataSize::ZERO, |acc, b| acc + b.downloaded);
    assert_eq!(total, split.downloaded, "breakdown accounts for every byte");
}

#[test]
fn split_pull_layers_land_in_the_device_cache_once() {
    // Layers fetched from different sources are still content-addressed:
    // the pulling device's cache ends identical to a single-source pull.
    let tb = calibration::calibrated_testbed();
    let mut peer_cache = LayerCache::new(DataSize::gigabytes(64.0));
    let la = Reference::new("docker.io", "sina88/vp-la-train", "amd64");
    tb.pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Hub.registry_id())
        .pull(&la, Platform::Amd64, &mut peer_cache)
        .unwrap();
    let peer = PeerCacheSource::from_caches("peer-cache", [&peer_cache]);

    let ha = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let mut mesh = tb.mesh(DEVICE_MEDIUM);
    mesh.add_blob_source(
        REGISTRY_PEER,
        &peer,
        SourceParams { download_bw: tb.params.peer_bw, overhead: tb.params.peer_overhead },
    );
    let mut split_cache = LayerCache::new(DataSize::gigabytes(64.0));
    mesh.session(RegistryChoice::Hub.registry_id())
        .pull(&ha, Platform::Amd64, &mut split_cache)
        .unwrap();

    let mut single_cache = LayerCache::new(DataSize::gigabytes(64.0));
    tb.pull_mesh(RegistryChoice::Hub, DEVICE_MEDIUM, 1.0)
        .session(RegistryChoice::Hub.registry_id())
        .pull(&ha, Platform::Amd64, &mut single_cache)
        .unwrap();

    assert_eq!(split_cache.len(), single_cache.len());
    assert_eq!(split_cache.used(), single_cache.used());
    // A re-pull through any source is now fully warm.
    let warm = mesh
        .session(RegistryChoice::Regional.registry_id())
        .pull(
            &Reference::new("dcloud2.itec.aau.at", "aau/vp-ha-train", "amd64"),
            Platform::Amd64,
            &mut split_cache,
        )
        .unwrap();
    assert_eq!(warm.downloaded, DataSize::ZERO);
    assert!(warm.per_source.is_empty());
}

#[test]
fn mesh_registers_extra_regional_registries() {
    // The open-mesh claim: a second regional (a mirror of the first) under
    // a fresh id serves pulls exactly like the original — N regionals are
    // data, not new API variants.
    let tb = calibration::calibrated_testbed();
    let mirror = deep::registry::RegionalRegistry::with_paper_catalog();
    let mirror_id = RegistryId(3);
    let mut mesh = tb.mesh(DEVICE_MEDIUM);
    mesh.add_registry(
        mirror_id,
        &mirror,
        tb.params.source_params(RegistryChoice::Regional, DEVICE_MEDIUM, 1.0),
    );
    assert_eq!(mesh.len(), 3);
    let r = Reference::new("dcloud2.itec.aau.at", "aau/tp-retrieve", "amd64");
    let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
    let out = mesh.session(mirror_id).pull(&r, Platform::Amd64, &mut cache).unwrap();
    assert!(out.downloaded > DataSize::ZERO);
    assert_eq!(out.per_source.len(), 1);
    assert_eq!(out.per_source[0].source, mirror_id, "served by the mirror");
}

#[test]
fn digests_are_stable_across_testbed_instances() {
    // The content address of a layer must not depend on which testbed or
    // registry instance produced it (pure function of the layer identity).
    let a = calibration::calibrated_testbed();
    let b = calibration::calibrated_testbed();
    let ref_a = Reference::new("docker.io", "sina88/vp-frame", "arm64");
    let m1 = a.hub.resolve(&ref_a, Platform::Arm64).unwrap();
    let m2 = b.hub.resolve(&ref_a, Platform::Arm64).unwrap();
    assert_eq!(m1.digest(), m2.digest());
    let digests1: Vec<&Digest> = m1.layers.iter().map(|l| &l.digest).collect();
    let digests2: Vec<&Digest> = m2.layers.iter().map(|l| &l.digest).collect();
    assert_eq!(digests1, digests2);
}
