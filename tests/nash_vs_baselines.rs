//! DEEP against the baseline schedulers across generated workloads and
//! ablation variants.

use deep::core::{
    calibration, DeepScheduler, ExclusiveRegistry, GreedyDecoupled, RandomScheduler, RoundRobin,
    Scheduler,
};
use deep::dataflow::DagGenerator;
use deep::simulator::{execute, ExecutorConfig, Schedule, Testbed};

// Local helper trait to keep the test body terse.
trait RunTotal {
    fn total_energy_of(&mut self, app: &deep::dataflow::Application, s: &Schedule) -> f64;
}

impl RunTotal for Testbed {
    fn total_energy_of(&mut self, app: &deep::dataflow::Application, s: &Schedule) -> f64 {
        self.reset_caches();
        let (report, _) = execute(self, app, s, &ExecutorConfig::default()).unwrap();
        report.total_energy().as_f64()
    }
}

#[test]
fn deep_never_loses_to_exclusive_methods_on_generated_apps() {
    let generator = DagGenerator::default();
    for seed in 0..8u64 {
        let app = generator.generate(seed);
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        let deep_s = DeepScheduler::paper().schedule(&app, &tb);
        let hub_s = ExclusiveRegistry::hub().schedule(&app, &tb);
        let reg_s = ExclusiveRegistry::regional().schedule(&app, &tb);
        let deep = tb.total_energy_of(&app, &deep_s);
        let hub = tb.total_energy_of(&app, &hub_s);
        let reg = tb.total_energy_of(&app, &reg_s);
        assert!(deep <= hub * 1.0 + 1e-6, "seed {seed}: deep {deep} vs hub {hub}");
        assert!(deep <= reg + 1e-6, "seed {seed}: deep {deep} vs regional {reg}");
    }
}

#[test]
fn deep_beats_random_and_round_robin_decisively_on_average() {
    let generator = DagGenerator::default();
    let mut deep_sum = 0.0;
    let mut naive_sum = 0.0;
    for seed in 0..6u64 {
        let app = generator.generate(100 + seed);
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        let deep_s = DeepScheduler::without_refinement().schedule(&app, &tb);
        deep_sum += tb.total_energy_of(&app, &deep_s);
        let rr = RoundRobin.schedule(&app, &tb);
        let rnd = RandomScheduler { seed }.schedule(&app, &tb);
        naive_sum += tb.total_energy_of(&app, &rr).min(tb.total_energy_of(&app, &rnd));
    }
    assert!(
        deep_sum < naive_sum,
        "deep total {deep_sum} must undercut best-naive total {naive_sum}"
    );
}

#[test]
fn refinement_ablation_on_generated_apps() {
    // The joint best-response refinement never worsens DEEP's realized
    // energy (it follows the congestion game's potential downhill).
    let generator = DagGenerator { stages: 5, width: (2, 3), ..DagGenerator::default() };
    for seed in 0..5u64 {
        let app = generator.generate(seed);
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        let seq = DeepScheduler::without_refinement().schedule(&app, &tb);
        let refined = DeepScheduler::paper().schedule(&app, &tb);
        let seq_e = tb.total_energy_of(&app, &seq);
        let ref_e = tb.total_energy_of(&app, &refined);
        assert!(ref_e <= seq_e * 1.02 + 1e-6, "seed {seed}: refined {ref_e} vs sequential {seq_e}");
    }
}

#[test]
fn greedy_decoupled_pays_for_ignoring_deployment() {
    // On the case studies, the decoupled heuristic must not beat DEEP;
    // on workloads with big sibling images it strictly loses.
    let app = deep::dataflow::apps::video_processing();
    let mut tb = calibration::calibrated_testbed();
    let deep_s = DeepScheduler::paper().schedule(&app, &tb);
    let greedy_s = GreedyDecoupled.schedule(&app, &tb);
    let deep = tb.total_energy_of(&app, &deep_s);
    let greedy = tb.total_energy_of(&app, &greedy_s);
    assert!(deep <= greedy + 1e-6, "deep {deep} vs greedy {greedy}");
}
