//! Failover-aware scheduling under the seeded fault-injection harness.
//!
//! The contracts that make fault pricing safe and worth having:
//!
//! 1. **Zero-fault parity** — with every failure probability at zero,
//!    fault-aware schedulers and a fault-injecting executor are
//!    *byte-identical* (serialized comparison) to the happy-path stack:
//!    schedules and RunReports alike, over the case studies and a
//!    proptest population of generated applications.
//! 2. **Closed-form `E[Td]`** — the estimator's two-branch expectation
//!    (`(1−p)·(Td_happy+B_h) + p·(Td_failover+B_f+detection)`) matches
//!    the Monte-Carlo mean of seeded executor runs, per registry
//!    choice. The comparison runs with route contention off
//!    (`contention_alpha = 0`): same-wave contention couples pulls
//!    through the *realised* (random) routes, which the per-pull closed
//!    form deliberately prices at the happy-path mode; with it off the
//!    form is exact and the only residual is sampling error.
//! 3. **Retry-path accounting** — injected transient bursts charge
//!    exactly the policy's backoff schedule (jittered and unjittered),
//!    resolve bursts count `attempts`, and a fatal death burns the
//!    exhausted retry budget before the failover re-plan.
//! 4. **The headline** — under a 20 % lossy regional the fault-aware
//!    equilibrium reroutes risk-weighted bytes toward the hub and beats
//!    the happy-path scheduler's realized mean Td over 200 seeded fault
//!    plans (numbers recorded in PERF.md).

use deep::core::{calibrate, calibration, DeepScheduler, EstimationContext, Scheduler};
use deep::dataflow::{self, apps, Application};
use deep::netsim::Seconds;
use deep::registry::{FaultModel, FaultRates, FlakyRegistry, HubRegistry, RetryPolicy};
use deep::registry::{PlannedFaults, RegionalRegistry, RegistryMesh, SourceParams};
use deep::simulator::{
    execute, ExecutorConfig, RegistryChoice, RunReport, Schedule, Testbed, TestbedParams,
    DEVICE_MEDIUM,
};
use proptest::prelude::*;

/// A Docker-ish retry policy for the fault scenarios: a dead registry
/// costs `10 + 20 + 40 = 70 s` of exhausted backoff before the client
/// gives up on it and fails over.
fn scenario_retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 4, base_backoff: Seconds::new(10.0), ..Default::default() }
}

/// The ISSUE's lossy-regional model: the paper regional registry fails
/// fatally per pull with `fatal` and transiently per fetch with
/// `transient`; the hub stays reliable.
fn lossy_regional(fatal: f64, transient: f64) -> FaultModel {
    FaultModel::default()
        .with_source(
            RegistryChoice::Regional.registry_id(),
            FaultRates { fatal_per_pull: fatal, transient_per_fetch: transient },
        )
        .with_retry(scenario_retry())
}

fn faulty_testbed(alpha: f64, model: &FaultModel) -> Testbed {
    let mut tb =
        Testbed::with_params(TestbedParams { contention_alpha: alpha, ..TestbedParams::default() });
    calibrate(&mut tb);
    tb.fault_model = model.clone();
    tb
}

fn total_td(report: &RunReport) -> f64 {
    report.microservices.iter().map(|m| m.td.as_f64()).sum()
}

/// Replay `schedule` through a fault-pricing estimation context and sum
/// the per-microservice `E[Td]` — the closed form under test.
fn expected_total_td(tb: &Testbed, app: &Application, schedule: &Schedule) -> f64 {
    let mut ctx = EstimationContext::new(tb, app).price_faults(true);
    let mut total = 0.0;
    for stage in dataflow::stages(app) {
        ctx.begin_wave();
        for &id in &stage.members {
            let p = schedule.placement(id);
            total += ctx.estimate(id, p.registry, p.device).td.as_f64();
            ctx.commit(id, p);
        }
    }
    total
}

// ---------------------------------------------------------------------
// 1. Zero-fault parity: probabilities at zero ⇒ byte-identical stack.
// ---------------------------------------------------------------------

fn assert_zero_fault_parity(app: &Application, tb: &Testbed) {
    // Scheduler parity: pricing a zero model changes no payoff.
    let happy = DeepScheduler::paper().schedule(app, tb);
    let aware = DeepScheduler::fault_aware().schedule(app, tb);
    assert_eq!(
        serde_json::to_string(&happy).unwrap(),
        serde_json::to_string(&aware).unwrap(),
        "{}: fault-aware schedule diverged under a zero fault model",
        app.name()
    );
    // Executor parity: injecting a zero plan (standby sources, retry
    // policy and fault wrappers all attached) realises the same run.
    let mut plain_tb = calibration::calibrated_testbed();
    plain_tb.publish_application(app);
    let (plain, _) = execute(&mut plain_tb, app, &happy, &ExecutorConfig::default()).unwrap();
    let mut injected_tb = calibration::calibrated_testbed();
    injected_tb.publish_application(app);
    // A zero-rate model with a non-trivial retry policy: attaching the
    // policy must not change a failure-free run either.
    injected_tb.fault_model = FaultModel::default().with_retry(scenario_retry());
    let cfg = ExecutorConfig { fault_injection: true, fault_seed: 7, ..Default::default() };
    let (injected, _) = execute(&mut injected_tb, app, &happy, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&injected).unwrap(),
        "{}: zero-fault injection changed the RunReport",
        app.name()
    );
}

#[test]
fn case_studies_zero_fault_parity() {
    let tb = calibration::calibrated_testbed();
    for app in apps::case_studies() {
        assert_zero_fault_parity(&app, &tb);
    }
}

#[test]
fn zero_fault_parity_holds_with_peer_sharing() {
    // Warm continuum fleet, peer-sharing executor: the fault path wraps
    // the peer snapshot and registers standbys — still byte-identical.
    let app = apps::video_processing();
    let run = |fault_injection: bool| -> RunReport {
        let mut tb = deep::core::continuum_testbed();
        let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
        execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
        let cloud =
            Schedule::uniform(app.len(), RegistryChoice::Hub, deep::simulator::DEVICE_CLOUD);
        let cfg = ExecutorConfig { peer_sharing: true, fault_injection, ..Default::default() };
        execute(&mut tb, &app, &cloud, &cfg).unwrap().0
    };
    assert_eq!(
        serde_json::to_string(&run(false)).unwrap(),
        serde_json::to_string(&run(true)).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Zero-probability fault models reproduce the PR 3 schedules and
    /// RunReports byte for byte across generated applications. (The
    /// vendored proptest seeds each case deterministically from the
    /// test name, so this sweep is fixed-seed in CI.)
    #[test]
    fn generated_apps_zero_fault_parity(seed in 0u64..500) {
        let mut tb = calibration::calibrated_testbed();
        let app = dataflow::DagGenerator::default().generate(seed);
        tb.publish_application(&app);
        assert_zero_fault_parity(&app, &tb);
    }
}

// ---------------------------------------------------------------------
// 2. Closed-form E[Td] vs the Monte-Carlo mean of seeded runs.
// ---------------------------------------------------------------------

#[test]
fn closed_form_expected_td_matches_monte_carlo_mean_per_registry_choice() {
    // Both registries carry faults so either primary exercises both the
    // fatal (failover + detection) and transient (backoff) channels.
    let model = lossy_regional(0.2, 0.15).with_source(
        RegistryChoice::Hub.registry_id(),
        FaultRates { fatal_per_pull: 0.05, transient_per_fetch: 0.1 },
    );
    let app = apps::text_processing();
    const PLANS: u64 = 400;
    for choice in [RegistryChoice::Hub, RegistryChoice::Regional] {
        let schedule = Schedule::uniform(app.len(), choice, DEVICE_MEDIUM);
        let expected = expected_total_td(&faulty_testbed(0.0, &model), &app, &schedule);
        let mut total = 0.0;
        let mut failovers = 0usize;
        let mut backoff = 0.0;
        for seed in 0..PLANS {
            let mut tb = faulty_testbed(0.0, &model);
            let cfg =
                ExecutorConfig { fault_injection: true, fault_seed: seed, ..Default::default() };
            let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
            total += total_td(&report);
            failovers +=
                report.microservices.iter().filter(|m| !m.failed_sources.is_empty()).count();
            backoff += report.microservices.iter().map(|m| m.backoff_total.as_f64()).sum::<f64>();
        }
        let mean = total / PLANS as f64;
        // 400 plans put the standard error of the mean well under 0.5 %
        // of E[Td] here; 1.5 % gives deterministic-seed headroom.
        assert!(
            (mean - expected).abs() / expected < 0.015,
            "{choice}: closed form {expected:.2} vs MC mean {mean:.2}"
        );
        // Non-vacuity: the sweep actually exercised both fault channels,
        // and pricing them moved the estimate off the happy path.
        assert!(failovers > 0, "{choice}: no pull ever failed over");
        assert!(backoff > 0.0, "{choice}: no transient backoff charged");
        let happy: f64 = {
            let tb = faulty_testbed(0.0, &model);
            let mut ctx = EstimationContext::new(&tb, &app);
            let mut sum = 0.0;
            for stage in dataflow::stages(&app) {
                ctx.begin_wave();
                for &id in &stage.members {
                    let p = schedule.placement(id);
                    sum += ctx.estimate(id, p.registry, p.device).td.as_f64();
                    ctx.commit(id, p);
                }
            }
            sum
        };
        assert!(expected > happy + 1.0, "{choice}: E[Td] {expected} vs happy {happy}");
    }
}

// ---------------------------------------------------------------------
// 3. Retry-path accounting under injected bursts.
// ---------------------------------------------------------------------

const HUB_ID: deep::registry::RegistryId = deep::registry::RegistryId(0);

fn session_params() -> SourceParams {
    SourceParams {
        download_bw: deep::netsim::Bandwidth::megabytes_per_sec(13.0),
        overhead: Seconds::new(25.0),
    }
}

fn fresh_cache() -> deep::registry::LayerCache {
    deep::registry::LayerCache::new(deep::netsim::DataSize::gigabytes(64.0))
}

#[test]
fn injected_transient_bursts_charge_exact_backoff() {
    // q = 1 with the consecutive-injection cap makes every layer's
    // chain deterministic: max_attempts − 1 failures then success, so
    // backoff_total is exactly layers × Σ backoff(k) — for jittered and
    // unjittered policies alike.
    for policy in [
        RetryPolicy { max_attempts: 4, base_backoff: Seconds::new(2.0), ..Default::default() },
        RetryPolicy { max_attempts: 4, base_backoff: Seconds::new(2.0), ..Default::default() }
            .with_jitter(0.4, 99),
    ] {
        let model = FaultModel::default()
            .with_source(HUB_ID, FaultRates { fatal_per_pull: 0.0, transient_per_fetch: 1.0 })
            .with_retry(policy);
        let plan = model.plan(5);
        let hub = HubRegistry::with_paper_catalog();
        let wrapped = PlannedFaults::primary(&hub, &plan, HUB_ID, 0);
        let mut mesh = RegistryMesh::new();
        mesh.add_registry(HUB_ID, &wrapped, session_params());
        let r = deep::registry::Reference::new("docker.io", "sina88/vp-transcode", "amd64");
        let out = mesh
            .session(HUB_ID)
            .with_retry(policy)
            .pull(&r, deep::registry::Platform::Amd64, &mut fresh_cache())
            .unwrap();
        assert_eq!(out.layers_fetched, 3);
        assert!(out.failed_sources.is_empty(), "transient ≠ dead");
        assert_eq!(out.attempts, 1, "resolve is not injected");
        let per_layer = policy.exhausted_backoff().as_f64();
        assert!(
            (out.backoff_total.as_f64() - 3.0 * per_layer).abs() < 1e-9,
            "jitter {}: backoff {} vs {} per layer",
            policy.jitter,
            out.backoff_total,
            per_layer
        );
    }
}

#[test]
fn resolve_bursts_count_attempts_under_jittered_policies() {
    let policy =
        RetryPolicy { max_attempts: 5, base_backoff: Seconds::new(2.0), ..Default::default() }
            .with_jitter(0.3, 7);
    let flaky = FlakyRegistry::new(HubRegistry::with_paper_catalog(), 3);
    let mut mesh = RegistryMesh::new();
    mesh.add_registry(HUB_ID, &flaky, session_params());
    let r = deep::registry::Reference::new("docker.io", "sina88/vp-transcode", "amd64");
    let out = mesh
        .session(HUB_ID)
        .with_retry(policy)
        .pull(&r, deep::registry::Platform::Amd64, &mut fresh_cache())
        .unwrap();
    assert_eq!(out.attempts, 4, "3 injected resolve failures, then success");
    let expected: f64 = (1..=3).map(|k| policy.backoff(k).as_f64()).sum();
    assert!((out.backoff_total.as_f64() - expected).abs() < 1e-12);
    assert_eq!(flaky.pending_failures(), 0);
}

#[test]
fn fatal_death_burns_the_retry_budget_before_failover() {
    // With a retry policy attached, declaring a source dead costs the
    // exhausted backoff (the client cannot tell death from a transient
    // burst) — charged once per dead source, then the survivors carry
    // the remaining layers.
    let policy = scenario_retry();
    let hub = deep::registry::FaultySource::fatal_after(HubRegistry::with_paper_catalog(), 1);
    let regional = RegionalRegistry::with_paper_catalog();
    let mut mesh = RegistryMesh::new();
    mesh.add_registry(HUB_ID, &hub, session_params());
    mesh.add_registry(
        deep::registry::RegistryId(1),
        &regional,
        SourceParams {
            download_bw: deep::netsim::Bandwidth::megabytes_per_sec(8.0),
            overhead: Seconds::new(5.0),
        },
    );
    let r = deep::registry::Reference::new("docker.io", "sina88/vp-transcode", "amd64");
    let out = mesh
        .session(HUB_ID)
        .with_retry(policy)
        .pull(&r, deep::registry::Platform::Amd64, &mut fresh_cache())
        .unwrap();
    assert_eq!(out.failed_sources, vec![HUB_ID]);
    assert_eq!(out.layers_fetched, 3, "failover completes the pull");
    assert!(
        (out.backoff_total.as_f64() - policy.exhausted_backoff().as_f64()).abs() < 1e-12,
        "death detection charged once: {}",
        out.backoff_total
    );
    // Without a policy the failover is immediate (PR 3 behaviour).
    let hub2 = deep::registry::FaultySource::fatal_after(HubRegistry::with_paper_catalog(), 1);
    let mut mesh2 = RegistryMesh::new();
    mesh2.add_registry(HUB_ID, &hub2, session_params());
    mesh2.add_registry(
        deep::registry::RegistryId(1),
        &regional,
        SourceParams {
            download_bw: deep::netsim::Bandwidth::megabytes_per_sec(8.0),
            overhead: Seconds::new(5.0),
        },
    );
    let out2 = mesh2
        .session(HUB_ID)
        .pull(&r, deep::registry::Platform::Amd64, &mut fresh_cache())
        .unwrap();
    assert_eq!(out2.backoff_total, Seconds::ZERO);
}

// ---------------------------------------------------------------------
// 4. Failover exclusion of dead sources, per pull, across waves.
// ---------------------------------------------------------------------

#[test]
fn failover_excludes_dead_sources_per_pull_across_waves() {
    // A regional that is *always* dead: every fetching pull discovers
    // the death, fails over to the standby hub, and reports both the
    // exclusion and the detection backoff in its metrics — in every
    // wave of the staged deployment.
    let model = lossy_regional(1.0, 0.0);
    let app = apps::text_processing();
    let schedule = Schedule::uniform(app.len(), RegistryChoice::Regional, DEVICE_MEDIUM);
    let mut tb = faulty_testbed(0.1, &model);
    let cfg = ExecutorConfig { fault_injection: true, fault_seed: 3, ..Default::default() };
    let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let regional = RegistryChoice::Regional.registry_id();
    let hub = RegistryChoice::Hub.registry_id();
    let mut fetching = 0;
    for m in &report.microservices {
        if m.downloaded_mb > 0.0 {
            fetching += 1;
            assert_eq!(m.failed_sources, vec![regional], "{}", m.name);
            assert!(m.sources.iter().all(|s| s.source == hub), "{}: {:?}", m.name, m.sources);
            assert!(
                (m.backoff_total.as_f64() - scenario_retry().exhausted_backoff().as_f64()).abs()
                    < 1e-9,
                "{}: detection backoff",
                m.name
            );
        } else {
            assert!(m.failed_sources.is_empty(), "{}: cached pulls discover nothing", m.name);
        }
    }
    assert!(fetching >= 3, "the run exercised multiple waves of fetching pulls");

    // Per-pull churn at fatal = 0.5: within one run some pulls lose the
    // regional and some keep it — a source dead for one pull serves a
    // later one (EdgePier-style churn, not a permanent outage).
    let churn = lossy_regional(0.5, 0.0);
    let mut saw_both = false;
    for seed in 0..32 {
        let mut tb = faulty_testbed(0.1, &churn);
        let cfg = ExecutorConfig { fault_injection: true, fault_seed: seed, ..Default::default() };
        let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
        let fetched: Vec<_> =
            report.microservices.iter().filter(|m| m.downloaded_mb > 0.0).collect();
        let died = fetched.iter().filter(|m| !m.failed_sources.is_empty()).count();
        if died > 0 && died < fetched.len() {
            // The pulls that kept the regional really used it.
            assert!(fetched
                .iter()
                .filter(|m| m.failed_sources.is_empty())
                .all(|m| m.sources.iter().all(|s| s.source == regional)));
            saw_both = true;
            break;
        }
    }
    assert!(saw_both, "no seed mixed dead and alive pulls — churn is not per-pull");
}

// ---------------------------------------------------------------------
// 5. The headline: a 20 % lossy regional shifts the equilibrium and
//    the shift pays off in realized mean Td.
// ---------------------------------------------------------------------

#[test]
fn fault_aware_equilibrium_beats_happy_path_under_lossy_regional() {
    let model = lossy_regional(0.2, 0.2);
    let app = apps::text_processing();
    let tb = faulty_testbed(0.1, &model);
    let happy = DeepScheduler::paper().schedule(&app, &tb);
    let aware = DeepScheduler::fault_aware().schedule(&app, &tb);
    assert_ne!(happy, aware, "pricing a 20 % lossy regional must move the equilibrium");
    // Risk-weighted bytes move off the lossy regional, toward the hub.
    let regional_share = |s: &Schedule| {
        s.iter().filter(|(_, p)| p.registry == RegistryChoice::Regional).count() as f64
            / app.len() as f64
    };
    assert!(
        regional_share(&aware) < regional_share(&happy),
        "aware {} vs happy {}",
        regional_share(&aware),
        regional_share(&happy)
    );
    // Realized mean Td over 200 seeded fault plans, same plans for both
    // schedules: the failover-aware equilibrium wins by a measured
    // margin (recorded in PERF.md).
    const PLANS: u64 = 200;
    let mean = |schedule: &Schedule| -> f64 {
        let mut total = 0.0;
        for seed in 0..PLANS {
            let mut tb = faulty_testbed(0.1, &model);
            let cfg =
                ExecutorConfig { fault_injection: true, fault_seed: seed, ..Default::default() };
            let (report, _) = execute(&mut tb, &app, schedule, &cfg).unwrap();
            total += total_td(&report);
        }
        total / PLANS as f64
    };
    let happy_mean = mean(&happy);
    let aware_mean = mean(&aware);
    let margin = 1.0 - aware_mean / happy_mean;
    println!(
        "lossy-regional headline: happy {happy_mean:.1} s, fault-aware {aware_mean:.1} s, \
         margin {:.1} %",
        margin * 100.0
    );
    assert!(
        margin > 0.01,
        "fault-aware mean {aware_mean:.1} vs happy-path mean {happy_mean:.1} ({margin:.3})"
    );
}

// ---------------------------------------------------------------------
// 6. The fault-aware schedule is still an equilibrium of its own game.
// ---------------------------------------------------------------------

#[test]
fn fault_aware_schedule_is_an_equilibrium_of_the_expected_cost_game() {
    let model = lossy_regional(0.2, 0.2);
    let app = apps::text_processing();
    let tb = faulty_testbed(0.1, &model);
    let sched = DeepScheduler::fault_aware();
    let schedule = sched.schedule(&app, &tb);
    assert!(sched.is_equilibrium(&app, &tb, &schedule));
}
