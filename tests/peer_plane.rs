//! Topology-backed peer-plane regressions.
//!
//! The contracts that make the per-pair peer plane safe and worth
//! having:
//!
//! 1. **Scalar parity** — the default uniform plane (every pair at
//!    `peer_bw`, every holder at `peer_overhead`) reproduces the scalar
//!    aggregate plane *byte for byte*: serialized schedules are
//!    identical, and serialized RunReports are identical once the
//!    per-holder buckets are folded under the aggregate id
//!    ([`RunReport::with_aggregated_peer_sources`] — holder ids are
//!    labels; every measured quantity must match bitwise). Checked over
//!    the case studies and a proptest population of generated
//!    applications, with fault-aware pricing riding along.
//! 2. **Estimator/executor bit-for-bit** — on a *hot* (non-uniform)
//!    plane with a throttled holder uplink and upload contention, the
//!    estimation context still predicts exactly what the executor
//!    measures.
//! 3. **Saturation** — a single warm holder's uplink divides across the
//!    same-wave pulls it serves, and once hot enough the marginal-cost
//!    selection spills bytes onto the regional registry mid-wave.
//! 4. **The equilibrium moves** — pricing the hot uplink shifts the
//!    peer-aware Nash schedule off the saturated holder, and the shift
//!    pays off in realized deployment time against an aggregate-blind
//!    schedule executed under the same physics (headline in PERF.md).
//! 5. **Per-holder churn** — an injected fatal death kills one holder,
//!    not the whole peer plane: the pull fails over to the surviving
//!    holder before it ever touches a registry.

use deep::core::{DeepScheduler, EstimationContext, Scheduler};
use deep::dataflow::{self, apps, Application};
use deep::netsim::Bandwidth;
use deep::registry::{FaultModel, FaultRates, Platform};
use deep::simulator::{
    execute, peer_source_id, ExecutorConfig, PeerPlane, Placement, RegistryChoice, RunReport,
    Schedule, Testbed, DEVICE_CLOUD, DEVICE_MEDIUM, DEVICE_SMALL,
};
use proptest::prelude::*;

/// A calibrated continuum testbed (the peer plane needs same-arch
/// devices: medium and cloud are both amd64).
fn continuum() -> Testbed {
    deep::core::continuum_testbed()
}

/// Warm `holder`'s cache with every image of `app` for both platforms —
/// a fleet cache able to serve amd64 and arm64 pullers alike.
fn warm_holder_both_arches(tb: &mut Testbed, app: &Application, holder: deep::netsim::DeviceId) {
    let mut cache = tb.device(holder).cache.clone();
    for id in app.ids() {
        let ms = app.microservice(id);
        let entry = tb.entry(app.name(), &ms.name).unwrap().clone();
        for platform in [Platform::Amd64, Platform::Arm64] {
            let reference = entry.hub_reference(platform);
            tb.pull_mesh(RegistryChoice::Hub, holder, 1.0)
                .session(RegistryChoice::Hub.registry_id())
                .pull(&reference, platform, &mut cache)
                .unwrap();
        }
    }
    tb.device_mut(holder).cache = cache;
}

// ---------------------------------------------------------------------
// 1. Scalar parity: uniform per-pair plane ≡ aggregate oracle.
// ---------------------------------------------------------------------

/// Schedule with the peer-aware (and optionally fault-aware) scheduler
/// on a warm continuum fleet, then execute the redeploy onto the cloud
/// tier — once per plane representation — and compare byte for byte.
fn assert_scalar_parity(app: &Application, fault_aware: bool) {
    let run = |aggregate: bool| -> (Schedule, RunReport) {
        let mut tb = continuum();
        tb.publish_application(app);
        if aggregate {
            tb.peer_plane = PeerPlane::Aggregate;
        }
        if fault_aware {
            tb.fault_model = FaultModel::default().with_source(
                RegistryChoice::Regional.registry_id(),
                FaultRates { fatal_per_pull: 0.2, transient_per_fetch: 0.1 },
            );
        }
        // Warm the fleet: the medium edge device runs the app first.
        let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
        execute(&mut tb, app, &warm, &ExecutorConfig::default()).unwrap();
        let scheduler = DeepScheduler {
            peer_sharing: true,
            price_faults: fault_aware,
            ..DeepScheduler::default()
        };
        let schedule = scheduler.schedule(app, &tb);
        let cfg = ExecutorConfig { peer_sharing: true, ..Default::default() };
        let (report, _) = execute(&mut tb, app, &schedule, &cfg).unwrap();
        (schedule, report)
    };
    let (schedule_pp, report_pp) = run(false);
    let (schedule_ag, report_ag) = run(true);
    assert_eq!(
        serde_json::to_string(&schedule_pp).unwrap(),
        serde_json::to_string(&schedule_ag).unwrap(),
        "{}: uniform per-pair plane changed the schedule",
        app.name()
    );
    assert_eq!(
        serde_json::to_string(&report_pp.with_aggregated_peer_sources()).unwrap(),
        serde_json::to_string(&report_ag).unwrap(),
        "{}: uniform per-pair plane changed the RunReport",
        app.name()
    );
}

#[test]
fn case_studies_scalar_parity() {
    for app in apps::case_studies() {
        assert_scalar_parity(&app, false);
        assert_scalar_parity(&app, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generated applications reproduce the scalar stack byte for byte
    /// under the uniform per-pair plane. (The vendored proptest seeds
    /// each case deterministically from the test name, so this sweep is
    /// fixed-seed in CI.)
    #[test]
    fn generated_apps_scalar_parity(seed in 0u64..500) {
        let app = dataflow::DagGenerator::default().generate(seed);
        assert_scalar_parity(&app, false);
    }
}

// ---------------------------------------------------------------------
// 2. Estimator/executor bit-for-bit on a hot plane.
// ---------------------------------------------------------------------

#[test]
fn estimator_matches_executor_on_a_hot_peer_plane() {
    // Throttled cloud uplink + upload contention: the estimation
    // context must still predict the executor's measurements exactly.
    let app = apps::video_processing();
    let mut tb = continuum();
    warm_holder_both_arches(&mut tb, &app, DEVICE_CLOUD);
    tb.set_peer_uplink(DEVICE_CLOUD, Bandwidth::megabytes_per_sec(20.0));
    // A mixed schedule whose training wave pulls onto both edge devices
    // through the same hot holder.
    let mut placements =
        vec![Placement { registry: RegistryChoice::Hub, device: DEVICE_MEDIUM }; app.len()];
    placements[app.by_name("transcode").unwrap().0] =
        Placement { registry: RegistryChoice::Regional, device: DEVICE_SMALL };
    placements[app.by_name("la-train").unwrap().0] =
        Placement { registry: RegistryChoice::Regional, device: DEVICE_SMALL };
    let schedule = Schedule::new(placements);
    let mut predictions = Vec::new();
    {
        let mut ctx = EstimationContext::new(&tb, &app).peer_sharing(true);
        for stage in dataflow::stages(&app) {
            ctx.begin_wave();
            for &id in &stage.members {
                let p = schedule.placement(id);
                predictions.push(ctx.estimate(id, p.registry, p.device));
                ctx.commit(id, p);
            }
        }
    }
    let cfg = ExecutorConfig { peer_sharing: true, ..Default::default() };
    let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    assert!(report.peer_downloaded_mb() > 1_000.0, "the hot holder still served bytes");
    for (est, measured) in predictions.iter().zip(&report.microservices) {
        assert_eq!(est.td, measured.td, "{}: td", measured.name);
        assert_eq!(est.ec, measured.energy, "{}: ec", measured.name);
    }
}

// ---------------------------------------------------------------------
// 3. Saturation: the uplink divides, then spills onto the regional.
// ---------------------------------------------------------------------

#[test]
fn hot_uplink_divides_and_spills_onto_the_regional() {
    // The cloud holder serves the training wave onto both edge devices
    // through a throttled uplink under strong contention: the first
    // pull (ha-train on medium) rides the peer, loading the uplink; the
    // second (la-train on small) finds the loaded uplink more expensive
    // than its regional primary and spills its bytes there mid-wave.
    let app = apps::video_processing();
    let run = |uplink_mb: f64, alpha: f64| -> RunReport {
        let mut tb = continuum();
        tb.params.contention_alpha = alpha;
        warm_holder_both_arches(&mut tb, &app, DEVICE_CLOUD);
        tb.set_peer_uplink(DEVICE_CLOUD, Bandwidth::megabytes_per_sec(uplink_mb));
        let mut placements =
            vec![Placement { registry: RegistryChoice::Hub, device: DEVICE_MEDIUM }; app.len()];
        placements[app.by_name("la-train").unwrap().0] =
            Placement { registry: RegistryChoice::Regional, device: DEVICE_SMALL };
        let cfg = ExecutorConfig { peer_sharing: true, ..Default::default() };
        execute(&mut tb, &app, &Schedule::new(placements), &cfg).unwrap().0
    };
    // Cool plane (uniform 80 MB/s): both trainers ride the peer.
    let cool = run(80.0, 0.1);
    let peer_cloud = peer_source_id(DEVICE_CLOUD);
    assert!(cool.metrics("ha-train").unwrap().sources.iter().all(|s| s.source == peer_cloud));
    assert!(cool.metrics("la-train").unwrap().sources.iter().all(|s| s.source == peer_cloud));
    // Hot plane: 16 MB/s uplink, full division (alpha = 1). ha-train
    // still prefers the unloaded peer to its hub primary (16 vs
    // 13 MB/s); la-train sees the uplink divided two ways — 8 MB/s —
    // and keeps its regional primary (9.5 MB/s to the small device).
    let hot = run(16.0, 1.0);
    assert!(
        hot.metrics("ha-train").unwrap().sources.iter().all(|s| s.source == peer_cloud),
        "first pull still rides the (unloaded) uplink: {:?}",
        hot.metrics("ha-train").unwrap().sources
    );
    let la = hot.metrics("la-train").unwrap();
    assert!(
        la.sources.iter().all(|s| s.source == RegistryChoice::Regional.registry_id()),
        "the loaded uplink spills la-train onto its regional primary: {:?}",
        la.sources
    );
}

// ---------------------------------------------------------------------
// 4. The headline: pricing the hot uplink moves the equilibrium.
// ---------------------------------------------------------------------

#[test]
fn pricing_the_hot_uplink_moves_the_equilibrium() {
    // A hot fleet cache: the cloud holder's uplink is throttled to
    // 7 MB/s — below every registry route. The aggregate-blind
    // scheduler still believes the scalar 80 MB/s plane and plans
    // around free peer bytes; the topology-aware scheduler prices the
    // real uplink. Both schedules are executed under the same hot
    // physics. The app is pinned to the edge tier so the game plays
    // over the cold devices (a pull *onto* the warm holder is free and
    // would mask the plane entirely).
    let base = apps::video_processing();
    let pins: Vec<(&str, dataflow::DeviceClass)> = base
        .ids()
        .map(|id| (base.microservice(id).name.as_str(), dataflow::DeviceClass::Edge))
        .collect();
    let app = deep::core::continuum::pin_microservices(&base, &pins);
    let hot_testbed = || {
        let mut tb = continuum();
        warm_holder_both_arches(&mut tb, &app, DEVICE_CLOUD);
        tb.set_peer_uplink(DEVICE_CLOUD, Bandwidth::megabytes_per_sec(7.0));
        tb
    };
    let aware_schedule = DeepScheduler::with_peer_sharing().schedule(&app, &hot_testbed());
    let blind_schedule = {
        let mut tb = hot_testbed();
        tb.peer_plane = PeerPlane::Aggregate;
        DeepScheduler::with_peer_sharing().schedule(&app, &tb)
    };
    assert_ne!(aware_schedule, blind_schedule, "pricing the hot uplink must move the equilibrium");
    let realize = |schedule: &Schedule| -> (f64, RunReport) {
        let mut tb = hot_testbed();
        let cfg = ExecutorConfig { peer_sharing: true, ..Default::default() };
        let (report, _) = execute(&mut tb, &app, schedule, &cfg).unwrap();
        (report.microservices.iter().map(|m| m.td.as_f64()).sum(), report)
    };
    let (aware_td, _) = realize(&aware_schedule);
    let (blind_td, _) = realize(&blind_schedule);
    println!(
        "hot-peer headline: aggregate-blind Td {blind_td:.1} s, uplink-aware Td {aware_td:.1} s \
         ({:+.1} %)",
        (aware_td / blind_td - 1.0) * 100.0
    );
    assert!(
        aware_td < blind_td,
        "uplink-aware equilibrium must beat the blind one: {aware_td} vs {blind_td}"
    );
    // And the aware schedule is an equilibrium of its own (hot) game.
    let sched = DeepScheduler::with_peer_sharing();
    assert!(sched.is_equilibrium(&app, &hot_testbed(), &aware_schedule));
}

// ---------------------------------------------------------------------
// 5. Per-holder churn: one holder dies, the plane survives.
// ---------------------------------------------------------------------

#[test]
fn peer_churn_kills_one_holder_not_the_plane() {
    // Two warm holders (medium naturally, small via the fleet cache),
    // cloud pulling. The fault model draws the medium holder dead for
    // every pull: the session discovers the death and fails the layers
    // over to the *surviving small holder* — never touching a registry
    // — and reports exactly the dead holder.
    let app = apps::text_processing();
    let mut tb = continuum();
    // Medium warms by running the app; small absorbs the amd64 layers
    // as a fleet-cache participant.
    let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
    let mut small_cache = tb.device(DEVICE_SMALL).cache.clone();
    for id in app.ids() {
        let ms = app.microservice(id);
        let entry = tb.entry(app.name(), &ms.name).unwrap().clone();
        tb.pull_mesh(RegistryChoice::Hub, DEVICE_SMALL, 1.0)
            .session(RegistryChoice::Hub.registry_id())
            .pull(&entry.hub_reference(Platform::Amd64), Platform::Amd64, &mut small_cache)
            .unwrap();
    }
    tb.device_mut(DEVICE_SMALL).cache = small_cache;
    let dead_holder = peer_source_id(DEVICE_MEDIUM);
    tb.fault_model = FaultModel::default()
        .with_source(dead_holder, FaultRates { fatal_per_pull: 1.0, transient_per_fetch: 0.0 });
    let schedule = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_CLOUD);
    let cfg = ExecutorConfig { peer_sharing: true, fault_injection: true, ..Default::default() };
    let (report, _) = execute(&mut tb, &app, &schedule, &cfg).unwrap();
    let survivor = peer_source_id(DEVICE_SMALL);
    // Small layers legitimately prefer the fast hub→cloud route (60 MB/s,
    // overhead already sunk); the peer plane carries the big ones. Every
    // pull that tried the dead holder failed over to the *surviving*
    // holder, no byte ever came from the dead one, and the plane as a
    // whole kept serving.
    let mut failovers = 0;
    for m in &report.microservices {
        assert!(
            m.sources.iter().all(|s| s.source != dead_holder),
            "{}: the dead holder served bytes: {:?}",
            m.name,
            m.sources
        );
        if m.failed_sources.is_empty() {
            continue;
        }
        failovers += 1;
        assert_eq!(m.failed_sources, vec![dead_holder], "{}: exactly the holder died", m.name);
        assert!(
            m.sources.iter().any(|s| s.source == survivor),
            "{}: the surviving holder carries the failover: {:?}",
            m.name,
            m.sources
        );
    }
    assert!(failovers >= 2, "the run exercised per-holder failovers");
    assert_eq!(
        report.downloaded_by_peer().iter().map(|(d, _)| *d).collect::<Vec<_>>(),
        vec![DEVICE_SMALL],
        "the plane survived on the remaining holder"
    );
    assert!(report.peer_downloaded_mb() > 1_000.0);
    // Control: with both holders dead the registries take over.
    let mut tb2 = continuum();
    execute(&mut tb2, &app, &warm, &ExecutorConfig::default()).unwrap();
    tb2.fault_model = FaultModel::default()
        .with_source(dead_holder, FaultRates { fatal_per_pull: 1.0, transient_per_fetch: 0.0 });
    let (report2, _) = execute(&mut tb2, &app, &schedule, &cfg).unwrap();
    for m in &report2.microservices {
        if m.downloaded_mb > 0.0 {
            assert!(
                m.sources.iter().all(|s| s.source == RegistryChoice::Hub.registry_id()),
                "{}: with the only holder dead, the hub primary serves: {:?}",
                m.name,
                m.sources
            );
        }
    }
}
