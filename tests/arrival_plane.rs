//! Arrival-plane contracts pinned at the workspace level:
//!
//! 1. **Static parity** — a scenario without `[[arrivals]]` run through
//!    the online plane is byte-identical (serialized schedule *and*
//!    per-replication `RunReport`s) to the PR-6 soak path
//!    [`run_scenario`], on the shipped case studies and on random
//!    zero-arrival scenarios. The plane is a strict generalization.
//! 2. **Repair quality** — on the checked-in `arrival_soak.toml` grid,
//!    incremental repair's steady-state mean `Td` stays within 2% of
//!    the full re-solve baseline (the acceptance bound; the ≥5× speed
//!    side is benchmarked in `benches/arrival_soak.rs`).
//! 3. **Online outage inference** — an operator flying blind into a
//!    sticky scripted outage recovers: streaks of fatal pulls infer the
//!    window, later admissions route around it, failover drops.

use deep::arrival::{run_plane, ArrivalPlane, OutageInference, RepairPolicy};
use deep::core::{run_scenario, scenario_scheduler};
use deep::scenario::Scenario;
use proptest::prelude::*;

fn parity(scenario: &Scenario) {
    let soak = run_scenario(scenario, &scenario_scheduler(scenario));
    let plane = run_plane(scenario, &ArrivalPlane::default());
    assert_eq!(plane.jobs.len(), scenario.replications as usize, "one job per replication");
    for (r, job) in plane.jobs.iter().enumerate() {
        assert!(!job.warmup, "the synthesized request is measured");
        assert_eq!(
            serde_json::to_string(&job.schedule).unwrap(),
            serde_json::to_string(&soak.schedule).unwrap(),
            "{} r{r}: plane schedule diverged from the soak path",
            scenario.name
        );
        assert_eq!(
            serde_json::to_string(&job.report).unwrap(),
            serde_json::to_string(&soak.reports[r]).unwrap(),
            "{} r{r}: plane report diverged from the soak path",
            scenario.name
        );
    }
}

#[test]
fn zero_arrival_scenarios_reproduce_the_soak_path_on_the_case_studies() {
    for app in ["text-processing", "video-processing"] {
        let scenario = Scenario::parse(&format!(
            "name = \"static-{app}\"\napp = \"{app}\"\nreplications = 2\n\
             [testbed]\nbase = \"paper\"\ncalibrate = true\nmirrors = 1\n"
        ))
        .unwrap();
        parity(&scenario);
    }
    // The shipped soak files are zero-arrival too — the plane must
    // replay them unchanged, scripted chaos and all.
    for file in ["soak_smoke.toml", "soak_sticky_outage.toml"] {
        let path = format!("{}/scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
        parity(&Scenario::load(&path).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_arrival_parity_holds_on_random_scenarios(
        seed in 0u64..1_000,
        replications in 1u32..3,
        video in any::<bool>(),
        rate in 0.0f64..0.3,
        outage in any::<bool>(),
    ) {
        let app = if video { "video-processing" } else { "text-processing" };
        let mut doc = format!(
            "name = \"p\"\napp = \"{app}\"\nseed = {seed}\nreplications = {replications}\n\
             [testbed]\nbase = \"paper\"\ncalibrate = true\nmirrors = 1\n\
             [[rates]]\ntarget = \"regional\"\nfatal_per_pull = {rate:?}\n\
             transient_per_fetch = {rate:?}\n"
        );
        if outage {
            doc.push_str(
                "[[events]]\nkind = \"outage\"\ntarget = \"mirror-0\"\n\
                 start = 10.0\nduration = 500.0\n",
            );
        }
        parity(&Scenario::parse(&doc).unwrap());
    }
}

#[test]
fn incremental_repair_matches_full_resolve_steady_state_td_within_two_percent() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/arrival_soak.toml");
    let scenario = Scenario::load(path).unwrap();
    for cell in scenario.expand() {
        let repair = run_plane(&cell, &ArrivalPlane::default());
        let full =
            run_plane(&cell, &ArrivalPlane { policy: RepairPolicy::Full, ..Default::default() });
        assert_eq!(repair.jobs.len(), full.jobs.len());
        // The policy must actually repair, not fall back to re-solving
        // every admission through the back door.
        assert!(
            repair.jobs.iter().any(|j| !j.repair.full_solve),
            "{}: no admission was repaired incrementally",
            cell.name
        );
        let drift = (repair.mean_td() / full.mean_td() - 1.0).abs();
        assert!(
            drift <= 0.02,
            "{}: repair mean Td {:.2} drifted {:.1}% from full re-solve {:.2}",
            cell.name,
            repair.mean_td(),
            drift * 100.0,
            full.mean_td()
        );
    }
}

#[test]
fn blind_operators_infer_sticky_outages_online_and_route_around_them() {
    // Regional dark for the whole run, three well-spaced requests. The
    // executor injects the window either way; `blind` only strips it
    // from the scheduler's view. Cache-pressure evictions in the idle
    // gaps keep every admission a *cold* pull — without them the second
    // job finds the images cached, downloads nothing, and the window
    // prices to nothing for blind and inferring operators alike.
    let scenario = Scenario::parse(
        "name = \"blind-soak\"\napp = \"text-processing\"\nreplications = 1\n\
         [testbed]\nbase = \"paper\"\ncalibrate = true\n\
         [[events]]\nkind = \"outage\"\ntarget = \"regional\"\nstart = 0.0\nduration = 1e9\n\
         [[events]]\nkind = \"cache-pressure\"\ndevice = 0\nat = 2000.0\nkeep_mb = 0.0\n\
         [[events]]\nkind = \"cache-pressure\"\ndevice = 1\nat = 2000.0\nkeep_mb = 0.0\n\
         [[events]]\nkind = \"cache-pressure\"\ndevice = 0\nat = 6000.0\nkeep_mb = 0.0\n\
         [[events]]\nkind = \"cache-pressure\"\ndevice = 1\nat = 6000.0\nkeep_mb = 0.0\n\
         [[arrivals]]\nmodel = \"deterministic\"\ninterval = 4000.0\ncount = 3\n",
    )
    .unwrap();
    let blind =
        run_plane(&scenario, &ArrivalPlane { blind: true, inference: None, ..Default::default() });
    assert!(
        blind.failovers() > 0,
        "a blind scheduler keeps routing into the dark regional registry"
    );
    let inferring = run_plane(
        &scenario,
        &ArrivalPlane {
            blind: true,
            inference: Some(OutageInference::default()),
            ..Default::default()
        },
    );
    assert!(inferring.failovers() > 0, "the first job still pays the discovery cost");
    assert!(
        inferring.failovers() < blind.failovers(),
        "inference must cut failover: {} vs blind {}",
        inferring.failovers(),
        blind.failovers()
    );
    // Once the window is inferred, later jobs run clean.
    let last = inferring.jobs.last().unwrap();
    assert!(
        last.report.microservices.iter().all(|m| m.failed_sources.is_empty()),
        "the final job must route around the inferred window"
    );
}
