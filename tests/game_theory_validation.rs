//! Cross-validation of the game-theory toolkit: the two equilibrium
//! solvers must agree with each other and with independent checks, on
//! random games — the confidence basis for trusting DEEP's scheduler.

use deep::game::{
    best_response_dynamics, is_ess, lemke_howson, replicator_dynamics, support_enumeration,
    Bimatrix, Matrix, MixedStrategy,
};
use proptest::prelude::*;
// Explicit trait imports: proptest's prelude globs its own (rand 0.9)
// `Rng`, which would otherwise shadow the workspace rand 0.8 traits.
use rand::Rng as _;
use rand::SeedableRng as _;
use rand_chacha::ChaCha8Rng;

fn random_game(rows: usize, cols: usize, seed: u64) -> Bimatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = Matrix::from_fn(rows, cols, |_, _| (rng.gen_range(0..200) as f64) / 10.0);
    let b = Matrix::from_fn(rows, cols, |_, _| (rng.gen_range(0..200) as f64) / 10.0);
    Bimatrix::new(a, b)
}

#[test]
fn lemke_howson_equilibria_appear_in_support_enumeration() {
    // For nondegenerate games every LH endpoint is an exact equilibrium;
    // support enumeration must contain it.
    let mut checked = 0;
    for seed in 0..40u64 {
        let game = random_game(3, 3, seed);
        let all = support_enumeration(&game);
        if all.is_empty() {
            continue; // numerically degenerate draw
        }
        let (x, y) = lemke_howson(&game, 0);
        if !game.is_nash(&x, &y) {
            continue; // degenerate pivot; LH guarantees need nondegeneracy
        }
        let found = all.iter().any(|(ex, ey)| ex.approx_eq(&x, 1e-4) && ey.approx_eq(&y, 1e-4));
        assert!(found, "seed {seed}: LH endpoint missing from support enumeration");
        checked += 1;
    }
    assert!(checked > 25, "too many degenerate draws: {checked}");
}

#[test]
fn support_enumeration_finds_odd_number_of_equilibria() {
    // Wilson's oddness theorem: almost every game has an odd number of
    // equilibria. Random continuous draws are almost surely
    // nondegenerate.
    let mut odd = 0;
    let mut total = 0;
    for seed in 100..140u64 {
        let game = random_game(2, 2, seed * 7 + 1);
        let n = support_enumeration(&game).len();
        if n > 0 {
            total += 1;
            if n % 2 == 1 {
                odd += 1;
            }
        }
    }
    assert!(odd * 10 >= total * 9, "oddness violated too often: {odd}/{total}");
}

#[test]
fn best_response_fixed_points_are_pure_equilibria() {
    for seed in 0..30u64 {
        let game = random_game(4, 4, seed + 999);
        let out = best_response_dynamics(&game, (0, 0), 200);
        if out.converged {
            let pures = game.pure_equilibria();
            assert!(
                pures.contains(&out.profile),
                "seed {seed}: BRD fixed point {:?} not a pure NE {:?}",
                out.profile,
                pures
            );
        }
    }
}

#[test]
fn ess_implies_nash_in_symmetric_games() {
    for seed in 0..30u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = Matrix::from_fn(3, 3, |_, _| (rng.gen_range(0..100) as f64) / 10.0);
        let game = Bimatrix::new(a.clone(), a.transpose());
        for i in 0..3 {
            let x = MixedStrategy::pure(i, 3);
            if is_ess(&a, &x, 1e-9) {
                assert!(game.is_nash(&x, &x), "seed {seed}: ESS {i} is not Nash");
            }
        }
    }
}

#[test]
fn replicator_converged_interior_points_verify_as_equilibria() {
    for seed in 0..20u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 77);
        let a = Matrix::from_fn(2, 2, |_, _| (rng.gen_range(0..100) as f64) / 10.0);
        let game = Bimatrix::new(a.clone(), a.transpose());
        let (x, converged) =
            replicator_dynamics(&a, &MixedStrategy::new(vec![0.6, 0.4]), 50_000, 1e-13);
        if converged {
            // Converged points are fixed points; interior ones must be
            // Nash of the symmetric game.
            if x.as_pure().is_none() {
                assert!(game.is_nash(&x, &x), "seed {seed}: {x}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The scheduler-shaped 2×2 common-interest game always has a pure
    /// equilibrium at the payoff maximum — the property DEEP's stage game
    /// relies on.
    #[test]
    fn team_games_have_argmax_equilibrium(
        p in proptest::collection::vec(-1000.0f64..1000.0, 4)
    ) {
        let a = Matrix::from_fn(2, 2, |i, j| p[i * 2 + j]);
        let game = Bimatrix::common_interest(a.clone());
        // The global argmax cell is a pure Nash equilibrium.
        let mut best = (0, 0);
        for i in 0..2 {
            for j in 0..2 {
                if a[(i, j)] > a[best] {
                    best = (i, j);
                }
            }
        }
        prop_assert!(game.pure_equilibria().contains(&best));
        // And support enumeration reports at least one equilibrium whose
        // value equals the argmax payoff.
        let eqs = support_enumeration(&game);
        let attained = eqs.iter().any(|(x, y)| {
            (game.expected_payoffs(x, y).0 - a[best]).abs() < 1e-6
        });
        prop_assert!(attained);
    }
}

/// The deployment wave as an explicit Rosenthal congestion game: players
/// are same-wave pulls, resources are the calibrated source→device routes
/// of the testbed, and a *split* pull loads every route its bytes ride —
/// a player-specific resource subset, not one route per player. The
/// explicit form must agree with the generic oracle machinery and settle
/// into the routes-split (prisoner's-dilemma) equilibrium.
#[test]
fn wave_route_contention_is_a_rosenthal_congestion_game() {
    use deep::game::{CongestionGame, FiniteGame};
    use deep::simulator::{RegistryChoice, TestbedParams, DEVICE_MEDIUM};

    // A saturated wave: the calibrated alpha (0.1) is mild enough that
    // piling onto the fastest route stays optimal; the 8x coefficient
    // models the congestion regime the contention-5x ablation probes.
    let params = TestbedParams { contention_alpha: 0.8, ..TestbedParams::default() };
    // Resources: hub→medium, regional→medium, peer→medium at calibrated
    // bandwidths; cost of a route = transfer of a 580 MB app layer slowed
    // by the route's load (the executor's linear contention model).
    let bw = [
        params.route_bandwidth(RegistryChoice::Hub, DEVICE_MEDIUM).as_bytes_per_sec(),
        params.route_bandwidth(RegistryChoice::Regional, DEVICE_MEDIUM).as_bytes_per_sec(),
        params.peer_bw.as_bytes_per_sec(),
    ];
    let cost = move |r: usize, load: usize| (580e6 / bw[r]) * params.contention_factor(load - 1);
    // Player 0 is a split pull (stack from the peer + app layer from a
    // registry); players 1–2 are whole-image single-route pulls.
    let uses = vec![vec![vec![0, 2], vec![1, 2]], vec![vec![0], vec![1]], vec![vec![0], vec![1]]];
    let game = CongestionGame::new(3, uses.clone(), cost);
    let r = game.best_response_dynamics(vec![0, 0, 0], 100);
    assert!(r.converged, "potential game must converge");
    assert!(game.is_equilibrium(&r.profile));
    // The oracle form agrees profile-by-profile and on the equilibrium.
    let oracle = FiniteGame::new(vec![2, 2, 2], |p, profile| game.player_cost(p, profile));
    assert!(oracle.is_equilibrium(&r.profile));
    // Determinism and the potential as a Lyapunov function along the
    // dynamics: replays land on the same equilibrium.
    let again = game.best_response_dynamics(vec![0, 0, 0], 100);
    assert_eq!(again.profile, r.profile);
    // The PD structure under saturation: the split pull concedes the hub
    // route (13 MB/s) to the whole-image pulls and takes its app layer
    // regionally — players spread instead of all piling onto the fastest
    // route (which IS the equilibrium at the mild calibrated alpha).
    assert_eq!(r.profile, vec![1, 0, 0], "split pull's registry leg concedes the hub");
    let mild = CongestionGame::new(3, uses, move |r: usize, load: usize| {
        (580e6 / bw[r]) * (1.0 + 0.1 * (load - 1) as f64)
    });
    let mild_eq = mild.best_response_dynamics(vec![0, 0, 0], 100);
    assert!(mild_eq.converged);
    assert_eq!(mild_eq.profile, vec![0, 0, 0], "mild contention: everyone rides the hub");
}

/// Expected-cost payoffs stay inside the Rosenthal form. A lossy route's
/// cost is replaced by its *expectation* under the fault model —
/// `(1−p)·happy(load) + p·(detection + failover re-fetch)` — which is
/// still a pure per-resource load function, so the exact potential, the
/// convergence theorem and the best-response machinery apply unchanged
/// to E[Td] payoffs. This is the game-theoretic backbone of
/// `DeepScheduler::fault_aware`: risk-weighting moves the equilibrium
/// off the lossy route without leaving the class of congestion games.
#[test]
fn expected_cost_payoffs_stay_a_rosenthal_congestion_game() {
    use deep::game::CongestionGame;

    // Two whole-image pulls choosing between the hub route (44.6 s for
    // the 580 MB layer at 13 MB/s) and a slightly faster regional leg
    // (40 s), under saturated contention (alpha = 0.3). The regional is
    // lossy: with probability `p` the pull loses it mid-flight and pays
    // death detection (exhausted retry budget) plus the hub re-fetch —
    // priced at the hub's uncontended rate, the same per-resource
    // approximation the closed-form estimator makes for its failover
    // branch.
    let t_hub = 44.6;
    let t_reg = 40.0;
    let failover_penalty = 70.0 + 25.0 + t_hub; // detection + overhead + re-fetch
    let alpha = 0.3;
    let uses = vec![vec![vec![0], vec![1]]; 2];
    let game_at = move |p: f64| {
        CongestionGame::new(2, uses.clone(), move |r: usize, load: usize| {
            let f = 1.0 + alpha * (load - 1) as f64;
            match r {
                0 => t_hub * f,
                _ => (1.0 - p) * t_reg * f + p * failover_penalty,
            }
        })
    };

    // Happy path (p = 0): contention splits the players, one per route.
    let happy = game_at(0.0);
    let eq = happy.best_response_dynamics(vec![1, 1], 100);
    assert!(eq.converged);
    assert!(happy.is_equilibrium(&eq.profile));
    assert_ne!(eq.profile[0], eq.profile[1], "happy path: routes split");

    // Lossy regional (p = 0.25): the expected cost of the regional leg
    // exceeds even a *shared* hub route, so the equilibrium piles both
    // players onto the hub — risk-weighted bytes reroute.
    let lossy = game_at(0.25);
    let shifted = lossy.best_response_dynamics(vec![1, 1], 100);
    assert!(shifted.converged, "expected costs keep the potential argument");
    assert!(lossy.is_equilibrium(&shifted.profile));
    assert_eq!(shifted.profile, vec![0, 0], "both pulls abandon the lossy regional");

    // The exact-potential identity ΔΦ == Δcost holds on every
    // unilateral deviation of the expected-cost game — Rosenthal's
    // theorem never needed the costs to be deterministic, only
    // per-resource and load-dependent.
    for profile in [[0, 0], [0, 1], [1, 0], [1, 1]] {
        for player in 0..2 {
            for s in 0..2 {
                let mut probe = profile;
                probe[player] = s;
                let d_cost =
                    lossy.player_cost(player, &probe) - lossy.player_cost(player, &profile);
                let d_phi = lossy.potential(&probe) - lossy.potential(&profile);
                assert!(
                    (d_cost - d_phi).abs() < 1e-9,
                    "deviation p{player}→s{s} from {profile:?}: Δcost {d_cost} vs ΔΦ {d_phi}"
                );
            }
        }
    }
}
