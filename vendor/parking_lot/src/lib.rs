//! Minimal stand-in for `parking_lot`: non-poisoning lock wrappers over
//! the std primitives with the same `read()`/`write()`/`lock()` signatures
//! (no `Result`, matching parking_lot's API).

use std::sync::{self, LockResult};

/// Reader–writer lock whose guards are returned directly (poison is
/// swallowed — a panicking writer aborts the simulation anyway).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

/// Mutex with a direct-guard `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
