//! Minimal stand-in for `criterion`: same macro/builder surface, simple
//! adaptive timing loop, human-readable one-line reports. Good enough to
//! compare kernels before/after on one machine; not a statistics engine.
//!
//! Like real criterion, passing `--test` on the bench binary's command
//! line (`cargo bench -- --test`) runs every benchmark body exactly once
//! without timing — the smoke mode CI uses to keep bench targets from
//! bit-rotting without paying measurement windows.
//!
//! Tuning via environment:
//! * `BENCH_MEASURE_MS` — target measurement window per benchmark
//!   (default 300 ms).
//! * `BENCH_WARMUP_MS` — warmup window (default 100 ms).

use std::time::{Duration, Instant};

/// Measurement context handed to `b.iter(...)`.
pub struct Bencher {
    measure: Duration,
    warmup: Duration,
    test_mode: bool,
    /// (iterations, elapsed) of the measured window.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(measure: Duration, warmup: Duration, test_mode: bool) -> Self {
        Bencher { measure, warmup, test_mode, result: None }
    }

    /// Time the closure: warm up, then run batches until the measurement
    /// window is filled. In `--test` mode the closure runs once,
    /// untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.result = None;
            return;
        }
        // Warmup, also estimating a batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1 << 20 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32).unwrap_or_default();
        let batch: u64 = if per_iter.is_zero() {
            1024
        } else {
            (self.measure.as_nanos() / per_iter.as_nanos().max(1) / 8).clamp(1, 1 << 24) as u64
        };
        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Top-level driver.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
    test_mode: bool,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: env_ms("BENCH_MEASURE_MS", 300),
            warmup: env_ms("BENCH_WARMUP_MS", 100),
            test_mode: std::env::args().skip(1).any(|a| a == "--test"),
        }
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let time = if ns_per_iter >= 1e6 {
        format!("{:.3} ms", ns_per_iter / 1e6)
    } else if ns_per_iter >= 1e3 {
        format!("{:.3} µs", ns_per_iter / 1e3)
    } else {
        format!("{ns_per_iter:.1} ns")
    };
    let thrpt = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0);
            if mib_s >= 1024.0 {
                format!("   thrpt: {:.3} GiB/s", mib_s / 1024.0)
            } else {
                format!("   thrpt: {mib_s:.1} MiB/s")
            }
        }
        Some(Throughput::Elements(n)) => {
            format!("   thrpt: {:.3} Melem/s", n as f64 / (ns_per_iter / 1e9) / 1e6)
        }
        None => String::new(),
    };
    println!("{name:<44} time: {time:>12}/iter{thrpt}");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure, self.warmup, self.test_mode);
        f(&mut b);
        match b.result {
            Some((iters, elapsed)) => report(id, iters, elapsed, None),
            None if self.test_mode => println!("Testing {id}: ok"),
            None => {}
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sample-count hint — the adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-window override for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b =
            Bencher::new(self.criterion.measure, self.criterion.warmup, self.criterion.test_mode);
        f(&mut b);
        match b.result {
            Some((iters, elapsed)) => {
                report(&format!("{}/{}", self.name, id.id), iters, elapsed, self.throughput)
            }
            None if self.criterion.test_mode => println!("Testing {}/{}: ok", self.name, id.id),
            None => {}
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b =
            Bencher::new(self.criterion.measure, self.criterion.warmup, self.criterion.test_mode);
        f(&mut b, input);
        match b.result {
            Some((iters, elapsed)) => {
                report(&format!("{}/{}", self.name, id.id), iters, elapsed, self.throughput)
            }
            None if self.criterion.test_mode => println!("Testing {}/{}: ok", self.name, id.id),
            None => {}
        }
        self
    }

    pub fn finish(self) {}
}

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_the_body_once_without_timing() {
        let mut b = Bencher::new(Duration::from_millis(200), Duration::from_millis(200), true);
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1, "--test mode runs exactly one untimed iteration");
        assert!(b.result.is_none());
    }

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("BENCH_MEASURE_MS", "5");
        std::env::set_var("BENCH_WARMUP_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
