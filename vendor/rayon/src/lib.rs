//! Sequential stand-in for `rayon`: the `par_iter`/`into_par_iter`
//! surface the workspace uses, executed serially. Schedulers in this
//! workspace are pure functions, so the parallel and serial results are
//! identical — only wall-clock differs, and correctness tests compare
//! against serial maps anyway.

pub mod prelude {
    /// A "parallel" iterator — a plain sequential iterator plus rayon's
    /// extra adapter names.
    pub struct ParIter<I>(pub I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;

        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> ParIter<I> {
        /// rayon's `flat_map_iter`: flat-map where the produced iterators
        /// are consumed serially (which everything here is anyway).
        pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
        where
            U: IntoIterator,
            F: FnMut(I::Item) -> U,
        {
            ParIter(self.0.flat_map(f))
        }

        /// rayon's `with_min_len` — a scheduling hint; no-op serially.
        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }
    }

    /// `collection.into_par_iter()`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `slice.par_iter()` / `slice.par_iter_mut()`.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }

        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
            ParIter(self.iter_mut())
        }
    }

    /// `slice.par_chunks_mut(n)` — rayon's `ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter(self.chunks_mut(chunk_size))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let nested: Vec<usize> =
            vec![1usize, 2].par_iter().flat_map_iter(|&n| vec![n; n]).collect();
        assert_eq!(nested, vec![1, 2, 2]);
    }
}
