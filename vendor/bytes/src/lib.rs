//! Minimal stand-in for the `bytes` crate: cheaply-cloneable immutable
//! byte buffers ([`Bytes`]) and a growable builder ([`BytesMut`]). Backed
//! by `Arc<[u8]>` — clone is a refcount bump, matching the sharing
//! semantics the object store relies on.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wrap a static slice (copies once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy a slice into a shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

/// Growable byte builder, frozen into [`Bytes`] when complete.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn builder_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.extend_from_slice(b"cd");
        assert_eq!(m.freeze(), Bytes::from_static(b"abcd"));
    }
}
