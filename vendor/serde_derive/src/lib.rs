//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` available
//! offline) and emits `Serialize`/`Deserialize` impls against the
//! [`serde::Value`] data model. Supported shapes — the only ones the
//! workspace uses:
//!
//! * structs with named fields       → `Value::Map`
//! * newtype structs `S(T)`          → the inner value, transparently
//! * wider tuple structs `S(A, B)`   → `Value::Seq`
//! * enums with only unit variants   → `Value::Str(variant_name)`
//!
//! Generics and `#[serde(...)]` attributes are unsupported and rejected
//! with a compile error rather than silently mishandled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, which).parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error tokens parse"),
    }
}

/// Extract the item name and field/variant layout from the derive input.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    let mut is_enum = false;
    // Skip attributes and visibility until the `struct`/`enum` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" {
                    break;
                }
                if s == "enum" {
                    is_enum = true;
                    break;
                }
                // `pub` / `crate` etc. — skip, plus any `(...)` restriction.
                if s == "pub" {
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        iter.next();
                    }
                }
            }
            Some(_) => {}
            None => return Err("derive input without struct/enum".into()),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive serde for generic type `{name}`"));
    }
    let body = iter.next();
    if is_enum {
        let group = match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => return Err(format!("expected enum body, got {other:?}")),
        };
        return Ok((name, Shape::Enum(parse_variants(group.stream())?)));
    }
    match body {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok((name, Shape::Tuple(count_tuple_fields(g.stream()))))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

/// Field names from `{ a: T, pub b: U, ... }`. Commas inside `<...>` are
/// not separators; groups (parens/brackets/braces) arrive pre-balanced as
/// single tokens so only angle brackets need depth tracking.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        // Consume the type up to the next top-level comma.
        let mut angle: i32 = 0;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
    }
    Ok(fields)
}

/// Field count of a tuple struct body `(pub A, B, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle: i32 = 0;
    let mut saw_any = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        count
    }
}

/// Variant names of a unit-only enum; data variants are rejected.
fn parse_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err("serde derive stub supports unit enum variants only".into())
            }
            None => break,
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, which: Which) -> String {
    match which {
        Which::Serialize => gen_serialize(name, shape),
        Which::Deserialize => gen_deserialize(name, shape),
    }
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(v.element({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", items.join(", "))
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match v.variant()? {{ {}, other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\"unknown variant {{other}} for {name}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
