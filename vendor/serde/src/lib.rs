//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of serde it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs, tuple structs, and unit enums, routed
//! through a self-describing [`Value`] tree that `serde_json` prints and
//! parses. No `#[serde(...)]` attributes, no generics, no zero-copy — the
//! workspace needs none of those.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree — the single intermediate representation
/// between Rust values and any serialized form.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON objects preserve field order).
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Map field lookup, erroring with the field name on absence.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!("expected map for field `{name}`, got {other:?}"))),
        }
    }

    /// Sequence element lookup (tuple structs).
    pub fn element(&self, idx: usize) -> Result<&Value, Error> {
        match self {
            Value::Seq(items) => {
                items.get(idx).ok_or_else(|| Error(format!("missing tuple element {idx}")))
            }
            other => Err(Error(format!("expected sequence, got {other:?}"))),
        }
    }

    /// Unit enum variant name.
    pub fn variant(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error(format!("expected variant string, got {other:?}"))),
        }
    }

    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(n) => Ok(n),
            Value::I64(n) if n >= 0 => Ok(n as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as u64),
            ref other => Err(Error(format!("expected unsigned integer, got {other:?}"))),
        }
    }

    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(n) => Ok(n),
            Value::U64(n) if n <= i64::MAX as u64 => Ok(n as i64),
            Value::F64(f) if f.fract() == 0.0 => Ok(f as i64),
            ref other => Err(Error(format!("expected integer, got {other:?}"))),
        }
    }

    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }

    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

/// Types convertible into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
// `&'static str` fields (paper-table constants) deserialize by leaking the
// owned copy — the only consumers are static reference tables, so at most
// a handful of small strings ever leak.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::leak(v.as_str()?.to_string().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(v.element($n)?)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
