//! Minimal stand-in for `proptest`: deterministic randomized property
//! tests over the strategy surface the workspace uses — numeric ranges,
//! `any::<T>()`, `collection::vec`, and regex-literal string strategies.
//! No shrinking: a failing case panics with the generated inputs already
//! bound, and the deterministic per-case seeding makes reruns exact.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite quick while
            // still exercising the property broadly.
            Config { cases: 64 }
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.next_usize(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The macro parses `fn name(binding in strategy, ...) { body }` items and
/// expands each into a plain test running the body over `cases`
/// deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    // Seed from the test name and case index so every test
                    // gets an independent, reproducible stream.
                    let mut __rng = $crate::strategy::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// `prop_assert!` — plain assert; the generated bindings are in scope for
/// the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
