//! Strategies: deterministic samplers for the input shapes the
//! workspace's property tests draw from.

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name and case index — stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    pub fn next_usize(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        self.next_u64() as usize % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of sampled values.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// Strategies are used by shared reference in helper compositions.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — uniform over the type's domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String literals are regex strategies, as in real proptest. Supports the
/// subset the workspace's patterns use: literals, `[...]` classes with
/// ranges, groups, alternation, and the `?`/`*`/`+`/`{m}`/`{m,n}`
/// quantifiers (unbounded ones are capped at 8 repeats).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let node = regex::parse(self);
        let mut out = String::new();
        regex::generate(&node, rng, &mut out);
        out
    }
}

mod regex {
    use super::TestRng;

    pub enum Node {
        /// Concatenation of quantified atoms.
        Seq(Vec<(Node, usize, usize)>),
        /// Alternation.
        Alt(Vec<Node>),
        Literal(char),
        Class(Vec<(char, char)>),
    }

    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, consumed) = parse_alt(&chars, 0);
        assert!(
            consumed == chars.len(),
            "unsupported regex {pattern:?} (stopped at char {consumed})"
        );
        node
    }

    fn parse_alt(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut branches = Vec::new();
        let (first, next) = parse_seq(chars, pos);
        branches.push(first);
        pos = next;
        while pos < chars.len() && chars[pos] == '|' {
            let (branch, next) = parse_seq(chars, pos + 1);
            branches.push(branch);
            pos = next;
        }
        if branches.len() == 1 {
            (branches.pop().expect("one branch"), pos)
        } else {
            (Node::Alt(branches), pos)
        }
    }

    fn parse_seq(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut atoms = Vec::new();
        while pos < chars.len() && chars[pos] != '|' && chars[pos] != ')' {
            let (atom, next) = parse_atom(chars, pos);
            pos = next;
            let (min, max, next) = parse_quantifier(chars, pos);
            pos = next;
            atoms.push((atom, min, max));
        }
        (Node::Seq(atoms), pos)
    }

    fn parse_atom(chars: &[char], pos: usize) -> (Node, usize) {
        match chars[pos] {
            '(' => {
                let (node, next) = parse_alt(chars, pos + 1);
                assert!(chars.get(next) == Some(&')'), "unclosed group in regex");
                (node, next + 1)
            }
            '[' => parse_class(chars, pos + 1),
            '\\' => (Node::Literal(chars[pos + 1]), pos + 2),
            '.' => (Node::Class(vec![('a', 'z'), ('0', '9')]), pos + 1),
            c => (Node::Literal(c), pos + 1),
        }
    }

    fn parse_class(chars: &[char], mut pos: usize) -> (Node, usize) {
        let mut ranges = Vec::new();
        while chars[pos] != ']' {
            let lo = if chars[pos] == '\\' {
                pos += 1;
                chars[pos]
            } else {
                chars[pos]
            };
            if chars.get(pos + 1) == Some(&'-') && chars.get(pos + 2).is_some_and(|&c| c != ']') {
                ranges.push((lo, chars[pos + 2]));
                pos += 3;
            } else {
                ranges.push((lo, lo));
                pos += 1;
            }
        }
        (Node::Class(ranges), pos + 1)
    }

    fn parse_quantifier(chars: &[char], pos: usize) -> (usize, usize, usize) {
        match chars.get(pos) {
            Some('?') => (0, 1, pos + 1),
            Some('*') => (0, 8, pos + 1),
            Some('+') => (1, 8, pos + 1),
            Some('{') => {
                let close = chars[pos..].iter().position(|&c| c == '}').expect("unclosed {}") + pos;
                let body: String = chars[pos + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, "")) => (m.parse().expect("repeat count"), 8),
                    Some((m, n)) => {
                        (m.parse().expect("repeat count"), n.parse().expect("repeat count"))
                    }
                    None => {
                        let n = body.parse().expect("repeat count");
                        (n, n)
                    }
                };
                (min, max, close + 1)
            }
            _ => (1, 1, pos),
        }
    }

    pub fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(atoms) => {
                for (atom, min, max) in atoms {
                    let n = min + rng.next_usize(max - min + 1);
                    for _ in 0..n {
                        generate(atom, rng, out);
                    }
                }
            }
            Node::Alt(branches) => {
                let pick = rng.next_usize(branches.len());
                generate(&branches[pick], rng, out);
            }
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: usize =
                    ranges.iter().map(|(lo, hi)| *hi as usize - *lo as usize + 1).sum();
                let mut pick = rng.next_usize(total);
                for (lo, hi) in ranges {
                    let span = *hi as usize - *lo as usize + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).expect("class char"));
                        break;
                    }
                    pick -= span;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..200 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let f = (-1.5f64..1.5).sample(&mut rng);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = TestRng::for_case("regex", 1);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9-]{0,12}(/[a-z][a-z0-9-]{0,12})?".sample(&mut rng);
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            for part in s.split('/') {
                assert!(!part.is_empty());
                assert!(part
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            }
            assert!(s.split('/').count() <= 2);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vecs", 2);
        for _ in 0..50 {
            let v = crate::collection::vec(any::<u8>(), 0..256usize).sample(&mut rng);
            assert!(v.len() < 256);
            let fixed = crate::collection::vec(0.0f64..1.0, 4usize).sample(&mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let c = TestRng::for_case("x", 4);
        assert_ne!(a.state, c.state);
    }
}
