//! Stand-in for `rand_chacha`: a deterministic seeded generator under the
//! `ChaCha8Rng` name. The workspace uses it purely for reproducible
//! simulation streams, never for cryptography, so the underlying
//! algorithm is a keyed SplitMix64 counter rather than real ChaCha.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded RNG (API-compatible subset of ChaCha8Rng).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: u64,
    counter: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        let mut z = self.key ^ self.counter.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Mix the seed so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x6a09e667f3bcc909);
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z = (z ^ (z >> 33)).wrapping_mul(0xc4ceb9fe1a85ec53);
        ChaCha8Rng { key: z ^ (z >> 33), counter: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..50).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
        assert_eq!(v.len(), 16);
        let _: f64 = rng.gen_range(0.0..1.0);
    }
}
