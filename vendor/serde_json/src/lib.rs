//! Minimal JSON front-end for the vendored `serde` stand-in: prints and
//! parses [`serde::Value`] trees. Covers the JSON subset the workspace
//! emits (finite numbers, UTF-8 strings, arrays, objects) plus standard
//! escapes on input.

pub use serde::Value;

/// JSON error (parse or data-model mismatch).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        // `{:?}` prints the shortest representation that round-trips.
        Value::F64(f) => out.push_str(&format!("{f:?}")),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing bytes at offset {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("eof in escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("eof in \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("surrogate \\u escape".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().ok_or_else(|| Error("eof in string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "42", "-7", "3.25", "\"hi\\n\""] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{json}");
        }
    }

    #[test]
    fn nested_structures() {
        let json = r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f);
        }
    }
}
