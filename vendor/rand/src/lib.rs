//! Minimal stand-in for the `rand` crate: the `RngCore`/`Rng`/
//! `SeedableRng`/`SliceRandom` surface the workspace uses, with uniform
//! sampling over integer and float ranges. Deterministic by construction —
//! every generator in the workspace is seeded explicitly.

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values producible directly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Map a `u64` to a uniform float in `[0, 1)` using the top 53 bits.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by `gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Explicitly-seeded construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice helpers (`choose`, `shuffle`).
pub trait SliceRandom {
    type Item;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.next_u64() as usize % self.len())
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.next_u64() as usize % (i + 1);
            self.swap(i, j);
        }
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard};
}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// SplitMix64 — small, fast, full-period; the workspace only needs a
    /// deterministic stream, not a specific algorithm.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x6a09e667f3bcc909 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..=4.0);
            assert!((0.25..=4.0).contains(&f));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..10).collect();
        assert!(v.choose(&mut rng).is_some());
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
