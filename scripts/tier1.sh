#!/usr/bin/env bash
# Tier-1 verification: formatting, lints, release build, full test suite,
# a compile check of every criterion bench, and a smoke-run of every
# example so the sweeps (registry_sweep's mesh/N-regional scenarios and
# friends, fault_sweep's failure-rate × registry-count grid) cannot
# silently rot.
#
# Randomized suites stay deterministic in CI: the vendored proptest
# seeds every case from the test name (no ambient RNG), and the
# fault-injection Monte-Carlo tests sweep fixed fault_seed ranges — a
# red run always reproduces locally with the same `cargo test`.
#
# Usage: scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

# Workspace crates (vendored stand-in crates are exempt from fmt/clippy —
# they mirror upstream APIs, not house style).
CRATES=(
  deep deep-netsim deep-dataflow deep-energy deep-objectstore
  deep-registry deep-game deep-simulator deep-orchestrator deep-scenario
  deep-core deep-arrival deep-bench
)
PKG_FLAGS=()
for c in "${CRATES[@]}"; do PKG_FLAGS+=(-p "$c"); done

echo "==> cargo fmt --check"
cargo fmt "${PKG_FLAGS[@]}" -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy "${PKG_FLAGS[@]}" --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench -- --test (every bench body must execute cleanly)"
# The vendored criterion honours real criterion's --test flag: each
# benchmark body runs exactly once, untimed, so bench bit-rot fails
# tier 1 without paying measurement windows.
cargo bench -- --test

echo "==> examples smoke-run (every example must execute cleanly)"
for example in examples/*.rs; do
  name="$(basename "${example%.rs}")"
  echo "    -> ${name}"
  cargo run --quiet --release --example "${name}" >/dev/null
done

echo "==> scenario soak smoke (time-scaled chaos timeline through the runner)"
# scenario_runner's no-arg default is the sticky-outage soak (covered by
# the loop above); this pass replays the short time-scaled smoke soak so
# the rate + degrade + cache-pressure + registry-gc event kinds all
# execute on every push.
cargo run --quiet --release --example scenario_runner -- scenarios/soak_smoke.toml >/dev/null

echo "==> gossip discovery smoke (epidemic peer views through the runner)"
# gossip_frontier.rs (covered by the loop above) is the fleet-scale
# frontier; this pass replays the checked-in gossip scenario so the
# [gossip] DSL section and its sweep axes execute on every push.
cargo run --quiet --release --example scenario_runner -- scenarios/gossip_frontier.toml >/dev/null

echo "==> arrival plane smoke (online admissions + incremental repair)"
# arrival_runner's no-arg default already replays scenarios/arrival_soak.toml
# (covered by the loop above); this pass re-runs it explicitly so the
# checked-in arrival fixture stays wired to the example entry point.
cargo run --quiet --release --example arrival_runner -- scenarios/arrival_soak.toml >/dev/null

echo "tier-1 OK"
