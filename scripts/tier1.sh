#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a compile check
# of every criterion bench so the bench crate cannot silently rot.
#
# Usage: scripts/tier1.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (bench targets must keep compiling)"
cargo bench --no-run

echo "tier-1 OK"
