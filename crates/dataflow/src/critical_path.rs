//! Longest weighted path through an application DAG.
//!
//! The paper cites its earlier work for using the application DAG to model
//! completion time; the critical path is the classic lower bound on
//! makespan and is used by our baselines and by the analysis module of
//! `deep-core` to rank microservices.

use crate::dag::{Application, MicroserviceId};
use serde::{Deserialize, Serialize};

/// Result of a critical-path computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Node sequence from a source to a sink.
    pub path: Vec<MicroserviceId>,
    /// Sum of node weights along the path.
    pub length: f64,
}

/// Compute the critical path with per-microservice weights supplied by
/// `weight` (typically estimated processing seconds, but any non-negative
/// metric works — the caller chooses what "long" means).
pub fn critical_path<F>(app: &Application, weight: F) -> CriticalPath
where
    F: Fn(MicroserviceId) -> f64,
{
    let n = app.len();
    // dist[i] = best path length *ending at* i (inclusive of i's weight).
    let mut dist = vec![0.0f64; n];
    let mut prev: Vec<Option<MicroserviceId>> = vec![None; n];
    for &id in app.topological_order() {
        let w = weight(id);
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
        let (best_pred, best_len) = app
            .predecessors(id)
            .map(|p| (Some(p), dist[p.0]))
            .fold((None, 0.0f64), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
        dist[id.0] = best_len + w;
        prev[id.0] = best_pred;
    }
    // Walk back from the global maximum.
    let end = (0..n)
        .max_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("weights are not NaN"))
        .expect("applications are non-empty");
    let mut path = vec![MicroserviceId(end)];
    while let Some(p) = prev[path.last().unwrap().0] {
        path.push(p);
    }
    path.reverse();
    CriticalPath { path, length: dist[end] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApplicationBuilder;
    use crate::compute::Mi;
    use deep_netsim::DataSize;

    fn weighted_app() -> Application {
        // a(1) -> b(10) -> d(1)
        // a(1) -> c(2)  -> d(1)
        let mut bld = ApplicationBuilder::new("w");
        for n in ["a", "b", "c", "d"] {
            bld.simple(n, DataSize::ZERO, Mi::ZERO);
        }
        bld.flow("a", "b", DataSize::ZERO);
        bld.flow("a", "c", DataSize::ZERO);
        bld.flow("b", "d", DataSize::ZERO);
        bld.flow("c", "d", DataSize::ZERO);
        bld.build().unwrap()
    }

    fn w(app: &Application, id: MicroserviceId) -> f64 {
        match app.microservice(id).name.as_str() {
            "a" => 1.0,
            "b" => 10.0,
            "c" => 2.0,
            "d" => 1.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn picks_heavier_branch() {
        let app = weighted_app();
        let cp = critical_path(&app, |id| w(&app, id));
        let names: Vec<&str> = cp.path.iter().map(|&i| app.microservice(i).name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
        assert!((cp.length - 12.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_path() {
        let mut b = ApplicationBuilder::new("one");
        b.simple("solo", DataSize::ZERO, Mi::ZERO);
        let app = b.build().unwrap();
        let cp = critical_path(&app, |_| 7.0);
        assert_eq!(cp.path.len(), 1);
        assert!((cp.length - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_yield_any_full_chain() {
        let app = weighted_app();
        let cp = critical_path(&app, |_| 0.0);
        assert_eq!(cp.length, 0.0);
        assert!(!cp.path.is_empty());
    }

    #[test]
    fn path_is_a_connected_chain() {
        let app = weighted_app();
        let cp = critical_path(&app, |id| w(&app, id));
        for pair in cp.path.windows(2) {
            assert!(
                app.successors(pair[0]).any(|s| s == pair[1]),
                "{} -> {} is not an edge",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let app = weighted_app();
        critical_path(&app, |_| -1.0);
    }
}
