//! The two case-study applications of Figure 2, parameterised from
//! Tables I–II.
//!
//! * **Video processing** (Fig. 2a): `transcode → frame → {HA/LA train} →
//!   {HA/LA infer}` — road-sign recognition on a camera feed.
//! * **Text processing** (Fig. 2b): `retrieve → decompress → {HA/LA train}
//!   → {HA/LA score}` — Amazon review classification from an S3 bucket.
//!
//! Image sizes are Table II's `Size_mi` column verbatim. Processing loads
//! `CPU(m_i)` are calibrated so that `Tp = CPU(m_i) / CPU_medium` with
//! [`medium_mips`] reproduces Table II's `Tp` mid-points on the medium
//! device (the small device's per-microservice slowdowns live in
//! `deep-core`'s calibration database, because they are *measured* rather
//! than modelled quantities).
//!
//! Dataflow sizes are not printed in the paper; the values here are chosen
//! so that cross-device transmission times stay small relative to
//! deployment and processing, which matches Table II (its `CT` ranges
//! decompose into `Td + Tp` with only a minor residual).

use crate::builder::ApplicationBuilder;
use crate::compute::{Mi, Mips};
use crate::dag::Application;
use crate::requirements::Requirements;
use deep_netsim::DataSize;

/// Calibration speed of the medium device (Intel i7-7700 class) in MI/s.
/// All `CPU(m_i)` loads below are expressed against this reference.
pub fn medium_mips() -> Mips {
    Mips::new(40_000.0)
}

/// Per-microservice parameter record used to build the case-study apps.
struct MsSpec {
    name: &'static str,
    /// `Size_mi` from Table II, in GB.
    size_gb: f64,
    /// `Tp` midpoint on the medium device, in seconds (Table II).
    tp_medium_s: f64,
    cores: u32,
    mem_gb: f64,
    stor_gb: f64,
}

impl MsSpec {
    fn cpu(&self) -> Mi {
        Mi::new(self.tp_medium_s * medium_mips().as_f64())
    }

    fn requirements(&self) -> Requirements {
        Requirements::new(
            self.cores,
            self.cpu(),
            DataSize::gigabytes(self.mem_gb),
            DataSize::gigabytes(self.stor_gb),
        )
    }
}

const VIDEO_SPECS: [MsSpec; 6] = [
    MsSpec {
        name: "transcode",
        size_gb: 0.17,
        tp_medium_s: 18.25,
        cores: 1,
        mem_gb: 1.0,
        stor_gb: 2.0,
    },
    MsSpec { name: "frame", size_gb: 0.70, tp_medium_s: 15.0, cores: 1, mem_gb: 1.0, stor_gb: 4.0 },
    MsSpec {
        name: "ha-train",
        size_gb: 5.78,
        tp_medium_s: 122.5,
        cores: 4,
        mem_gb: 4.0,
        stor_gb: 16.0,
    },
    MsSpec {
        name: "la-train",
        size_gb: 5.78,
        tp_medium_s: 92.0,
        cores: 2,
        mem_gb: 2.0,
        stor_gb: 16.0,
    },
    MsSpec {
        name: "ha-infer",
        size_gb: 3.53,
        tp_medium_s: 39.5,
        cores: 2,
        mem_gb: 2.0,
        stor_gb: 10.0,
    },
    MsSpec {
        name: "la-infer",
        size_gb: 3.54,
        tp_medium_s: 39.0,
        cores: 1,
        mem_gb: 1.0,
        stor_gb: 10.0,
    },
];

const TEXT_SPECS: [MsSpec; 6] = [
    MsSpec {
        name: "retrieve",
        size_gb: 0.14,
        tp_medium_s: 50.0,
        cores: 1,
        mem_gb: 0.5,
        stor_gb: 2.0,
    },
    MsSpec {
        name: "decompress",
        size_gb: 0.78,
        tp_medium_s: 41.0,
        cores: 1,
        mem_gb: 1.0,
        stor_gb: 4.0,
    },
    MsSpec {
        name: "ha-train",
        size_gb: 2.36,
        tp_medium_s: 141.5,
        cores: 4,
        mem_gb: 4.0,
        stor_gb: 8.0,
    },
    MsSpec {
        name: "la-train",
        size_gb: 2.36,
        tp_medium_s: 88.0,
        cores: 2,
        mem_gb: 2.0,
        stor_gb: 8.0,
    },
    MsSpec {
        name: "ha-score",
        size_gb: 0.63,
        tp_medium_s: 75.0,
        cores: 2,
        mem_gb: 1.0,
        stor_gb: 3.0,
    },
    MsSpec {
        name: "la-score",
        size_gb: 0.63,
        tp_medium_s: 76.5,
        cores: 1,
        mem_gb: 1.0,
        stor_gb: 3.0,
    },
];

/// Build the video-processing application (Figure 2a).
pub fn video_processing() -> Application {
    let mut b = ApplicationBuilder::new("video-processing");
    for spec in &VIDEO_SPECS {
        b.microservice(spec.name, DataSize::gigabytes(spec.size_gb), spec.requirements());
    }
    b.flow("transcode", "frame", DataSize::megabytes(300.0));
    b.flow("frame", "ha-train", DataSize::megabytes(800.0));
    b.flow("frame", "la-train", DataSize::megabytes(800.0));
    b.flow("ha-train", "ha-infer", DataSize::megabytes(150.0));
    b.flow("la-train", "la-infer", DataSize::megabytes(150.0));
    b.build().expect("video-processing app is a valid DAG")
}

/// Build the text-processing application (Figure 2b).
pub fn text_processing() -> Application {
    let mut b = ApplicationBuilder::new("text-processing");
    for spec in &TEXT_SPECS {
        b.microservice(spec.name, DataSize::gigabytes(spec.size_gb), spec.requirements());
    }
    b.flow("retrieve", "decompress", DataSize::megabytes(250.0));
    b.flow("decompress", "ha-train", DataSize::megabytes(600.0));
    b.flow("decompress", "la-train", DataSize::megabytes(600.0));
    b.flow("ha-train", "ha-score", DataSize::megabytes(120.0));
    b.flow("la-train", "la-score", DataSize::megabytes(120.0));
    b.build().expect("text-processing app is a valid DAG")
}

/// Both case-study applications, in the order the paper presents them.
pub fn case_studies() -> Vec<Application> {
    vec![video_processing(), text_processing()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::{barrier_count, stages};

    #[test]
    fn both_apps_have_six_microservices() {
        assert_eq!(video_processing().len(), 6);
        assert_eq!(text_processing().len(), 6);
    }

    #[test]
    fn image_sizes_match_table_ii() {
        let video = video_processing();
        let check = |name: &str, gb: f64| {
            let id = video.by_name(name).unwrap();
            assert!(
                (video.microservice(id).image_size.as_gigabytes() - gb).abs() < 1e-9,
                "{name} size mismatch"
            );
        };
        check("transcode", 0.17);
        check("frame", 0.70);
        check("ha-train", 5.78);
        check("la-train", 5.78);
        check("ha-infer", 3.53);
        check("la-infer", 3.54);

        let text = text_processing();
        let id = text.by_name("ha-train").unwrap();
        assert!((text.microservice(id).image_size.as_gigabytes() - 2.36).abs() < 1e-9);
    }

    #[test]
    fn cpu_loads_reproduce_table_ii_tp_on_medium() {
        let video = video_processing();
        let id = video.by_name("ha-train").unwrap();
        let tp = video.microservice(id).requirements.cpu / medium_mips();
        assert!((tp.as_f64() - 122.5).abs() < 1e-9, "got {tp}");

        let text = text_processing();
        let id = text.by_name("la-score").unwrap();
        let tp = text.microservice(id).requirements.cpu / medium_mips();
        assert!((tp.as_f64() - 76.5).abs() < 1e-9, "got {tp}");
    }

    #[test]
    fn video_dag_shape_matches_figure_2a() {
        let app = video_processing();
        assert_eq!(app.sources(), vec![app.by_name("transcode").unwrap()]);
        let sinks = app.sinks();
        assert_eq!(sinks.len(), 2);
        assert!(sinks.contains(&app.by_name("ha-infer").unwrap()));
        assert!(sinks.contains(&app.by_name("la-infer").unwrap()));
        // frame fans out to both trainers.
        let frame = app.by_name("frame").unwrap();
        assert_eq!(app.successors(frame).count(), 2);
    }

    #[test]
    fn text_dag_shape_matches_figure_2b() {
        let app = text_processing();
        assert_eq!(app.sources(), vec![app.by_name("retrieve").unwrap()]);
        let dec = app.by_name("decompress").unwrap();
        let succ: Vec<_> = app.successors(dec).collect();
        assert_eq!(succ.len(), 2);
        assert!(succ.contains(&app.by_name("ha-train").unwrap()));
        assert!(succ.contains(&app.by_name("la-train").unwrap()));
    }

    #[test]
    fn apps_have_four_stages_and_synchronization_barriers() {
        // The paper speaks of two *synchronization* barriers (the fan-out
        // joins); topologically the apps have four stages, i.e. three
        // boundaries, two of which are true multi-member barriers.
        for app in case_studies() {
            let st = stages(&app);
            assert_eq!(st.len(), 4, "{} stages", app.name());
            assert_eq!(barrier_count(&app), 3);
            let multi = st.iter().filter(|s| s.members.len() > 1).count();
            assert_eq!(multi, 2, "{} multi-member stages", app.name());
        }
    }

    #[test]
    fn training_dominates_compute() {
        // Figure 3a's observation: HA/LA training are the heaviest.
        for app in case_studies() {
            let max = app
                .ids()
                .max_by(|&a, &b| {
                    let ca = app.microservice(a).requirements.cpu.as_f64();
                    let cb = app.microservice(b).requirements.cpu.as_f64();
                    ca.partial_cmp(&cb).unwrap()
                })
                .unwrap();
            assert_eq!(app.microservice(max).name, "ha-train", "{}", app.name());
        }
    }

    #[test]
    fn sibling_images_have_matching_size_for_layer_sharing() {
        // ha-train / la-train (and the scorers) ship the same stack; their
        // equal Table II sizes are what makes cross-image layer dedup
        // effective in the registry substrate.
        let text = text_processing();
        let ha = text.microservice(text.by_name("ha-train").unwrap()).image_size;
        let la = text.microservice(text.by_name("la-train").unwrap()).image_size;
        assert_eq!(ha, la);
    }

    #[test]
    fn total_image_sizes() {
        let v = video_processing().total_image_size().as_gigabytes();
        assert!((v - 19.5).abs() < 1e-6, "video total {v}");
        let t = text_processing().total_image_size().as_gigabytes();
        assert!((t - 6.9).abs() < 1e-6, "text total {t}");
    }
}
