//! The dataflow edge `df_ui` with its transfer size `Size_ui`.

use crate::dag::MicroserviceId;
use deep_netsim::DataSize;
use serde::{Deserialize, Serialize};

/// A directed dataflow from an upstage microservice `m_u` to a downstage
/// microservice `m_i`, carrying `Size_ui` bytes per execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataflow {
    /// Producer (`m_u`).
    pub from: MicroserviceId,
    /// Consumer (`m_i`).
    pub to: MicroserviceId,
    /// Bytes transferred per run (`Size_ui`, MB in the paper).
    pub size: DataSize,
}

impl Dataflow {
    pub fn new(from: MicroserviceId, to: MicroserviceId, size: DataSize) -> Self {
        assert!(from != to, "a microservice cannot feed itself");
        Dataflow { from, to, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let f = Dataflow::new(MicroserviceId(0), MicroserviceId(1), DataSize::megabytes(250.0));
        assert_eq!(f.from, MicroserviceId(0));
        assert_eq!(f.to, MicroserviceId(1));
        assert_eq!(f.size, DataSize::megabytes(250.0));
    }

    #[test]
    #[should_panic(expected = "feed itself")]
    fn self_loop_rejected() {
        Dataflow::new(MicroserviceId(3), MicroserviceId(3), DataSize::ZERO);
    }
}
