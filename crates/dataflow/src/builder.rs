//! Ergonomic application construction.

use crate::compute::Mi;
use crate::dag::{Application, DagError, MicroserviceId};
use crate::flow::Dataflow;
use crate::microservice::Microservice;
use crate::requirements::Requirements;
use deep_netsim::DataSize;
use std::collections::HashMap;
use std::fmt;

/// Errors from the builder (name resolution) or the underlying DAG
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A flow referenced a name never added with
    /// [`ApplicationBuilder::microservice`].
    UnknownName(String),
    /// Underlying graph validation failed.
    Dag(DagError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownName(n) => write!(f, "unknown microservice name {n:?}"),
            BuildError::Dag(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<DagError> for BuildError {
    fn from(e: DagError) -> Self {
        BuildError::Dag(e)
    }
}

/// Builder that lets applications be described by name.
#[derive(Debug, Clone, Default)]
pub struct ApplicationBuilder {
    name: String,
    microservices: Vec<Microservice>,
    index: HashMap<String, MicroserviceId>,
    flows: Vec<(String, String, DataSize)>,
}

impl ApplicationBuilder {
    /// Start building an application called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder { name: name.into(), ..Default::default() }
    }

    /// Add a microservice; returns its id for callers that prefer indices.
    pub fn microservice(
        &mut self,
        name: impl Into<String>,
        image_size: DataSize,
        requirements: Requirements,
    ) -> MicroserviceId {
        let name = name.into();
        let id = MicroserviceId(self.microservices.len());
        self.index.insert(name.clone(), id);
        self.microservices.push(Microservice::new(name, image_size, requirements));
        id
    }

    /// Convenience: microservice with [`Requirements::minimal`].
    pub fn simple(
        &mut self,
        name: impl Into<String>,
        image_size: DataSize,
        cpu: Mi,
    ) -> MicroserviceId {
        self.microservice(name, image_size, Requirements::minimal(cpu))
    }

    /// Add a dataflow between two named microservices.
    pub fn flow(&mut self, from: &str, to: &str, size: DataSize) -> &mut Self {
        self.flows.push((from.to_string(), to.to_string(), size));
        self
    }

    /// Validate and build the [`Application`].
    pub fn build(self) -> Result<Application, BuildError> {
        let mut flows = Vec::with_capacity(self.flows.len());
        for (from, to, size) in self.flows {
            let f = *self.index.get(&from).ok_or(BuildError::UnknownName(from))?;
            let t = *self.index.get(&to).ok_or(BuildError::UnknownName(to))?;
            flows.push(Dataflow::new(f, t, size));
        }
        Ok(Application::new(self.name, self.microservices, flows)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_by_name() {
        let mut b = ApplicationBuilder::new("demo");
        b.simple("src", DataSize::gigabytes(0.1), Mi::new(10.0));
        b.simple("dst", DataSize::gigabytes(0.2), Mi::new(20.0));
        b.flow("src", "dst", DataSize::megabytes(5.0));
        let app = b.build().unwrap();
        assert_eq!(app.len(), 2);
        assert_eq!(app.flows().len(), 1);
        assert_eq!(app.by_name("dst"), Some(MicroserviceId(1)));
    }

    #[test]
    fn unknown_name_is_reported() {
        let mut b = ApplicationBuilder::new("demo");
        b.simple("src", DataSize::gigabytes(0.1), Mi::new(10.0));
        b.flow("src", "ghost", DataSize::ZERO);
        assert_eq!(b.build().unwrap_err(), BuildError::UnknownName("ghost".into()));
    }

    #[test]
    fn dag_errors_propagate() {
        let mut b = ApplicationBuilder::new("cyc");
        b.simple("a", DataSize::ZERO, Mi::ZERO);
        b.simple("b", DataSize::ZERO, Mi::ZERO);
        b.flow("a", "b", DataSize::ZERO).flow("b", "a", DataSize::ZERO);
        assert_eq!(b.build().unwrap_err(), BuildError::Dag(DagError::Cyclic));
    }

    #[test]
    fn duplicate_names_overwrite_index_but_fail_validation() {
        let mut b = ApplicationBuilder::new("dup");
        b.simple("x", DataSize::ZERO, Mi::ZERO);
        b.simple("x", DataSize::ZERO, Mi::ZERO);
        assert!(matches!(b.build().unwrap_err(), BuildError::Dag(DagError::DuplicateName(_))));
    }
}
