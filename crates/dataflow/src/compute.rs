//! Compute units: millions of instructions and MI per second.
//!
//! The paper measures a microservice's processing load `CPU(m_i)` in
//! millions of instructions (MI) and a device's speed `CPU_j` in MI/s; the
//! processing time is their quotient, `Tp = CPU(m_i) / CPU_j`. These
//! newtypes make that quotient the only way to obtain a processing time.

use deep_netsim::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div};

/// A processing load in millions of instructions (`CPU(m_i)`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Mi(f64);

impl Mi {
    pub const ZERO: Mi = Mi(0.0);

    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "instruction count must be finite and non-negative");
        Mi(v)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Scale by a dimensionless factor (e.g. workload multiplier).
    #[inline]
    pub fn scale(self, factor: f64) -> Mi {
        Mi::new(self.0 * factor)
    }
}

impl Add for Mi {
    type Output = Mi;
    #[inline]
    fn add(self, rhs: Mi) -> Mi {
        Mi(self.0 + rhs.0)
    }
}

impl AddAssign for Mi {
    #[inline]
    fn add_assign(&mut self, rhs: Mi) {
        self.0 += rhs.0;
    }
}

impl Sum for Mi {
    fn sum<I: Iterator<Item = Mi>>(iter: I) -> Mi {
        iter.fold(Mi::ZERO, Add::add)
    }
}

impl Div<Mips> for Mi {
    type Output = Seconds;
    /// `Tp = CPU(m_i) / CPU_j`.
    #[inline]
    fn div(self, rhs: Mips) -> Seconds {
        assert!(rhs.0 > 0.0, "device speed must be positive");
        Seconds::new(self.0 / rhs.0)
    }
}

impl fmt::Display for Mi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MI", self.0)
    }
}

/// A device's processing speed in MI per second (`CPU_j`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Mips(f64);

impl Mips {
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "speed must be finite and non-negative");
        Mips(v)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Scale by a dimensionless efficiency factor (e.g. architecture
    /// mismatch between amd64-optimised code and an arm64 device).
    #[inline]
    pub fn scale(self, factor: f64) -> Mips {
        Mips::new(self.0 * factor)
    }
}

impl fmt::Display for Mips {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MI/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processing_time_is_load_over_speed() {
        // 4.9e6 MI on a 40 000 MI/s device = 122.5 s (video HA Train class).
        let t = Mi::new(4_900_000.0) / Mips::new(40_000.0);
        assert!((t.as_f64() - 122.5).abs() < 1e-9);
    }

    #[test]
    fn mi_arithmetic() {
        let total: Mi = [Mi::new(1.0), Mi::new(2.5)].into_iter().sum();
        assert!((total.as_f64() - 3.5).abs() < 1e-12);
        let mut a = Mi::new(1.0);
        a += Mi::new(1.0);
        assert_eq!(a, Mi::new(2.0));
        assert_eq!(Mi::new(10.0).scale(0.5), Mi::new(5.0));
    }

    #[test]
    fn mips_scale_models_architecture_efficiency() {
        let native = Mips::new(40_000.0);
        let arm = native.scale(0.25);
        let t_native = Mi::new(100_000.0) / native;
        let t_arm = Mi::new(100_000.0) / arm;
        assert!((t_arm.as_f64() / t_native.as_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected_in_division() {
        let _ = Mi::new(1.0) / Mips::new(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Mi::new(730_000.0)), "730000 MI");
        assert_eq!(format!("{}", Mips::new(40_000.0)), "40000 MI/s");
    }
}
