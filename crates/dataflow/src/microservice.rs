//! The microservice record `(m_i, Size_mi)` plus its requirement tuple.

use crate::requirements::Requirements;
use deep_netsim::DataSize;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A containerised microservice: node of the application DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microservice {
    /// Human-readable name ("transcode", "ha-train", ...). Unique within an
    /// application.
    pub name: String,
    /// Container image size `Size_mi` (GB in the paper's tables).
    pub image_size: DataSize,
    /// Resource requirement tuple `req(m_i)`.
    pub requirements: Requirements,
}

impl Microservice {
    pub fn new(name: impl Into<String>, image_size: DataSize, requirements: Requirements) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "microservice name must be non-empty");
        Microservice { name, image_size, requirements }
    }
}

impl fmt::Display for Microservice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.image_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Mi;

    #[test]
    fn construction_and_display() {
        let m = Microservice::new(
            "transcode",
            DataSize::gigabytes(0.17),
            Requirements::minimal(Mi::new(730_000.0)),
        );
        assert_eq!(m.name, "transcode");
        assert_eq!(format!("{m}"), "transcode (170.00 MB)");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_rejected() {
        Microservice::new("", DataSize::ZERO, Requirements::minimal(Mi::ZERO));
    }
}
