//! The validated application DAG `A = (M, E)`.

use crate::flow::Dataflow;
use crate::microservice::Microservice;
use deep_netsim::DataSize;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Index of a microservice within its application (`m_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MicroserviceId(pub usize);

impl fmt::Display for MicroserviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Errors detected while validating an application graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The dataflow graph contains a cycle — not a DAG.
    Cyclic,
    /// An edge references a microservice index that does not exist.
    DanglingEdge { from: usize, to: usize },
    /// Two microservices share a name.
    DuplicateName(String),
    /// Two dataflows connect the same ordered pair.
    DuplicateEdge { from: usize, to: usize },
    /// The application has no microservices.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cyclic => write!(f, "dataflow graph contains a cycle"),
            DagError::DanglingEdge { from, to } => {
                write!(f, "dataflow m{from} -> m{to} references an unknown microservice")
            }
            DagError::DuplicateName(n) => write!(f, "duplicate microservice name {n:?}"),
            DagError::DuplicateEdge { from, to } => {
                write!(f, "duplicate dataflow m{from} -> m{to}")
            }
            DagError::Empty => write!(f, "application has no microservices"),
        }
    }
}

impl std::error::Error for DagError {}

/// A dataflow-processing application: a validated DAG of microservices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    microservices: Vec<Microservice>,
    flows: Vec<Dataflow>,
    /// `succ[i]` = indices into `flows` leaving `m_i`.
    succ: Vec<Vec<usize>>,
    /// `pred[i]` = indices into `flows` entering `m_i`.
    pred: Vec<Vec<usize>>,
    /// A fixed topological order of microservice ids.
    topo: Vec<MicroserviceId>,
}

impl Application {
    /// Validate and construct. Prefer [`crate::builder::ApplicationBuilder`]
    /// for ergonomic use.
    pub fn new(
        name: impl Into<String>,
        microservices: Vec<Microservice>,
        flows: Vec<Dataflow>,
    ) -> Result<Self, DagError> {
        let name = name.into();
        let n = microservices.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        // Unique names.
        let mut names: Vec<&str> = microservices.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] {
                return Err(DagError::DuplicateName(w[0].to_string()));
            }
        }
        // Edge sanity.
        let mut seen = std::collections::HashSet::with_capacity(flows.len());
        for f in &flows {
            if f.from.0 >= n || f.to.0 >= n {
                return Err(DagError::DanglingEdge { from: f.from.0, to: f.to.0 });
            }
            if !seen.insert((f.from.0, f.to.0)) {
                return Err(DagError::DuplicateEdge { from: f.from.0, to: f.to.0 });
            }
        }
        // Adjacency.
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        for (idx, f) in flows.iter().enumerate() {
            succ[f.from.0].push(idx);
            pred[f.to.0].push(idx);
        }
        // Kahn's algorithm: topological order, cycle detection.
        let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            topo.push(MicroserviceId(i));
            for &e in &succ[i] {
                let j = flows[e].to.0;
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cyclic);
        }
        Ok(Application { name, microservices, flows, succ, pred, topo })
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `N_M`: number of microservices.
    pub fn len(&self) -> usize {
        self.microservices.len()
    }

    /// True when the application has no microservices (never: construction
    /// rejects it, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.microservices.is_empty()
    }

    /// All microservice ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = MicroserviceId> {
        (0..self.microservices.len()).map(MicroserviceId)
    }

    /// The microservice record for `id`.
    pub fn microservice(&self, id: MicroserviceId) -> &Microservice {
        &self.microservices[id.0]
    }

    /// Find a microservice by name.
    pub fn by_name(&self, name: &str) -> Option<MicroserviceId> {
        self.microservices.iter().position(|m| m.name == name).map(MicroserviceId)
    }

    /// All dataflows.
    pub fn flows(&self) -> &[Dataflow] {
        &self.flows
    }

    /// Dataflows entering `id` (the `df_ui` a microservice must receive).
    pub fn incoming(&self, id: MicroserviceId) -> impl Iterator<Item = &Dataflow> {
        self.pred[id.0].iter().map(move |&e| &self.flows[e])
    }

    /// Dataflows leaving `id`.
    pub fn outgoing(&self, id: MicroserviceId) -> impl Iterator<Item = &Dataflow> {
        self.succ[id.0].iter().map(move |&e| &self.flows[e])
    }

    /// Producers feeding `id`.
    pub fn predecessors(&self, id: MicroserviceId) -> impl Iterator<Item = MicroserviceId> + '_ {
        self.pred[id.0].iter().map(move |&e| self.flows[e].from)
    }

    /// Consumers fed by `id`.
    pub fn successors(&self, id: MicroserviceId) -> impl Iterator<Item = MicroserviceId> + '_ {
        self.succ[id.0].iter().map(move |&e| self.flows[e].to)
    }

    /// Microservices with no producers (application entry points).
    pub fn sources(&self) -> Vec<MicroserviceId> {
        self.ids().filter(|&i| self.pred[i.0].is_empty()).collect()
    }

    /// Microservices with no consumers (application outputs).
    pub fn sinks(&self) -> Vec<MicroserviceId> {
        self.ids().filter(|&i| self.succ[i.0].is_empty()).collect()
    }

    /// A topological order (fixed at construction, deterministic).
    pub fn topological_order(&self) -> &[MicroserviceId] {
        &self.topo
    }

    /// Total bytes entering `id` per run: `Σ_u Size_ui`.
    pub fn total_input_size(&self, id: MicroserviceId) -> DataSize {
        self.incoming(id).map(|f| f.size).sum()
    }

    /// Sum of all image sizes — lower bound on registry storage.
    pub fn total_image_size(&self) -> DataSize {
        self.microservices.iter().map(|m| m.image_size).sum()
    }

    /// Render the DAG in Graphviz DOT format (Figure 2 regeneration).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        writeln!(out, "digraph \"{}\" {{", self.name).unwrap();
        writeln!(out, "  rankdir=LR;").unwrap();
        for (i, m) in self.microservices.iter().enumerate() {
            writeln!(out, "  m{} [label=\"{}\\n{}\"];", i, m.name, m.image_size).unwrap();
        }
        for f in &self.flows {
            writeln!(out, "  m{} -> m{} [label=\"{}\"];", f.from.0, f.to.0, f.size).unwrap();
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::Mi;
    use crate::requirements::Requirements;

    fn ms(name: &str) -> Microservice {
        Microservice::new(name, DataSize::gigabytes(1.0), Requirements::minimal(Mi::new(100.0)))
    }

    fn diamond() -> Application {
        // a -> b, a -> c, b -> d, c -> d
        Application::new(
            "diamond",
            vec![ms("a"), ms("b"), ms("c"), ms("d")],
            vec![
                Dataflow::new(MicroserviceId(0), MicroserviceId(1), DataSize::megabytes(10.0)),
                Dataflow::new(MicroserviceId(0), MicroserviceId(2), DataSize::megabytes(20.0)),
                Dataflow::new(MicroserviceId(1), MicroserviceId(3), DataSize::megabytes(30.0)),
                Dataflow::new(MicroserviceId(2), MicroserviceId(3), DataSize::megabytes(40.0)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn topological_order_respects_edges() {
        let app = diamond();
        let order = app.topological_order();
        let pos = |id: MicroserviceId| order.iter().position(|&x| x == id).unwrap();
        for f in app.flows() {
            assert!(pos(f.from) < pos(f.to), "{} before {}", f.from, f.to);
        }
    }

    #[test]
    fn sources_and_sinks() {
        let app = diamond();
        assert_eq!(app.sources(), vec![MicroserviceId(0)]);
        assert_eq!(app.sinks(), vec![MicroserviceId(3)]);
    }

    #[test]
    fn degree_queries() {
        let app = diamond();
        let d = MicroserviceId(3);
        let preds: Vec<_> = app.predecessors(d).collect();
        assert_eq!(preds, vec![MicroserviceId(1), MicroserviceId(2)]);
        let succs: Vec<_> = app.successors(MicroserviceId(0)).collect();
        assert_eq!(succs, vec![MicroserviceId(1), MicroserviceId(2)]);
        assert_eq!(app.total_input_size(d), DataSize::megabytes(70.0));
    }

    #[test]
    fn by_name_lookup() {
        let app = diamond();
        assert_eq!(app.by_name("c"), Some(MicroserviceId(2)));
        assert_eq!(app.by_name("zz"), None);
    }

    #[test]
    fn cycle_detected() {
        let err = Application::new(
            "cyc",
            vec![ms("a"), ms("b")],
            vec![
                Dataflow::new(MicroserviceId(0), MicroserviceId(1), DataSize::ZERO),
                Dataflow::new(MicroserviceId(1), MicroserviceId(0), DataSize::ZERO),
            ],
        )
        .unwrap_err();
        assert_eq!(err, DagError::Cyclic);
    }

    #[test]
    fn dangling_edge_detected() {
        let err = Application::new(
            "dangle",
            vec![ms("a")],
            vec![Dataflow::new(MicroserviceId(0), MicroserviceId(7), DataSize::ZERO)],
        )
        .unwrap_err();
        assert_eq!(err, DagError::DanglingEdge { from: 0, to: 7 });
    }

    #[test]
    fn duplicate_name_detected() {
        let err = Application::new("dup", vec![ms("a"), ms("a")], vec![]).unwrap_err();
        assert_eq!(err, DagError::DuplicateName("a".into()));
    }

    #[test]
    fn duplicate_edge_detected() {
        let err = Application::new(
            "dupedge",
            vec![ms("a"), ms("b")],
            vec![
                Dataflow::new(MicroserviceId(0), MicroserviceId(1), DataSize::ZERO),
                Dataflow::new(MicroserviceId(0), MicroserviceId(1), DataSize::megabytes(1.0)),
            ],
        )
        .unwrap_err();
        assert_eq!(err, DagError::DuplicateEdge { from: 0, to: 1 });
    }

    #[test]
    fn empty_application_rejected() {
        assert_eq!(Application::new("none", vec![], vec![]).unwrap_err(), DagError::Empty);
    }

    #[test]
    fn total_image_size_sums_nodes() {
        let app = diamond();
        assert_eq!(app.total_image_size(), DataSize::gigabytes(4.0));
    }

    #[test]
    fn dot_output_contains_every_node_and_edge() {
        let app = diamond();
        let dot = app.to_dot();
        for m in ["a", "b", "c", "d"] {
            assert!(dot.contains(m), "missing node {m}");
        }
        assert_eq!(dot.matches("->").count(), 4);
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn disconnected_nodes_are_allowed() {
        // Independent microservices are legal (degenerate DAG).
        let app = Application::new("disc", vec![ms("a"), ms("b")], vec![]).unwrap();
        assert_eq!(app.sources().len(), 2);
        assert_eq!(app.sinks().len(), 2);
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let app = diamond();
        let json = serde_json::to_string(&app).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        assert_eq!(app, back);
    }
}
