//! Synchronization barriers / stage decomposition.
//!
//! The paper notes each case-study application "comprises two
//! synchronization barriers defining the dependencies of a downstage
//! microservice to its upstage ones". We generalise: a *stage* is the set
//! of microservices at equal topological depth; the barrier between stage
//! `s` and `s+1` releases when every member of stage `s` has completed.
//! The non-concurrent execution model of the paper then runs stages in
//! order (and members of a stage sequentially on their devices).

use crate::dag::{Application, MicroserviceId};
use serde::{Deserialize, Serialize};

/// One stage: microservices that may only start after the previous stage's
/// barrier releases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Zero-based stage depth.
    pub depth: usize,
    /// Members, in ascending id order (deterministic).
    pub members: Vec<MicroserviceId>,
}

/// Decompose `app` into stages by topological depth.
///
/// Depth of a microservice = 1 + max depth of its producers (0 for
/// sources). Stages are returned in execution order.
pub fn stages(app: &Application) -> Vec<Stage> {
    let n = app.len();
    let mut depth = vec![0usize; n];
    // Topological order guarantees producers are finalised first.
    for &id in app.topological_order() {
        let d = app.predecessors(id).map(|p| depth[p.0] + 1).max().unwrap_or(0);
        depth[id.0] = d;
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut out: Vec<Stage> =
        (0..=max_depth).map(|d| Stage { depth: d, members: Vec::new() }).collect();
    for i in 0..n {
        out[depth[i]].members.push(MicroserviceId(i));
    }
    out
}

/// Number of barriers = number of stage boundaries.
pub fn barrier_count(app: &Application) -> usize {
    stages(app).len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApplicationBuilder;
    use crate::compute::Mi;
    use deep_netsim::DataSize;

    fn pipeline4() -> Application {
        // a -> b -> {c1, c2} -> d-like shape used by both paper apps:
        // retrieve -> decompress -> {ha-train, la-train} -> {ha-score, la-score}
        let mut b = ApplicationBuilder::new("p");
        for name in ["a", "b", "c1", "c2", "d1", "d2"] {
            b.simple(name, DataSize::gigabytes(0.1), Mi::new(1.0));
        }
        b.flow("a", "b", DataSize::megabytes(1.0));
        b.flow("b", "c1", DataSize::megabytes(1.0));
        b.flow("b", "c2", DataSize::megabytes(1.0));
        b.flow("c1", "d1", DataSize::megabytes(1.0));
        b.flow("c2", "d2", DataSize::megabytes(1.0));
        b.build().unwrap()
    }

    #[test]
    fn stage_depths_follow_longest_path() {
        let app = pipeline4();
        let st = stages(&app);
        assert_eq!(st.len(), 4);
        assert_eq!(st[0].members, vec![app.by_name("a").unwrap()]);
        assert_eq!(st[1].members, vec![app.by_name("b").unwrap()]);
        assert_eq!(st[2].members, vec![app.by_name("c1").unwrap(), app.by_name("c2").unwrap()]);
        assert_eq!(st[3].members, vec![app.by_name("d1").unwrap(), app.by_name("d2").unwrap()]);
    }

    #[test]
    fn every_microservice_in_exactly_one_stage() {
        let app = pipeline4();
        let st = stages(&app);
        let total: usize = st.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, app.len());
        let mut seen = std::collections::HashSet::new();
        for s in &st {
            for m in &s.members {
                assert!(seen.insert(*m), "duplicate stage membership for {m}");
            }
        }
    }

    #[test]
    fn diamond_join_waits_for_longest_branch() {
        // a -> b -> c, a -> c : c is at depth 2, not 1.
        let mut bld = ApplicationBuilder::new("d");
        bld.simple("a", DataSize::ZERO, Mi::ZERO);
        bld.simple("b", DataSize::ZERO, Mi::ZERO);
        bld.simple("c", DataSize::ZERO, Mi::ZERO);
        bld.flow("a", "b", DataSize::ZERO);
        bld.flow("b", "c", DataSize::ZERO);
        bld.flow("a", "c", DataSize::ZERO);
        let app = bld.build().unwrap();
        let st = stages(&app);
        assert_eq!(st.len(), 3);
        assert_eq!(st[2].members, vec![app.by_name("c").unwrap()]);
    }

    #[test]
    fn independent_nodes_form_single_stage() {
        let mut b = ApplicationBuilder::new("flat");
        b.simple("x", DataSize::ZERO, Mi::ZERO);
        b.simple("y", DataSize::ZERO, Mi::ZERO);
        let app = b.build().unwrap();
        let st = stages(&app);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].members.len(), 2);
        assert_eq!(barrier_count(&app), 0);
    }

    #[test]
    fn stage_order_matches_barrier_semantics() {
        // Every producer must live in a strictly earlier stage.
        let app = pipeline4();
        let st = stages(&app);
        let stage_of =
            |id: MicroserviceId| st.iter().position(|s| s.members.contains(&id)).unwrap();
        for f in app.flows() {
            assert!(stage_of(f.from) < stage_of(f.to));
        }
    }
}
