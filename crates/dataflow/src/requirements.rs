//! Microservice resource requirements.
//!
//! The paper's `req(m_i) = ⟨CORE(m_i), CPU(m_i), MEM(m_i), STOR(m_i)⟩`
//! (Section III-A): minimum core count, processing load in MI, and memory /
//! storage floors a hosting device must satisfy.

use crate::compute::Mi;
use deep_netsim::DataSize;
use serde::{Deserialize, Serialize};

/// Where in the computing continuum a device sits.
///
/// The paper's evaluation is edge-only; its conclusion announces extending
/// "the computation between cloud and edge". The class lets microservices
/// whose *data source* is physically located somewhere (a camera at the
/// edge, an S3 bucket in the cloud) constrain their placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// An edge device near the data producers.
    Edge,
    /// A cloud server reached over the WAN.
    Cloud,
}

/// Resource requirements of one microservice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Minimum number of cores, `CORE(m_i)`.
    pub cores: u32,
    /// Processing load in millions of instructions, `CPU(m_i)`.
    pub cpu: Mi,
    /// Minimum memory, `MEM(m_i)`.
    pub memory: DataSize,
    /// Minimum storage, `STOR(m_i)` (must hold the unpacked image plus
    /// working data).
    pub storage: DataSize,
    /// Optional continuum constraint: `Some(Edge)` pins the microservice
    /// to edge devices (e.g. it reads a physical camera). `None` runs
    /// anywhere.
    pub class: Option<DeviceClass>,
}

impl Requirements {
    /// Build a requirement tuple (no continuum constraint).
    pub fn new(cores: u32, cpu: Mi, memory: DataSize, storage: DataSize) -> Self {
        Requirements { cores, cpu, memory, storage, class: None }
    }

    /// A minimal requirement for tests and generators: one core, tiny
    /// footprint.
    pub fn minimal(cpu: Mi) -> Self {
        Requirements {
            cores: 1,
            cpu,
            memory: DataSize::megabytes(128.0),
            storage: DataSize::megabytes(256.0),
            class: None,
        }
    }

    /// Constrain placement to one device class.
    pub fn pinned_to(mut self, class: DeviceClass) -> Self {
        self.class = Some(class);
        self
    }

    /// True when a device offering `(cores, memory, storage)` can host this
    /// microservice — the admission predicate used by the orchestrator.
    pub fn fits(&self, cores: u32, memory: DataSize, storage: DataSize) -> bool {
        self.cores <= cores && self.memory <= memory && self.storage <= storage
    }

    /// [`fits`](Self::fits) plus the continuum constraint.
    pub fn fits_class(
        &self,
        cores: u32,
        memory: DataSize,
        storage: DataSize,
        class: DeviceClass,
    ) -> bool {
        self.fits(cores, memory, storage) && self.class.is_none_or(|c| c == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_requires_every_dimension() {
        let req = Requirements::new(
            2,
            Mi::new(1000.0),
            DataSize::gigabytes(2.0),
            DataSize::gigabytes(8.0),
        );
        assert!(req.fits(4, DataSize::gigabytes(16.0), DataSize::gigabytes(64.0)));
        assert!(!req.fits(1, DataSize::gigabytes(16.0), DataSize::gigabytes(64.0)));
        assert!(!req.fits(4, DataSize::gigabytes(1.0), DataSize::gigabytes(64.0)));
        assert!(!req.fits(4, DataSize::gigabytes(16.0), DataSize::gigabytes(4.0)));
    }

    #[test]
    fn boundary_is_inclusive() {
        let req =
            Requirements::new(4, Mi::new(1.0), DataSize::gigabytes(8.0), DataSize::gigabytes(32.0));
        // The small testbed device exactly: 4 cores, 8 GB, 32 GB.
        assert!(req.fits(4, DataSize::gigabytes(8.0), DataSize::gigabytes(32.0)));
    }

    #[test]
    fn minimal_fits_small_device() {
        let req = Requirements::minimal(Mi::new(100.0));
        assert!(req.fits(1, DataSize::megabytes(128.0), DataSize::megabytes(256.0)));
    }
}

#[cfg(test)]
mod class_tests {
    use super::*;
    use crate::compute::Mi;

    #[test]
    fn unconstrained_requirements_fit_any_class() {
        let req = Requirements::minimal(Mi::new(1.0));
        for class in [DeviceClass::Edge, DeviceClass::Cloud] {
            assert!(req.fits_class(
                1,
                DataSize::megabytes(128.0),
                DataSize::megabytes(256.0),
                class
            ));
        }
    }

    #[test]
    fn pinned_requirements_reject_other_classes() {
        let req = Requirements::minimal(Mi::new(1.0)).pinned_to(DeviceClass::Edge);
        assert!(req.fits_class(
            4,
            DataSize::gigabytes(1.0),
            DataSize::gigabytes(1.0),
            DeviceClass::Edge
        ));
        assert!(!req.fits_class(
            4,
            DataSize::gigabytes(1.0),
            DataSize::gigabytes(1.0),
            DeviceClass::Cloud
        ));
    }

    #[test]
    fn class_constraint_does_not_bypass_resources() {
        let req =
            Requirements::new(8, Mi::new(1.0), DataSize::gigabytes(1.0), DataSize::gigabytes(1.0))
                .pinned_to(DeviceClass::Cloud);
        assert!(!req.fits_class(
            4,
            DataSize::gigabytes(16.0),
            DataSize::gigabytes(64.0),
            DeviceClass::Cloud
        ));
    }
}
