//! Dataflow application model for the DEEP reproduction.
//!
//! Implements the paper's application model (Section III-A): an application
//! is a DAG `A = (M, E)` of containerised microservices `m_i` (each with an
//! image size `Size_mi` and a resource requirement tuple
//! `req(m_i) = ⟨CORE, CPU, MEM, STOR⟩`) connected by dataflows `df_ui` of
//! size `Size_ui`. Each application carries synchronization barriers that
//! force downstage microservices to wait for all their upstage producers.
//!
//! Contents:
//!
//! * [`compute`] — `MI` / `MI/s` newtypes (`Tp = CPU(m_i) / CPU_j` falls out
//!   of the types);
//! * [`microservice`], [`requirements`], [`flow`] — the node/edge records;
//! * [`dag`] — the validated [`Application`] graph with topological order,
//!   reachability and degree queries;
//! * [`mod@stages`] — barrier/stage decomposition;
//! * [`mod@critical_path`] — longest weighted path through the DAG;
//! * [`builder`] — ergonomic construction with error checking;
//! * [`apps`] — the two case-study applications of Figure 2, parameterised
//!   exactly as Table II reports them;
//! * [`generator`] — seeded random DAGs for property tests and scale
//!   benchmarks.

pub mod apps;
pub mod builder;
pub mod compute;
pub mod critical_path;
pub mod dag;
pub mod flow;
pub mod generator;
pub mod microservice;
pub mod requirements;
pub mod stages;

pub use builder::{ApplicationBuilder, BuildError};
pub use compute::{Mi, Mips};
pub use critical_path::{critical_path, CriticalPath};
pub use dag::{Application, DagError, MicroserviceId};
pub use flow::Dataflow;
pub use generator::DagGenerator;
pub use microservice::Microservice;
pub use requirements::{DeviceClass, Requirements};
pub use stages::{stages, Stage};
