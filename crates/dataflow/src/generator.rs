//! Seeded random application generators for property tests and scale
//! benchmarks.
//!
//! Generates layered DAGs in the spirit of the case studies: a pipeline of
//! stages, each with one or more microservices, with every microservice
//! consuming from at least one member of the previous stage. Layered
//! construction guarantees acyclicity by construction, so generated
//! applications always validate.

use crate::builder::ApplicationBuilder;
use crate::compute::Mi;
use crate::dag::Application;
use crate::requirements::Requirements;
use deep_netsim::DataSize;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`DagGenerator`].
#[derive(Debug, Clone)]
pub struct DagGenerator {
    /// Number of stages (≥ 1).
    pub stages: usize,
    /// Microservices per stage, inclusive range.
    pub width: (usize, usize),
    /// Image size range, GB.
    pub image_gb: (f64, f64),
    /// Processing load range, MI.
    pub cpu_mi: (f64, f64),
    /// Dataflow size range, MB.
    pub flow_mb: (f64, f64),
    /// Probability of an extra (skip or intra-level fan-in) edge beyond the
    /// mandatory connectivity edge.
    pub extra_edge_prob: f64,
}

impl Default for DagGenerator {
    fn default() -> Self {
        DagGenerator {
            stages: 4,
            width: (1, 3),
            image_gb: (0.1, 6.0),
            cpu_mi: (1e5, 6e6),
            flow_mb: (10.0, 1000.0),
            extra_edge_prob: 0.25,
        }
    }
}

impl DagGenerator {
    /// A generator shaped like the paper's case studies.
    pub fn paper_like() -> Self {
        Self::default()
    }

    /// Generate an application from `seed`. Identical seeds yield identical
    /// applications.
    pub fn generate(&self, seed: u64) -> Application {
        assert!(self.stages >= 1, "need at least one stage");
        assert!(self.width.0 >= 1 && self.width.0 <= self.width.1, "bad width range");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = ApplicationBuilder::new(format!("generated-{seed}"));
        let mut layers: Vec<Vec<String>> = Vec::with_capacity(self.stages);
        let mut counter = 0usize;
        for s in 0..self.stages {
            let w = rng.gen_range(self.width.0..=self.width.1);
            let mut layer = Vec::with_capacity(w);
            for _ in 0..w {
                let name = format!("ms{counter}");
                counter += 1;
                let size = DataSize::gigabytes(rng.gen_range(self.image_gb.0..=self.image_gb.1));
                let cpu = Mi::new(rng.gen_range(self.cpu_mi.0..=self.cpu_mi.1));
                let req = Requirements::new(
                    rng.gen_range(1..=4),
                    cpu,
                    DataSize::gigabytes(rng.gen_range(0.25..=4.0)),
                    DataSize::gigabytes(rng.gen_range(1.0..=16.0)),
                );
                b.microservice(&name, size, req);
                layer.push(name);
            }
            if s > 0 {
                // Mandatory connectivity: every member consumes from a
                // random member of the previous stage.
                // Clones needed because `b` borrows names by value.
                let prev = layers[s - 1].clone();
                for name in &layer {
                    let src = prev.choose(&mut rng).expect("previous layer non-empty");
                    let size = DataSize::megabytes(rng.gen_range(self.flow_mb.0..=self.flow_mb.1));
                    b.flow(src, name, size);
                }
                // Optional extra fan-in edges from any earlier layer.
                for name in &layer {
                    if rng.gen_bool(self.extra_edge_prob) {
                        let layer_idx = rng.gen_range(0..s);
                        let src = layers[layer_idx].choose(&mut rng).unwrap().clone();
                        // Avoid duplicating the mandatory edge.
                        if !prev.contains(&src) || rng.gen_bool(0.5) {
                            let size =
                                DataSize::megabytes(rng.gen_range(self.flow_mb.0..=self.flow_mb.1));
                            // Duplicate (src,name) pairs are rejected by the
                            // DAG validator; skip them proactively.
                            b.flow(&src, name, size);
                        }
                    }
                }
            }
            layers.push(layer);
        }
        match b.build() {
            Ok(app) => app,
            Err(_) => {
                // A rare duplicate extra edge slipped in; retry with the
                // next derived seed. Bounded recursion: seeds are cheap and
                // dup probability is small.
                self.generate(seed.wrapping_mul(6364136223846793005).wrapping_add(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::stages;

    #[test]
    fn generation_is_deterministic() {
        let g = DagGenerator::default();
        let a = g.generate(42);
        let b = g.generate(42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = DagGenerator::default();
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    fn generated_apps_are_valid_dags_across_seeds() {
        let g = DagGenerator::default();
        for seed in 0..50 {
            let app = g.generate(seed);
            assert!(app.len() >= g.stages, "seed {seed}");
            // Topological order exists by construction of Application.
            assert_eq!(app.topological_order().len(), app.len());
        }
    }

    #[test]
    fn stage_count_at_least_requested_depth() {
        // Layered construction: path through all layers exists, so the
        // stage decomposition is at least `stages` deep.
        let g = DagGenerator { stages: 6, ..Default::default() };
        let app = g.generate(7);
        assert!(stages(&app).len() >= 6);
    }

    #[test]
    fn wide_generator_produces_parallel_stages() {
        let g = DagGenerator { width: (3, 5), ..Default::default() };
        let app = g.generate(11);
        let st = stages(&app);
        assert!(st.iter().any(|s| s.members.len() >= 3));
    }

    #[test]
    fn single_stage_generator_yields_sources_only() {
        let g = DagGenerator { stages: 1, width: (2, 2), ..Default::default() };
        let app = g.generate(3);
        assert_eq!(app.len(), 2);
        assert!(app.flows().is_empty());
    }
}
