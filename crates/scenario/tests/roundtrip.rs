//! Property tests for the scenario DSL: parse → serialize → parse is
//! the identity on randomly generated (valid-by-construction)
//! scenarios, and the canonical form is a fixed point. Hostile inputs
//! (overlapping windows, zero-duration events, unknown ids) are pinned
//! as explicit cases alongside.

use deep_scenario::toml::{format_value, parse as toml_parse, Value};
use deep_scenario::{
    ArrivalModel, ArrivalSpec, Axis, Event, GossipSpec, RateSpec, RetrySpec, Scenario, SweepAxis,
    Target, TestbedBase, TestbedSpec,
};
use proptest::prelude::*;
use proptest::strategy::TestRng;

/// A string exercising the quoting/escaping path (quotes, backslashes,
/// control characters, `#` that must not read as a comment).
fn escapish_string(rng: &mut TestRng) -> String {
    const CHARS: &[char] = &['a', 'b', 'z', '"', '\\', '\n', '\t', '#', ' ', '-'];
    let len = 1 + rng.next_usize(7);
    (0..len).map(|_| CHARS[rng.next_usize(CHARS.len())]).collect()
}

fn target(rng: &mut TestRng) -> Target {
    match rng.next_usize(3) {
        0 => Target::Hub,
        1 => Target::Regional,
        _ => Target::Mirror(0),
    }
}

/// One event confined to its own 1000-second slot: windows are globally
/// disjoint by construction, so no same-target dark overlap can arise.
fn event(rng: &mut TestRng, slot: usize) -> Event {
    let base = slot as f64 * 1000.0;
    let start = base + (0.0f64..400.0).sample(rng);
    let duration = (1.0f64..500.0).sample(rng);
    let at = base + (0.0f64..1000.0).sample(rng);
    match rng.next_usize(6) {
        0 => Event::Outage { target: target(rng), start, duration },
        1 => Event::Degrade {
            target: target(rng),
            start,
            duration,
            factor: (0.01f64..0.99).sample(rng),
        },
        2 => Event::PeerUplinkKill { device: rng.next_usize(2), start, duration },
        3 => Event::CachePressure {
            device: rng.next_usize(2),
            at,
            keep_mb: (0.0f64..2048.0).sample(rng),
        },
        4 => Event::DeleteTag {
            at,
            repository: "[a-z]{1,6}/[a-z]{1,6}".sample(rng),
            tag: escapish_string(rng),
        },
        _ => Event::RegistryGc { at },
    }
}

/// At most one `[[rates]]` entry per target (duplicates are rejected).
fn rates(rng: &mut TestRng) -> Vec<RateSpec> {
    let mut out = Vec::new();
    for target in [Target::Hub, Target::Regional, Target::Mirror(0)] {
        if rng.next_u64() & 1 == 1 {
            out.push(RateSpec {
                target,
                fatal_per_pull: (0.0f64..=1.0).sample(rng),
                transient_per_fetch: (0.0f64..=1.0).sample(rng),
            });
        }
    }
    out
}

/// Random arrival streams, valid by construction: positive laws,
/// sorted non-negative traces, warmup strictly below the count.
fn arrivals(rng: &mut TestRng) -> Vec<ArrivalSpec> {
    (0..rng.next_usize(3))
        .map(|_| {
            let count = 1 + rng.next_usize(5);
            let warmup = rng.next_usize(count);
            match rng.next_usize(3) {
                0 => ArrivalSpec {
                    model: ArrivalModel::Poisson { rate: (0.0001f64..10.0).sample(rng) },
                    count,
                    warmup,
                },
                1 => ArrivalSpec {
                    model: ArrivalModel::Deterministic { interval: (0.01f64..1000.0).sample(rng) },
                    count,
                    warmup,
                },
                _ => {
                    let mut times: Vec<f64> =
                        (0..count).map(|_| (0.0f64..5000.0).sample(rng)).collect();
                    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    ArrivalSpec { model: ArrivalModel::Trace { times }, count, warmup }
                }
            }
        })
        .collect()
}

/// Optional sweep axes in canonical order. Mirror-count values stay
/// ≥ 1 so a `mirror-0` reference elsewhere in the generated scenario
/// remains valid on every grid point; the gossip axes are only emitted
/// when the scenario carries a `[gossip]` section to mutate.
fn sweep(rng: &mut TestRng, has_gossip: bool) -> Vec<SweepAxis> {
    let mut out = Vec::new();
    if rng.next_u64() & 1 == 1 {
        let n = 1 + rng.next_usize(2);
        out.push(SweepAxis {
            axis: Axis::MirrorCount,
            values: (0..n).map(|_| (1 + rng.next_usize(3)) as f64).collect(),
        });
    }
    if rng.next_u64() & 1 == 1 {
        let n = 1 + rng.next_usize(3);
        out.push(SweepAxis {
            axis: Axis::FaultRate,
            values: (0..n).map(|_| (0.0f64..=1.0).sample(rng)).collect(),
        });
    }
    if rng.next_u64() & 1 == 1 {
        let n = 1 + rng.next_usize(3);
        out.push(SweepAxis {
            axis: Axis::RegionalToSmallMbps,
            values: (0..n).map(|_| (0.5f64..64.0).sample(rng)).collect(),
        });
    }
    if has_gossip && rng.next_u64() & 1 == 1 {
        let n = 1 + rng.next_usize(3);
        out.push(SweepAxis {
            axis: Axis::GossipViewSize,
            values: (0..n).map(|_| (1 + rng.next_usize(16)) as f64).collect(),
        });
    }
    if has_gossip && rng.next_u64() & 1 == 1 {
        let n = 1 + rng.next_usize(3);
        out.push(SweepAxis {
            axis: Axis::GossipRounds,
            values: (0..n).map(|_| (1 + rng.next_usize(8)) as f64).collect(),
        });
    }
    out
}

/// Valid-by-construction random scenarios.
struct ScenarioStrategy;

impl Strategy for ScenarioStrategy {
    type Value = Scenario;

    fn sample(&self, rng: &mut TestRng) -> Scenario {
        let events = (0..rng.next_usize(6)).map(|slot| event(rng, slot)).collect();
        // A [gossip] section requires peer_sharing; when present it also
        // unlocks the gossip sweep axes.
        let peer_sharing = rng.next_u64() & 1 == 1;
        let gossip = (peer_sharing && rng.next_u64() & 1 == 1).then(|| GossipSpec {
            fanout: 1 + rng.next_usize(8),
            view_size: 1 + rng.next_usize(32),
            rounds_per_wave: 1 + rng.next_usize(4),
        });
        let sweep = sweep(rng, gossip.is_some());
        Scenario {
            name: "[a-z][a-z0-9-]{0,10}".sample(rng),
            app: if rng.next_u64() & 1 == 1 { "video-processing" } else { "text-processing" }
                .to_string(),
            seed: rng.next_u64() >> 24,
            replications: 1 + rng.next_usize(7) as u32,
            time_scale: (0.001f64..100.0).sample(rng),
            peer_sharing,
            testbed: TestbedSpec {
                base: if rng.next_u64() & 1 == 1 {
                    TestbedBase::Paper
                } else {
                    TestbedBase::Continuum
                },
                calibrate: rng.next_u64() & 1 == 1,
                mirrors: 1 + rng.next_usize(3),
                regional_to_small_mbps: (rng.next_u64() & 1 == 1)
                    .then(|| (0.5f64..64.0).sample(rng)),
            },
            retry: (rng.next_u64() & 1 == 1).then(|| RetrySpec {
                max_attempts: 1 + rng.next_usize(5),
                base_backoff: (0.0f64..30.0).sample(rng),
            }),
            gossip,
            rates: rates(rng),
            events,
            arrivals: arrivals(rng),
            sweep,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scenario_parse_serialize_parse_is_identity(scenario in ScenarioStrategy) {
        let text = scenario.to_toml();
        let back = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("canonical form failed to parse: {e}\n---\n{text}"));
        prop_assert_eq!(&back, &scenario);
        // The canonical serialization is a fixed point.
        prop_assert_eq!(back.to_toml(), text);
    }

    #[test]
    fn toml_scalars_round_trip_exactly(
        i in any::<i64>(),
        x in any::<f64>(),
        scale in -300i32..300,
        b in any::<bool>(),
    ) {
        // Cover magnitudes from subnormal-adjacent to astronomic; the
        // serializer must round-trip the exact bits of each.
        let scaled = x * 10f64.powi(scale);
        for value in [
            Value::Int(i),
            Value::Float(x),
            Value::Float(scaled),
            Value::Bool(b),
        ] {
            if let Value::Float(f) = value {
                if !f.is_finite() {
                    continue; // the parser rejects non-finite by design
                }
            }
            let doc = format!("v = {}", format_value(&value));
            let root = toml_parse(&doc)
                .unwrap_or_else(|e| panic!("emitted scalar failed to parse: {e}\n{doc}"));
            // Float equality must be bitwise, not approximate.
            match (&root["v"], &value) {
                (Value::Float(a), Value::Float(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (got, want) => prop_assert_eq!(got, want),
            }
        }
    }

    #[test]
    fn toml_strings_round_trip_exactly(pattern in "[a-z ]{0,16}", case in 0u32..4) {
        // Mix plain text with the escape-needing characters.
        let decorated = match case {
            0 => pattern,
            1 => format!("{pattern}\"quoted\""),
            2 => format!("a\\b{pattern}\n\t"),
            _ => format!("#{pattern}#"),
        };
        let doc = format!("v = {}", format_value(&Value::Str(decorated.clone())));
        let root = toml_parse(&doc)
            .unwrap_or_else(|e| panic!("emitted string failed to parse: {e}\n{doc}"));
        prop_assert_eq!(&root["v"], &Value::Str(decorated));
    }
}

#[test]
fn hostile_documents_name_the_problem() {
    // A curated gallery of near-miss documents: each must fail, and
    // fail for the *right* reason.
    let cases: &[(&str, &str)] = &[
        // Overlapping dark windows on one target.
        (
            "name = \"x\"\napp = \"text-processing\"\n\
             [[events]]\nkind = \"outage\"\ntarget = \"hub\"\nstart = 0.0\nduration = 60.0\n\
             [[events]]\nkind = \"outage\"\ntarget = \"hub\"\nstart = 59.0\nduration = 60.0\n",
            "overlapping dark windows",
        ),
        // Zero-duration event.
        (
            "name = \"x\"\napp = \"text-processing\"\n\
             [[events]]\nkind = \"peer-uplink-kill\"\ndevice = 0\nstart = 1.0\nduration = 0\n",
            "must be positive",
        ),
        // Unknown registry id.
        (
            "name = \"x\"\napp = \"text-processing\"\n\
             [[events]]\nkind = \"outage\"\ntarget = \"quay\"\nstart = 0.0\nduration = 1.0\n",
            "unknown target `quay`",
        ),
        // Mirror index past the registered count.
        (
            "name = \"x\"\napp = \"text-processing\"\n[testbed]\nmirrors = 1\n\
             [[rates]]\ntarget = \"mirror-1\"\nfatal_per_pull = 0.1\ntransient_per_fetch = 0.0\n",
            "only 1 mirror(s)",
        ),
        // Unknown key (typo'd field).
        (
            "name = \"x\"\napp = \"text-processing\"\n\
             [[events]]\nkind = \"registry-gc\"\nat = 0.0\nwhen = 1.0\n",
            "unknown key `when`",
        ),
        // Negative gossip fanout.
        (
            "name = \"x\"\napp = \"text-processing\"\npeer_sharing = true\n\
             [gossip]\nfanout = -3\nview_size = 8\nrounds_per_wave = 1\n",
            "`fanout` in [gossip] must be a non-negative integer",
        ),
        // Zero gossip fanout.
        (
            "name = \"x\"\napp = \"text-processing\"\npeer_sharing = true\n\
             [gossip]\nfanout = 0\nview_size = 8\nrounds_per_wave = 1\n",
            "`fanout` in [gossip] must be at least 1",
        ),
        // Zero view size.
        (
            "name = \"x\"\napp = \"text-processing\"\npeer_sharing = true\n\
             [gossip]\nfanout = 2\nview_size = 0\nrounds_per_wave = 1\n",
            "`view_size` in [gossip] must be at least 1",
        ),
        // Unknown key inside [gossip].
        (
            "name = \"x\"\napp = \"text-processing\"\npeer_sharing = true\n\
             [gossip]\nfanout = 2\nview_size = 8\nrounds_per_wave = 1\nttl = 4\n",
            "unknown key `ttl` in [gossip]",
        ),
        // [gossip] without the peer plane it discovers for.
        (
            "name = \"x\"\napp = \"text-processing\"\n\
             [gossip]\nfanout = 2\nview_size = 8\nrounds_per_wave = 1\n",
            "[gossip] requires `peer_sharing = true`",
        ),
        // A gossip sweep axis with no [gossip] section to mutate.
        (
            "name = \"x\"\napp = \"text-processing\"\n\
             [[sweep]]\naxis = \"gossip-view-size\"\nvalues = [2, 4]\n",
            "sweep axis `gossip-view-size` requires a [gossip] section",
        ),
        // Fractional rounds on the gossip-rounds axis.
        (
            "name = \"x\"\napp = \"text-processing\"\npeer_sharing = true\n\
             [gossip]\nfanout = 2\nview_size = 8\nrounds_per_wave = 1\n\
             [[sweep]]\naxis = \"gossip-rounds\"\nvalues = [1.5]\n",
            "out-of-range value",
        ),
        // TOML-level breakage keeps its line number.
        ("name = \"x\"\napp = \"text-processing\"\nbroken", "line 3"),
    ];
    for (doc, needle) in cases {
        let err = Scenario::parse(doc).expect_err(doc);
        let msg = err.to_string();
        assert!(msg.contains(needle), "for {doc:?}\n  got:  {msg}\n  want: {needle}");
    }
}
