//! Seeded, deterministic chaos/soak scenarios: a TOML DSL for fleet,
//! workload, and scripted fault timelines.
//!
//! A scenario file describes one reproducible experiment end to end —
//! the testbed (base fleet, mirrors, link overrides), the application
//! workload, the per-source [`deep_registry::FaultRates`], and a
//! timeline of scripted events: sticky source outages and correlated
//! multi-mirror incidents ([`Event::Outage`]), bandwidth degradations
//! ([`Event::Degrade`]), peer-uplink kills ([`Event::PeerUplinkKill`]),
//! and chaos actions the executor fires on its wave clock
//! ([`Event::CachePressure`], [`Event::DeleteTag`],
//! [`Event::RegistryGc`]). Time-indexed events become
//! [`deep_registry::OutageWindow`]s on the testbed's fault model or
//! [`deep_simulator::ChaosEvent`]s for
//! [`deep_simulator::execute_with_events`]; faults activate and clear
//! at scripted times, not per-pull draws.
//!
//! The format is the small TOML subset of [`toml`] (hand-rolled — the
//! workspace vendors no TOML crate); `docs/SCENARIOS.md` documents the
//! schema with a commented example. Parsing is strict: unknown keys,
//! unknown targets, zero-duration events, and overlapping same-target
//! dark windows are rejected with the offending key and a reason.
//! [`Scenario::to_toml`] emits a canonical form such that
//! parse → serialize → parse is the identity (pinned by proptests).
//!
//! A `[gossip]` table switches both the scheduler and the executor
//! from the omniscient peer snapshot to
//! [`deep_simulator::PeerDiscovery::Gossip`] (fanout, bounded view
//! size, epidemic rounds per wave); it requires `peer_sharing = true`
//! and unlocks the `gossip-view-size` / `gossip-rounds` sweep axes.
//!
//! Scenarios also express *sweeps*: [`SweepAxis`] entries expand one
//! file into the cartesian grid of concrete scenarios
//! ([`Scenario::expand`]), which is how `examples/fault_sweep.rs` and
//! `examples/registry_sweep.rs` drive their grids from checked-in
//! files.
//!
//! This crate deliberately does not depend on `deep-core`:
//! [`Scenario::build_testbed_with`] takes the calibrator as a closure,
//! so deep-core (and the root facade) can hand in `calibrate` without a
//! dependency cycle.

pub mod toml;

use deep_dataflow::{apps, Application};
use deep_netsim::{Bandwidth, DataSize, DeviceId, RegistryId, Seconds};
use deep_registry::{FaultModel, FaultRates, OutageWindow, RetryPolicy};
use deep_simulator::{
    peer_source_id, ChaosEvent, ExecutorConfig, PeerDiscovery, Testbed, TestbedParams,
    REGISTRY_MIRROR_BASE,
};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::toml::Value;

/// Scenario loading / validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io(String),
    /// The TOML layer rejected the document.
    Parse(toml::ParseError),
    /// The document is well-formed TOML but not a valid scenario.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io(m) => write!(f, "{m}"),
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<toml::ParseError> for ScenarioError {
    fn from(e: toml::ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

fn invalid<T>(message: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError::Invalid(message.into()))
}

/// A mesh source a scenario can name: the paper registries or the k-th
/// regional mirror (`"hub"`, `"regional"`, `"mirror-K"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Hub,
    Regional,
    Mirror(usize),
}

impl Target {
    fn parse(text: &str) -> Result<Self, ScenarioError> {
        match text {
            "hub" => Ok(Target::Hub),
            "regional" => Ok(Target::Regional),
            _ => match text.strip_prefix("mirror-").and_then(|k| k.parse::<usize>().ok()) {
                Some(k) => Ok(Target::Mirror(k)),
                None => invalid(format!(
                    "unknown target `{text}` (expected `hub`, `regional`, or `mirror-K`)"
                )),
            },
        }
    }

    /// The mesh id the target resolves to.
    pub fn registry_id(&self) -> RegistryId {
        match self {
            Target::Hub => RegistryId(0),
            Target::Regional => RegistryId(1),
            Target::Mirror(k) => RegistryId(REGISTRY_MIRROR_BASE.0 + k),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Hub => write!(f, "hub"),
            Target::Regional => write!(f, "regional"),
            Target::Mirror(k) => write!(f, "mirror-{k}"),
        }
    }
}

/// Which fleet the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestbedBase {
    /// The paper's two-device testbed ([`Testbed::paper`]).
    Paper,
    /// The cloud–edge continuum ([`Testbed::continuum`]).
    Continuum,
}

impl TestbedBase {
    fn as_str(&self) -> &'static str {
        match self {
            TestbedBase::Paper => "paper",
            TestbedBase::Continuum => "continuum",
        }
    }

    /// Devices in the fleet (bounds-checks `device = N` fields).
    fn device_count(&self) -> usize {
        match self {
            TestbedBase::Paper => 2,
            TestbedBase::Continuum => 3,
        }
    }
}

/// The `[testbed]` table: fleet shape and link overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedSpec {
    pub base: TestbedBase,
    /// Apply the calibrator closure handed to
    /// [`Scenario::build_testbed_with`] (deep-core's `calibrate`).
    pub calibrate: bool,
    /// Regional mirrors to register, k-th at `10 + k` MB/s and 5 s
    /// overhead — the canonical sweep mirrors of the examples.
    pub mirrors: usize,
    /// Override [`TestbedParams::regional_to_small`] (MB/s).
    pub regional_to_small_mbps: Option<f64>,
}

impl Default for TestbedSpec {
    fn default() -> Self {
        TestbedSpec {
            base: TestbedBase::Paper,
            calibrate: true,
            mirrors: 0,
            regional_to_small_mbps: None,
        }
    }
}

/// The `[retry]` table: the policy transient injections back off under.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySpec {
    pub max_attempts: usize,
    /// Base backoff in seconds (doubles per retry).
    pub base_backoff: f64,
}

/// The `[gossip]` table: epidemic peer discovery with bounded views
/// ([`PeerDiscovery::Gossip`]) instead of the omniscient per-wave
/// snapshot. Requires `peer_sharing = true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipSpec {
    /// Exchange partners per device per round (clamped to the fleet
    /// size minus one at runtime).
    pub fanout: usize,
    /// Max holder sources one pull's mesh may carry.
    pub view_size: usize,
    /// Epidemic rounds per wave barrier.
    pub rounds_per_wave: usize,
}

/// One `[[rates]]` entry: a source's sampled failure probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSpec {
    pub target: Target,
    pub fatal_per_pull: f64,
    pub transient_per_fetch: f64,
}

/// One `[[events]]` entry: a scripted fault or chaos action. Times are
/// scenario seconds, multiplied by [`Scenario::time_scale`] at build.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A sticky outage: `target` is dark over `[start, start+duration)`.
    Outage { target: Target, start: f64, duration: f64 },
    /// A bandwidth degradation: `target` serves at `factor` × nominal.
    Degrade { target: Target, start: f64, duration: f64, factor: f64 },
    /// Kill device `device`'s peer-serving uplink: its per-holder peer
    /// source goes dark for the window (the device still *pulls*).
    PeerUplinkKill { device: usize, start: f64, duration: f64 },
    /// Storage pressure at time `at`: LRU-evict `device`'s cache down to
    /// `keep_mb` MB, retracting the victims' peer advertisements.
    CachePressure { device: usize, at: f64, keep_mb: f64 },
    /// Delete `repository:tag` from the regional registry at `at`.
    DeleteTag { at: f64, repository: String, tag: String },
    /// Garbage-collect the regional registry at `at`.
    RegistryGc { at: f64 },
}

/// The inter-arrival law of one `[[arrivals]]` stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalModel {
    /// Poisson process: exponential inter-arrival times at `rate`
    /// arrivals per scenario second (sampled from the scenario's
    /// splitmix64 seed stream by the arrival plane).
    Poisson { rate: f64 },
    /// Fixed inter-arrival gap of `interval` scenario seconds.
    Deterministic { interval: f64 },
    /// Explicit arrival times in scenario seconds (sorted,
    /// non-negative).
    Trace { times: Vec<f64> },
}

/// One `[[arrivals]]` entry: a stream of deployment requests for the
/// scenario's application, admitted by the online arrival plane
/// (`deep-arrival`) at executor wave barriers. Times are scenario
/// seconds, multiplied by [`Scenario::time_scale`] like event times.
/// Multiple entries are merged into one time-ordered request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    pub model: ArrivalModel,
    /// Arrivals the stream emits (trace streams derive it from the
    /// list).
    pub count: usize,
    /// Leading arrivals excluded from steady-state statistics (still
    /// executed — they warm caches and queues).
    pub warmup: usize,
}

/// A sweepable scenario parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Regional mirror count (values must be small non-negative
    /// integers).
    MirrorCount,
    /// Sets the regional registry's `fatal_per_pull` *and*
    /// `transient_per_fetch` to the value — the examples' lossy-regional
    /// knob.
    FaultRate,
    /// Overrides [`TestbedParams::regional_to_small`] (MB/s).
    RegionalToSmallMbps,
    /// Overrides [`GossipSpec::view_size`] — sweep the bounded-view ×
    /// propagation frontier. Requires a `[gossip]` section.
    GossipViewSize,
    /// Overrides [`GossipSpec::rounds_per_wave`]. Requires a `[gossip]`
    /// section.
    GossipRounds,
}

impl Axis {
    fn as_str(&self) -> &'static str {
        match self {
            Axis::MirrorCount => "mirror-count",
            Axis::FaultRate => "fault-rate",
            Axis::RegionalToSmallMbps => "regional-to-small-mbps",
            Axis::GossipViewSize => "gossip-view-size",
            Axis::GossipRounds => "gossip-rounds",
        }
    }

    fn parse(text: &str) -> Result<Self, ScenarioError> {
        match text {
            "mirror-count" => Ok(Axis::MirrorCount),
            "fault-rate" => Ok(Axis::FaultRate),
            "regional-to-small-mbps" => Ok(Axis::RegionalToSmallMbps),
            "gossip-view-size" => Ok(Axis::GossipViewSize),
            "gossip-rounds" => Ok(Axis::GossipRounds),
            _ => invalid(format!(
                "unknown sweep axis `{text}` (expected `mirror-count`, `fault-rate`, \
                 `regional-to-small-mbps`, `gossip-view-size`, or `gossip-rounds`)"
            )),
        }
    }
}

/// One `[[sweep]]` entry: expand the scenario over these values of one
/// axis (cartesian product across entries, in file order).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    pub axis: Axis,
    pub values: Vec<f64>,
}

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    /// Workload: `"video-processing"` or `"text-processing"`.
    pub app: String,
    /// Base of the replication seed stream: replication `r` runs under
    /// fault seed `seed + r`.
    pub seed: u64,
    /// Seeded replications per scenario (the Monte-Carlo width).
    pub replications: u32,
    /// Multiplier on every scripted event time — smoke runs compress a
    /// soak timeline without editing the file.
    pub time_scale: f64,
    /// Register the peer plane in each pull's mesh
    /// ([`ExecutorConfig::peer_sharing`]).
    pub peer_sharing: bool,
    pub testbed: TestbedSpec,
    pub retry: Option<RetrySpec>,
    /// Gossip-based peer discovery (`[gossip]`); `None` keeps the
    /// omniscient snapshot catalog.
    pub gossip: Option<GossipSpec>,
    pub rates: Vec<RateSpec>,
    pub events: Vec<Event>,
    pub arrivals: Vec<ArrivalSpec>,
    pub sweep: Vec<SweepAxis>,
}

// ---------------------------------------------------------------------
// Decoding helpers: strict field access over the parsed Value tree.
// ---------------------------------------------------------------------

fn check_keys(
    table: &BTreeMap<String, Value>,
    allowed: &[&str],
    ctx: &str,
) -> Result<(), ScenarioError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return invalid(format!(
                "unknown key `{key}` in {ctx} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn req_str(table: &BTreeMap<String, Value>, key: &str, ctx: &str) -> Result<String, ScenarioError> {
    match table.get(key) {
        Some(v) => match v.as_str() {
            Some(s) => Ok(s.to_string()),
            None => invalid(format!("`{key}` in {ctx} must be a string")),
        },
        None => invalid(format!("{ctx} is missing required key `{key}`")),
    }
}

fn req_float(table: &BTreeMap<String, Value>, key: &str, ctx: &str) -> Result<f64, ScenarioError> {
    match table.get(key) {
        Some(v) => match v.as_float() {
            Some(x) => Ok(x),
            None => invalid(format!("`{key}` in {ctx} must be a number")),
        },
        None => invalid(format!("{ctx} is missing required key `{key}`")),
    }
}

fn opt_float(
    table: &BTreeMap<String, Value>,
    key: &str,
    ctx: &str,
) -> Result<Option<f64>, ScenarioError> {
    match table.get(key) {
        Some(v) => match v.as_float() {
            Some(x) => Ok(Some(x)),
            None => invalid(format!("`{key}` in {ctx} must be a number")),
        },
        None => Ok(None),
    }
}

fn req_index(
    table: &BTreeMap<String, Value>,
    key: &str,
    ctx: &str,
) -> Result<usize, ScenarioError> {
    match table.get(key) {
        Some(v) => match v.as_int() {
            Some(n) if n >= 0 => Ok(n as usize),
            _ => invalid(format!("`{key}` in {ctx} must be a non-negative integer")),
        },
        None => invalid(format!("{ctx} is missing required key `{key}`")),
    }
}

fn opt_index(
    table: &BTreeMap<String, Value>,
    key: &str,
    ctx: &str,
) -> Result<Option<usize>, ScenarioError> {
    match table.get(key) {
        Some(v) => match v.as_int() {
            Some(n) if n >= 0 => Ok(Some(n as usize)),
            _ => invalid(format!("`{key}` in {ctx} must be a non-negative integer")),
        },
        None => Ok(None),
    }
}

fn opt_bool(
    table: &BTreeMap<String, Value>,
    key: &str,
    ctx: &str,
) -> Result<Option<bool>, ScenarioError> {
    match table.get(key) {
        Some(v) => match v.as_bool() {
            Some(b) => Ok(Some(b)),
            None => invalid(format!("`{key}` in {ctx} must be a boolean")),
        },
        None => Ok(None),
    }
}

fn sub_tables<'t>(
    root: &'t BTreeMap<String, Value>,
    key: &str,
) -> Result<Vec<&'t BTreeMap<String, Value>>, ScenarioError> {
    match root.get(key) {
        None => Ok(Vec::new()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v.as_table() {
                Some(t) => Ok(t),
                None => invalid(format!("`[[{key}]]` entries must be tables")),
            })
            .collect(),
        Some(_) => invalid(format!("`{key}` must be an array of tables (`[[{key}]]`)")),
    }
}

impl Scenario {
    /// Parse and validate a scenario document.
    pub fn parse(input: &str) -> Result<Scenario, ScenarioError> {
        let root = toml::parse(input)?;
        check_keys(
            &root,
            &[
                "name",
                "app",
                "seed",
                "replications",
                "time_scale",
                "peer_sharing",
                "testbed",
                "retry",
                "gossip",
                "rates",
                "events",
                "arrivals",
                "sweep",
            ],
            "the scenario root",
        )?;

        let name = req_str(&root, "name", "the scenario root")?;
        if name.is_empty() {
            return invalid("`name` must be non-empty");
        }
        let app = req_str(&root, "app", "the scenario root")?;
        if !matches!(app.as_str(), "video-processing" | "text-processing") {
            return invalid(format!(
                "unknown app `{app}` (expected `video-processing` or `text-processing`)"
            ));
        }
        let seed = match root.get("seed") {
            Some(v) => match v.as_int() {
                Some(n) if n >= 0 => n as u64,
                _ => return invalid("`seed` must be a non-negative integer"),
            },
            None => 0,
        };
        let replications = match opt_index(&root, "replications", "the scenario root")? {
            Some(0) => return invalid("`replications` must be at least 1"),
            Some(n) => n as u32,
            None => 1,
        };
        let time_scale = opt_float(&root, "time_scale", "the scenario root")?.unwrap_or(1.0);
        if time_scale <= 0.0 {
            return invalid(format!("`time_scale` must be positive, got {time_scale}"));
        }
        let peer_sharing = opt_bool(&root, "peer_sharing", "the scenario root")?.unwrap_or(false);

        let testbed = Self::parse_testbed(&root)?;
        let retry = Self::parse_retry(&root)?;
        let gossip = Self::parse_gossip(&root)?;
        let rates = Self::parse_rates(&root)?;
        let events = Self::parse_events(&root, &testbed)?;
        let arrivals = Self::parse_arrivals(&root)?;
        let sweep = Self::parse_sweep(&root)?;

        let scenario = Scenario {
            name,
            app,
            seed,
            replications,
            time_scale,
            peer_sharing,
            testbed,
            retry,
            gossip,
            rates,
            events,
            arrivals,
            sweep,
        };
        scenario.validate_cross_refs()?;
        Ok(scenario)
    }

    /// Read and parse a scenario file.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    fn parse_testbed(root: &BTreeMap<String, Value>) -> Result<TestbedSpec, ScenarioError> {
        let Some(v) = root.get("testbed") else {
            return Ok(TestbedSpec::default());
        };
        let Some(table) = v.as_table() else {
            return invalid("`testbed` must be a table (`[testbed]`)");
        };
        check_keys(
            table,
            &["base", "calibrate", "mirrors", "regional_to_small_mbps"],
            "[testbed]",
        )?;
        let base = match table.get("base").map(|v| v.as_str()) {
            None => TestbedBase::Paper,
            Some(Some("paper")) => TestbedBase::Paper,
            Some(Some("continuum")) => TestbedBase::Continuum,
            Some(other) => {
                return invalid(format!(
                    "`base` in [testbed] must be `paper` or `continuum`, got {other:?}"
                ))
            }
        };
        let calibrate = opt_bool(table, "calibrate", "[testbed]")?.unwrap_or(true);
        let mirrors = opt_index(table, "mirrors", "[testbed]")?.unwrap_or(0);
        if mirrors > 64 {
            return invalid(format!("`mirrors` in [testbed] is implausibly large ({mirrors})"));
        }
        let regional_to_small_mbps = opt_float(table, "regional_to_small_mbps", "[testbed]")?;
        if let Some(mbps) = regional_to_small_mbps {
            if mbps <= 0.0 {
                return invalid(format!("`regional_to_small_mbps` must be positive, got {mbps}"));
            }
        }
        Ok(TestbedSpec { base, calibrate, mirrors, regional_to_small_mbps })
    }

    fn parse_retry(root: &BTreeMap<String, Value>) -> Result<Option<RetrySpec>, ScenarioError> {
        let Some(v) = root.get("retry") else {
            return Ok(None);
        };
        let Some(table) = v.as_table() else {
            return invalid("`retry` must be a table (`[retry]`)");
        };
        check_keys(table, &["max_attempts", "base_backoff"], "[retry]")?;
        let max_attempts = req_index(table, "max_attempts", "[retry]")?;
        if max_attempts == 0 {
            return invalid("`max_attempts` in [retry] must be at least 1");
        }
        let base_backoff = req_float(table, "base_backoff", "[retry]")?;
        if base_backoff < 0.0 {
            return invalid("`base_backoff` in [retry] must be non-negative");
        }
        Ok(Some(RetrySpec { max_attempts, base_backoff }))
    }

    fn parse_gossip(root: &BTreeMap<String, Value>) -> Result<Option<GossipSpec>, ScenarioError> {
        let Some(v) = root.get("gossip") else {
            return Ok(None);
        };
        let Some(table) = v.as_table() else {
            return invalid("`gossip` must be a table (`[gossip]`)");
        };
        check_keys(table, &["fanout", "view_size", "rounds_per_wave"], "[gossip]")?;
        let fanout = req_index(table, "fanout", "[gossip]")?;
        if fanout == 0 {
            return invalid("`fanout` in [gossip] must be at least 1");
        }
        let view_size = req_index(table, "view_size", "[gossip]")?;
        if view_size == 0 {
            return invalid(
                "`view_size` in [gossip] must be at least 1 (a zero view disables peer \
                 discovery entirely — drop `peer_sharing` instead)",
            );
        }
        let rounds_per_wave = req_index(table, "rounds_per_wave", "[gossip]")?;
        if rounds_per_wave == 0 {
            return invalid("`rounds_per_wave` in [gossip] must be at least 1");
        }
        Ok(Some(GossipSpec { fanout, view_size, rounds_per_wave }))
    }

    fn parse_rates(root: &BTreeMap<String, Value>) -> Result<Vec<RateSpec>, ScenarioError> {
        let mut out = Vec::new();
        for table in sub_tables(root, "rates")? {
            check_keys(table, &["target", "fatal_per_pull", "transient_per_fetch"], "[[rates]]")?;
            let target = Target::parse(&req_str(table, "target", "[[rates]]")?)?;
            let fatal_per_pull = req_float(table, "fatal_per_pull", "[[rates]]")?;
            let transient_per_fetch = req_float(table, "transient_per_fetch", "[[rates]]")?;
            for (key, p) in
                [("fatal_per_pull", fatal_per_pull), ("transient_per_fetch", transient_per_fetch)]
            {
                if !(0.0..=1.0).contains(&p) {
                    return invalid(format!("`{key}` in [[rates]] must be in [0, 1], got {p}"));
                }
            }
            if out.iter().any(|r: &RateSpec| r.target == target) {
                return invalid(format!("duplicate [[rates]] entry for target `{target}`"));
            }
            out.push(RateSpec { target, fatal_per_pull, transient_per_fetch });
        }
        Ok(out)
    }

    fn parse_events(
        root: &BTreeMap<String, Value>,
        testbed: &TestbedSpec,
    ) -> Result<Vec<Event>, ScenarioError> {
        let mut out = Vec::new();
        for table in sub_tables(root, "events")? {
            let kind = req_str(table, "kind", "[[events]]")?;
            let ctx = format!("[[events]] kind = \"{kind}\"");
            let device = |key: &str| -> Result<usize, ScenarioError> {
                let d = req_index(table, key, &ctx)?;
                if d >= testbed.base.device_count() {
                    return invalid(format!(
                        "`{key}` = {d} in {ctx} is out of range: the {} testbed has {} devices",
                        testbed.base.as_str(),
                        testbed.base.device_count()
                    ));
                }
                Ok(d)
            };
            let window = || -> Result<(f64, f64), ScenarioError> {
                let start = req_float(table, "start", &ctx)?;
                let duration = req_float(table, "duration", &ctx)?;
                if start < 0.0 {
                    return invalid(format!("`start` in {ctx} must be non-negative, got {start}"));
                }
                if duration <= 0.0 {
                    return invalid(format!(
                        "`duration` in {ctx} must be positive, got {duration} \
                         (zero-duration events never fire — delete the entry instead)"
                    ));
                }
                Ok((start, duration))
            };
            let at = || -> Result<f64, ScenarioError> {
                let at = req_float(table, "at", &ctx)?;
                if at < 0.0 {
                    return invalid(format!("`at` in {ctx} must be non-negative, got {at}"));
                }
                Ok(at)
            };
            let event = match kind.as_str() {
                "outage" => {
                    check_keys(table, &["kind", "target", "start", "duration"], &ctx)?;
                    let target = Target::parse(&req_str(table, "target", &ctx)?)?;
                    let (start, duration) = window()?;
                    Event::Outage { target, start, duration }
                }
                "degrade" => {
                    check_keys(table, &["kind", "target", "start", "duration", "factor"], &ctx)?;
                    let target = Target::parse(&req_str(table, "target", &ctx)?)?;
                    let (start, duration) = window()?;
                    let factor = req_float(table, "factor", &ctx)?;
                    if factor <= 0.0 || factor >= 1.0 {
                        return invalid(format!(
                            "`factor` in {ctx} must be in (0, 1), got {factor} \
                             (use kind = \"outage\" for a full outage)"
                        ));
                    }
                    Event::Degrade { target, start, duration, factor }
                }
                "peer-uplink-kill" => {
                    check_keys(table, &["kind", "device", "start", "duration"], &ctx)?;
                    let device = device("device")?;
                    let (start, duration) = window()?;
                    Event::PeerUplinkKill { device, start, duration }
                }
                "cache-pressure" => {
                    check_keys(table, &["kind", "device", "at", "keep_mb"], &ctx)?;
                    let device = device("device")?;
                    let at = at()?;
                    let keep_mb = req_float(table, "keep_mb", &ctx)?;
                    if keep_mb < 0.0 {
                        return invalid(format!(
                            "`keep_mb` in {ctx} must be non-negative, got {keep_mb}"
                        ));
                    }
                    Event::CachePressure { device, at, keep_mb }
                }
                "delete-tag" => {
                    check_keys(table, &["kind", "at", "repository", "tag"], &ctx)?;
                    let repository = req_str(table, "repository", &ctx)?;
                    let tag = req_str(table, "tag", &ctx)?;
                    if repository.is_empty() || tag.is_empty() {
                        return invalid(format!("`repository`/`tag` in {ctx} must be non-empty"));
                    }
                    Event::DeleteTag { at: at()?, repository, tag }
                }
                "registry-gc" => {
                    check_keys(table, &["kind", "at"], &ctx)?;
                    Event::RegistryGc { at: at()? }
                }
                other => {
                    return invalid(format!(
                        "unknown event kind `{other}` (expected `outage`, `degrade`, \
                         `peer-uplink-kill`, `cache-pressure`, `delete-tag`, or `registry-gc`)"
                    ))
                }
            };
            out.push(event);
        }
        Ok(out)
    }

    fn parse_arrivals(root: &BTreeMap<String, Value>) -> Result<Vec<ArrivalSpec>, ScenarioError> {
        let mut out = Vec::new();
        for table in sub_tables(root, "arrivals")? {
            let model = req_str(table, "model", "[[arrivals]]")?;
            let ctx = format!("[[arrivals]] model = \"{model}\"");
            let count_warmup = |count: usize| -> Result<(usize, usize), ScenarioError> {
                if count == 0 {
                    return invalid(format!("`count` in {ctx} must be at least 1"));
                }
                let warmup = opt_index(table, "warmup", &ctx)?.unwrap_or(0);
                if warmup >= count {
                    return invalid(format!(
                        "`warmup` = {warmup} in {ctx} must be below `count` = {count}: at least \
                         one arrival has to land in the measurement phase"
                    ));
                }
                Ok((count, warmup))
            };
            let spec = match model.as_str() {
                "poisson" => {
                    check_keys(table, &["model", "rate", "count", "warmup"], &ctx)?;
                    let rate = req_float(table, "rate", &ctx)?;
                    if !(rate > 0.0 && rate.is_finite()) {
                        return invalid(format!(
                            "`rate` in {ctx} must be a positive finite arrival rate, got {rate}"
                        ));
                    }
                    let (count, warmup) = count_warmup(req_index(table, "count", &ctx)?)?;
                    ArrivalSpec { model: ArrivalModel::Poisson { rate }, count, warmup }
                }
                "deterministic" => {
                    check_keys(table, &["model", "interval", "count", "warmup"], &ctx)?;
                    let interval = req_float(table, "interval", &ctx)?;
                    if !(interval > 0.0 && interval.is_finite()) {
                        return invalid(format!(
                            "`interval` in {ctx} must be a positive finite gap, got {interval}"
                        ));
                    }
                    let (count, warmup) = count_warmup(req_index(table, "count", &ctx)?)?;
                    ArrivalSpec { model: ArrivalModel::Deterministic { interval }, count, warmup }
                }
                "trace" => {
                    check_keys(table, &["model", "times", "warmup"], &ctx)?;
                    let Some(values) = table.get("times").and_then(|v| v.as_array()) else {
                        return invalid(format!("`times` in {ctx} must be an array of numbers"));
                    };
                    let times: Vec<f64> = values
                        .iter()
                        .map(|v| {
                            v.as_float().ok_or_else(|| {
                                ScenarioError::Invalid(format!("`times` in {ctx} must be numbers"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if times.is_empty() {
                        return invalid(format!("`times` in {ctx} must be non-empty"));
                    }
                    if times.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
                        return invalid(format!(
                            "`times` in {ctx} must be non-negative finite seconds"
                        ));
                    }
                    if times.windows(2).any(|w| w[1] < w[0]) {
                        return invalid(format!("`times` in {ctx} must be sorted ascending"));
                    }
                    let (count, warmup) = count_warmup(times.len())?;
                    ArrivalSpec { model: ArrivalModel::Trace { times }, count, warmup }
                }
                other => {
                    return invalid(format!(
                        "unknown arrival model `{other}` (expected `poisson`, `deterministic`, \
                         or `trace`)"
                    ))
                }
            };
            out.push(spec);
        }
        Ok(out)
    }

    fn parse_sweep(root: &BTreeMap<String, Value>) -> Result<Vec<SweepAxis>, ScenarioError> {
        let mut out: Vec<SweepAxis> = Vec::new();
        for table in sub_tables(root, "sweep")? {
            check_keys(table, &["axis", "values"], "[[sweep]]")?;
            let axis = Axis::parse(&req_str(table, "axis", "[[sweep]]")?)?;
            let Some(values) = table.get("values").and_then(|v| v.as_array()) else {
                return invalid("`values` in [[sweep]] must be an array of numbers");
            };
            let values: Vec<f64> = values
                .iter()
                .map(|v| {
                    v.as_float().ok_or_else(|| {
                        ScenarioError::Invalid("`values` in [[sweep]] must be numbers".into())
                    })
                })
                .collect::<Result<_, _>>()?;
            if values.is_empty() {
                return invalid(format!("sweep axis `{}` has no values", axis.as_str()));
            }
            for &v in &values {
                let ok = match axis {
                    Axis::MirrorCount => v >= 0.0 && v.fract() == 0.0 && v <= 64.0,
                    Axis::FaultRate => (0.0..=1.0).contains(&v),
                    Axis::RegionalToSmallMbps => v > 0.0,
                    Axis::GossipViewSize => v >= 1.0 && v.fract() == 0.0 && v <= 4096.0,
                    Axis::GossipRounds => v >= 1.0 && v.fract() == 0.0 && v <= 256.0,
                };
                if !ok {
                    return invalid(format!(
                        "sweep axis `{}` has an out-of-range value {v}",
                        axis.as_str()
                    ));
                }
            }
            if out.iter().any(|s| s.axis == axis) {
                return invalid(format!("duplicate sweep axis `{}`", axis.as_str()));
            }
            out.push(SweepAxis { axis, values });
        }
        Ok(out)
    }

    /// Checks that need the whole document: mirror references vs. the
    /// mirror count, and overlapping same-target dark windows.
    fn validate_cross_refs(&self) -> Result<(), ScenarioError> {
        // Gossip discovery only does anything on the peer plane; a
        // `[gossip]` section without `peer_sharing` is dead config and
        // almost certainly a mistake.
        if self.gossip.is_some() && !self.peer_sharing {
            return invalid("[gossip] requires `peer_sharing = true`");
        }
        // The gossip sweep axes mutate the `[gossip]` section — without
        // one there is nothing to sweep.
        for sweep in &self.sweep {
            if matches!(sweep.axis, Axis::GossipViewSize | Axis::GossipRounds)
                && self.gossip.is_none()
            {
                return invalid(format!(
                    "sweep axis `{}` requires a [gossip] section",
                    sweep.axis.as_str()
                ));
            }
        }
        // Mirror targets must exist on every expanded scenario: against
        // the swept counts when a mirror-count axis exists, else against
        // the [testbed] count.
        let max_mirrors = self
            .sweep
            .iter()
            .find(|s| s.axis == Axis::MirrorCount)
            .map(|s| s.values.iter().fold(0usize, |acc, &v| acc.max(v as usize)))
            .unwrap_or(self.testbed.mirrors);
        let check_target = |target: &Target, ctx: &str| -> Result<(), ScenarioError> {
            if let Target::Mirror(k) = target {
                if *k >= max_mirrors {
                    return invalid(format!(
                        "{ctx} names `mirror-{k}` but the scenario registers only {max_mirrors} \
                         mirror(s) (`mirrors` in [testbed], or the `mirror-count` sweep)"
                    ));
                }
            }
            Ok(())
        };
        for rate in &self.rates {
            check_target(&rate.target, "[[rates]]")?;
        }
        // Dark windows on the same source must not overlap: two scripted
        // total outages over one interval is almost always a typo (use a
        // single longer window), and rejecting it keeps "the outage" of
        // a window unambiguous in reports. Degradations may overlap
        // (they stack multiplicatively).
        let mut dark: Vec<(RegistryId, f64, f64, String)> = Vec::new();
        for event in &self.events {
            match event {
                Event::Outage { target, start, duration } => {
                    check_target(target, "[[events]]")?;
                    dark.push((target.registry_id(), *start, start + duration, target.to_string()));
                }
                Event::Degrade { target, .. } => check_target(target, "[[events]]")?,
                Event::PeerUplinkKill { device, start, duration } => {
                    dark.push((
                        peer_source_id(DeviceId(*device)),
                        *start,
                        start + duration,
                        format!("device {device}'s peer uplink"),
                    ));
                }
                _ => {}
            }
        }
        dark.sort_by(|a, b| (a.0 .0, a.1).partial_cmp(&(b.0 .0, b.1)).expect("finite times"));
        for pair in dark.windows(2) {
            let (id_a, _, end_a, ref label) = pair[0];
            let (id_b, start_b, _, _) = pair[1];
            if id_a == id_b && start_b < end_a {
                return invalid(format!(
                    "overlapping dark windows on {label}: one ends at {end_a} s, the next starts \
                     at {start_b} s — merge them into a single window"
                ));
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Canonical serialization.
    // -----------------------------------------------------------------

    /// Serialize in canonical form: fixed key order, floats in Rust's
    /// shortest exact representation. `parse(s.to_toml()) == s`.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let f = |x: f64| toml::format_value(&Value::Float(x));
        let q = |s: &str| toml::format_value(&Value::Str(s.to_string()));
        writeln!(out, "name = {}", q(&self.name)).unwrap();
        writeln!(out, "app = {}", q(&self.app)).unwrap();
        writeln!(out, "seed = {}", self.seed).unwrap();
        writeln!(out, "replications = {}", self.replications).unwrap();
        writeln!(out, "time_scale = {}", f(self.time_scale)).unwrap();
        writeln!(out, "peer_sharing = {}", self.peer_sharing).unwrap();
        writeln!(out, "\n[testbed]").unwrap();
        writeln!(out, "base = {}", q(self.testbed.base.as_str())).unwrap();
        writeln!(out, "calibrate = {}", self.testbed.calibrate).unwrap();
        writeln!(out, "mirrors = {}", self.testbed.mirrors).unwrap();
        if let Some(mbps) = self.testbed.regional_to_small_mbps {
            writeln!(out, "regional_to_small_mbps = {}", f(mbps)).unwrap();
        }
        if let Some(retry) = &self.retry {
            writeln!(out, "\n[retry]").unwrap();
            writeln!(out, "max_attempts = {}", retry.max_attempts).unwrap();
            writeln!(out, "base_backoff = {}", f(retry.base_backoff)).unwrap();
        }
        if let Some(gossip) = &self.gossip {
            writeln!(out, "\n[gossip]").unwrap();
            writeln!(out, "fanout = {}", gossip.fanout).unwrap();
            writeln!(out, "view_size = {}", gossip.view_size).unwrap();
            writeln!(out, "rounds_per_wave = {}", gossip.rounds_per_wave).unwrap();
        }
        for rate in &self.rates {
            writeln!(out, "\n[[rates]]").unwrap();
            writeln!(out, "target = {}", q(&rate.target.to_string())).unwrap();
            writeln!(out, "fatal_per_pull = {}", f(rate.fatal_per_pull)).unwrap();
            writeln!(out, "transient_per_fetch = {}", f(rate.transient_per_fetch)).unwrap();
        }
        for event in &self.events {
            writeln!(out, "\n[[events]]").unwrap();
            match event {
                Event::Outage { target, start, duration } => {
                    writeln!(out, "kind = \"outage\"").unwrap();
                    writeln!(out, "target = {}", q(&target.to_string())).unwrap();
                    writeln!(out, "start = {}", f(*start)).unwrap();
                    writeln!(out, "duration = {}", f(*duration)).unwrap();
                }
                Event::Degrade { target, start, duration, factor } => {
                    writeln!(out, "kind = \"degrade\"").unwrap();
                    writeln!(out, "target = {}", q(&target.to_string())).unwrap();
                    writeln!(out, "start = {}", f(*start)).unwrap();
                    writeln!(out, "duration = {}", f(*duration)).unwrap();
                    writeln!(out, "factor = {}", f(*factor)).unwrap();
                }
                Event::PeerUplinkKill { device, start, duration } => {
                    writeln!(out, "kind = \"peer-uplink-kill\"").unwrap();
                    writeln!(out, "device = {device}").unwrap();
                    writeln!(out, "start = {}", f(*start)).unwrap();
                    writeln!(out, "duration = {}", f(*duration)).unwrap();
                }
                Event::CachePressure { device, at, keep_mb } => {
                    writeln!(out, "kind = \"cache-pressure\"").unwrap();
                    writeln!(out, "device = {device}").unwrap();
                    writeln!(out, "at = {}", f(*at)).unwrap();
                    writeln!(out, "keep_mb = {}", f(*keep_mb)).unwrap();
                }
                Event::DeleteTag { at, repository, tag } => {
                    writeln!(out, "kind = \"delete-tag\"").unwrap();
                    writeln!(out, "at = {}", f(*at)).unwrap();
                    writeln!(out, "repository = {}", q(repository)).unwrap();
                    writeln!(out, "tag = {}", q(tag)).unwrap();
                }
                Event::RegistryGc { at } => {
                    writeln!(out, "kind = \"registry-gc\"").unwrap();
                    writeln!(out, "at = {}", f(*at)).unwrap();
                }
            }
        }
        for arrival in &self.arrivals {
            writeln!(out, "\n[[arrivals]]").unwrap();
            match &arrival.model {
                ArrivalModel::Poisson { rate } => {
                    writeln!(out, "model = \"poisson\"").unwrap();
                    writeln!(out, "rate = {}", f(*rate)).unwrap();
                    writeln!(out, "count = {}", arrival.count).unwrap();
                }
                ArrivalModel::Deterministic { interval } => {
                    writeln!(out, "model = \"deterministic\"").unwrap();
                    writeln!(out, "interval = {}", f(*interval)).unwrap();
                    writeln!(out, "count = {}", arrival.count).unwrap();
                }
                ArrivalModel::Trace { times } => {
                    writeln!(out, "model = \"trace\"").unwrap();
                    let times: Vec<String> = times.iter().map(|&t| f(t)).collect();
                    writeln!(out, "times = [{}]", times.join(", ")).unwrap();
                }
            }
            writeln!(out, "warmup = {}", arrival.warmup).unwrap();
        }
        for sweep in &self.sweep {
            writeln!(out, "\n[[sweep]]").unwrap();
            writeln!(out, "axis = {}", q(sweep.axis.as_str())).unwrap();
            let values: Vec<String> = sweep.values.iter().map(|&v| f(v)).collect();
            writeln!(out, "values = [{}]", values.join(", ")).unwrap();
        }
        out
    }

    // -----------------------------------------------------------------
    // Sweep expansion.
    // -----------------------------------------------------------------

    /// Expand the sweep axes into the cartesian grid of concrete
    /// scenarios (file order: the first axis varies slowest, matching
    /// the examples' loop nesting). A sweep-free scenario expands to
    /// itself. Expanded scenarios carry `name/axis=value` names and an
    /// empty sweep.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut grid = vec![Scenario { sweep: Vec::new(), ..self.clone() }];
        for axis in &self.sweep {
            grid = grid
                .iter()
                .flat_map(|base| axis.values.iter().map(|&v| base.with_axis(axis.axis, v)))
                .collect();
        }
        grid
    }

    fn with_axis(&self, axis: Axis, value: f64) -> Scenario {
        let mut s = self.clone();
        let label = if value.fract() == 0.0 && value.abs() < 1e15 {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        };
        s.name = format!("{}/{}={}", self.name, axis.as_str(), label);
        match axis {
            Axis::MirrorCount => s.testbed.mirrors = value as usize,
            Axis::FaultRate => {
                let rate = RateSpec {
                    target: Target::Regional,
                    fatal_per_pull: value,
                    transient_per_fetch: value,
                };
                match s.rates.iter_mut().find(|r| r.target == Target::Regional) {
                    Some(entry) => *entry = rate,
                    None => s.rates.push(rate),
                }
            }
            Axis::RegionalToSmallMbps => s.testbed.regional_to_small_mbps = Some(value),
            Axis::GossipViewSize => {
                s.gossip.as_mut().expect("validated: gossip axes require [gossip]").view_size =
                    value as usize;
            }
            Axis::GossipRounds => {
                s.gossip
                    .as_mut()
                    .expect("validated: gossip axes require [gossip]")
                    .rounds_per_wave = value as usize;
            }
        }
        s
    }

    // -----------------------------------------------------------------
    // Building the experiment.
    // -----------------------------------------------------------------

    /// A scripted time in executor seconds (`time_scale` applied).
    fn scaled(&self, t: f64) -> Seconds {
        Seconds::new(t * self.time_scale)
    }

    /// The fault model the scenario scripts: per-source rates, outage /
    /// degradation / uplink-kill windows (times scaled), and the retry
    /// policy.
    pub fn fault_model(&self) -> FaultModel {
        let mut model = FaultModel::default();
        for rate in &self.rates {
            model = model.with_source(
                rate.target.registry_id(),
                FaultRates {
                    fatal_per_pull: rate.fatal_per_pull,
                    transient_per_fetch: rate.transient_per_fetch,
                },
            );
        }
        for event in &self.events {
            match event {
                Event::Outage { target, start, duration } => {
                    model = model.with_window(OutageWindow::dark(
                        target.registry_id(),
                        self.scaled(*start),
                        self.scaled(*duration),
                    ));
                }
                Event::Degrade { target, start, duration, factor } => {
                    model = model.with_window(OutageWindow::degraded(
                        target.registry_id(),
                        self.scaled(*start),
                        self.scaled(*duration),
                        *factor,
                    ));
                }
                Event::PeerUplinkKill { device, start, duration } => {
                    model = model.with_window(OutageWindow::dark(
                        peer_source_id(DeviceId(*device)),
                        self.scaled(*start),
                        self.scaled(*duration),
                    ));
                }
                _ => {}
            }
        }
        if let Some(retry) = &self.retry {
            model = model.with_retry(RetryPolicy {
                max_attempts: retry.max_attempts,
                base_backoff: Seconds::new(retry.base_backoff),
                ..Default::default()
            });
        }
        model
    }

    /// Build the scenario's testbed. `calibrator` is applied when
    /// `[testbed] calibrate = true` — pass deep-core's `calibrate` (the
    /// closure indirection keeps this crate independent of deep-core),
    /// or `|_| {}` for the uncalibrated defaults.
    pub fn build_testbed_with(&self, calibrator: impl FnOnce(&mut Testbed)) -> Testbed {
        let mut params = TestbedParams::default();
        if let Some(mbps) = self.testbed.regional_to_small_mbps {
            params.regional_to_small = Bandwidth::megabytes_per_sec(mbps);
        }
        let mut tb = match self.testbed.base {
            TestbedBase::Paper => Testbed::with_params(params),
            TestbedBase::Continuum => Testbed::continuum_with_params(params),
        };
        if self.testbed.calibrate {
            calibrator(&mut tb);
        }
        for k in 0..self.testbed.mirrors {
            tb.add_regional_mirror(
                Bandwidth::megabytes_per_sec(10.0 + k as f64),
                Seconds::new(5.0),
            );
        }
        tb.fault_model = self.fault_model();
        tb
    }

    /// The chaos-event timeline for
    /// [`deep_simulator::execute_with_events`] (times scaled; outages /
    /// degradations are *not* chaos events — they ride the fault model).
    pub fn chaos_events(&self) -> Vec<ChaosEvent> {
        self.events
            .iter()
            .filter_map(|event| match event {
                Event::CachePressure { device, at, keep_mb } => Some(ChaosEvent::cache_pressure(
                    self.scaled(*at),
                    DeviceId(*device),
                    DataSize::megabytes(*keep_mb),
                )),
                Event::DeleteTag { at, repository, tag } => {
                    Some(ChaosEvent::delete_tag(self.scaled(*at), repository, tag))
                }
                Event::RegistryGc { at } => Some(ChaosEvent::registry_gc(self.scaled(*at))),
                _ => None,
            })
            .collect()
    }

    /// Executor configuration for replication `r` of the seed stream:
    /// fault injection iff the scenario scripts any fault, under seed
    /// `seed + r`.
    pub fn executor_config(&self, replication: u32) -> ExecutorConfig {
        ExecutorConfig {
            fault_injection: !self.fault_model().is_zero(),
            fault_seed: self.seed.wrapping_add(replication as u64),
            peer_sharing: self.peer_sharing,
            peer_discovery: self.peer_discovery(),
            ..Default::default()
        }
    }

    /// The discovery mode the `[gossip]` section asks for —
    /// [`PeerDiscovery::Snapshot`] without one.
    pub fn peer_discovery(&self) -> PeerDiscovery {
        match &self.gossip {
            Some(g) => PeerDiscovery::Gossip {
                fanout: g.fanout as u32,
                view_size: g.view_size as u32,
                rounds_per_wave: g.rounds_per_wave as u32,
            },
            None => PeerDiscovery::Snapshot,
        }
    }

    /// The scenario's workload.
    pub fn application(&self) -> Application {
        match self.app.as_str() {
            "video-processing" => apps::video_processing(),
            "text-processing" => apps::text_processing(),
            other => unreachable!("app `{other}` was validated at parse time"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOAK: &str = r#"
name = "soak"
app = "video-processing"
seed = 7
replications = 3
time_scale = 0.5
peer_sharing = true

[testbed]
base = "continuum"
calibrate = false
mirrors = 2

[retry]
max_attempts = 4
base_backoff = 10.0

[[rates]]
target = "regional"
fatal_per_pull = 0.1
transient_per_fetch = 0.2

[[events]]
kind = "outage"
target = "mirror-1"
start = 100.0
duration = 60.0

[[events]]
kind = "degrade"
target = "regional"
start = 0.0
duration = 400.0
factor = 0.5

[[events]]
kind = "peer-uplink-kill"
device = 2
start = 50.0
duration = 25.0

[[events]]
kind = "cache-pressure"
device = 0
at = 200.0
keep_mb = 512.0

[[events]]
kind = "delete-tag"
at = 10.0
repository = "aau/vp-transcode"
tag = "amd64"

[[events]]
kind = "registry-gc"
at = 20.0

[[arrivals]]
model = "poisson"
rate = 0.004
count = 5
warmup = 1

[[arrivals]]
model = "deterministic"
interval = 250.0
count = 3
warmup = 0

[[arrivals]]
model = "trace"
times = [0.0, 30.0, 30.0]
warmup = 1
"#;

    #[test]
    fn parses_the_full_schema() {
        let s = Scenario::parse(SOAK).unwrap();
        assert_eq!(s.name, "soak");
        assert_eq!(s.seed, 7);
        assert_eq!(s.replications, 3);
        assert_eq!(s.time_scale, 0.5);
        assert!(s.peer_sharing);
        assert_eq!(s.testbed.base, TestbedBase::Continuum);
        assert!(!s.testbed.calibrate);
        assert_eq!(s.testbed.mirrors, 2);
        assert_eq!(s.retry.as_ref().unwrap().max_attempts, 4);
        assert_eq!(s.rates.len(), 1);
        assert_eq!(s.events.len(), 6);
        assert_eq!(s.arrivals.len(), 3);
        assert_eq!(s.arrivals[0].model, ArrivalModel::Poisson { rate: 0.004 });
        assert_eq!((s.arrivals[0].count, s.arrivals[0].warmup), (5, 1));
        assert_eq!(s.arrivals[1].model, ArrivalModel::Deterministic { interval: 250.0 });
        // Trace streams derive their count from the list (simultaneous
        // arrivals are legal — the queue absorbs them).
        assert_eq!(s.arrivals[2].model, ArrivalModel::Trace { times: vec![0.0, 30.0, 30.0] });
        assert_eq!((s.arrivals[2].count, s.arrivals[2].warmup), (3, 1));
        assert!(s.sweep.is_empty());
    }

    #[test]
    fn round_trips_through_canonical_toml() {
        let s = Scenario::parse(SOAK).unwrap();
        let text = s.to_toml();
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, s);
        // Canonical form is a fixed point.
        assert_eq!(back.to_toml(), text);
    }

    #[test]
    fn fault_model_carries_scaled_windows_and_rates() {
        let s = Scenario::parse(SOAK).unwrap();
        let model = s.fault_model();
        let rates = model.rates(RegistryId(1));
        assert_eq!(rates.fatal_per_pull, 0.1);
        assert_eq!(rates.transient_per_fetch, 0.2);
        assert_eq!(model.retry.max_attempts, 4);
        // time_scale = 0.5: the mirror-1 outage [100, 160) → [50, 80).
        let mirror1 = RegistryId(REGISTRY_MIRROR_BASE.0 + 1);
        assert!(model.dark_at(mirror1, Seconds::new(50.0)));
        assert!(!model.dark_at(mirror1, Seconds::new(80.0)));
        assert!(!model.dark_at(mirror1, Seconds::new(49.9)));
        // The degrade window halves the regional's rate over [0, 200).
        assert!((model.slowdown_at(RegistryId(1), Seconds::new(10.0)) - 2.0).abs() < 1e-12);
        // The uplink kill darkens the cloud's peer source over [25, 37.5).
        assert!(model.dark_at(peer_source_id(DeviceId(2)), Seconds::new(30.0)));
        assert!(!model.dark_at(peer_source_id(DeviceId(2)), Seconds::new(40.0)));
    }

    #[test]
    fn chaos_events_are_scaled_and_ordered_as_written() {
        let s = Scenario::parse(SOAK).unwrap();
        let events = s.chaos_events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            ChaosEvent::cache_pressure(
                Seconds::new(100.0),
                DeviceId(0),
                DataSize::megabytes(512.0)
            )
        );
        assert_eq!(
            events[1],
            ChaosEvent::delete_tag(Seconds::new(5.0), "aau/vp-transcode", "amd64")
        );
        assert_eq!(events[2], ChaosEvent::registry_gc(Seconds::new(10.0)));
    }

    #[test]
    fn executor_config_tracks_the_seed_stream_and_fault_presence() {
        let s = Scenario::parse(SOAK).unwrap();
        let cfg = s.executor_config(2);
        assert!(cfg.fault_injection);
        assert_eq!(cfg.fault_seed, 9);
        assert!(cfg.peer_sharing);
        let quiet = Scenario::parse("name = \"quiet\"\napp = \"text-processing\"\n").unwrap();
        assert!(!quiet.executor_config(0).fault_injection);
        assert_eq!(quiet.replications, 1);
        assert_eq!(quiet.time_scale, 1.0);
    }

    #[test]
    fn builds_the_testbed_with_mirrors_and_fault_model() {
        let s = Scenario::parse(SOAK).unwrap();
        let mut called = false;
        let tb = s.build_testbed_with(|_| called = true);
        assert!(!called, "calibrate = false skips the calibrator");
        assert_eq!(tb.devices.len(), 3, "continuum base");
        assert_eq!(tb.mirrors.len(), 2);
        assert!(!tb.fault_model.is_zero());
        let calibrated = Scenario::parse(
            "name = \"c\"\napp = \"text-processing\"\n[testbed]\ncalibrate = true\n",
        )
        .unwrap();
        let mut called = false;
        calibrated.build_testbed_with(|_| called = true);
        assert!(called);
    }

    #[test]
    fn regional_to_small_override_applies() {
        let s = Scenario::parse(
            "name = \"bw\"\napp = \"text-processing\"\n[testbed]\ncalibrate = false\nregional_to_small_mbps = 4.0\n",
        )
        .unwrap();
        let tb = s.build_testbed_with(|_| {});
        assert_eq!(tb.params.regional_to_small, Bandwidth::megabytes_per_sec(4.0));
    }

    #[test]
    fn expand_is_the_cartesian_grid_in_file_order() {
        let s = Scenario::parse(
            r#"
name = "grid"
app = "text-processing"

[[sweep]]
axis = "mirror-count"
values = [0, 2]

[[sweep]]
axis = "fault-rate"
values = [0.0, 0.1, 0.4]
"#,
        )
        .unwrap();
        let grid = s.expand();
        assert_eq!(grid.len(), 6);
        // First axis varies slowest.
        assert_eq!(grid[0].testbed.mirrors, 0);
        assert_eq!(grid[0].rates[0].fatal_per_pull, 0.0);
        assert_eq!(grid[1].rates[0].fatal_per_pull, 0.1);
        assert_eq!(grid[3].testbed.mirrors, 2);
        assert_eq!(grid[5].rates[0].transient_per_fetch, 0.4);
        assert_eq!(grid[5].name, "grid/mirror-count=2/fault-rate=0.4");
        assert!(grid.iter().all(|g| g.sweep.is_empty()));
        // A sweep-free scenario expands to itself.
        let quiet = Scenario::parse("name = \"q\"\napp = \"text-processing\"\n").unwrap();
        assert_eq!(quiet.expand(), vec![quiet]);
    }

    #[test]
    fn hostile_inputs_are_rejected_with_useful_errors() {
        let expect = |doc: &str, needle: &str| {
            let err = Scenario::parse(doc).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "error for {doc:?} was {msg:?}, wanted {needle:?}");
        };
        let base = "name = \"x\"\napp = \"text-processing\"\n";
        // Unknown registry / target ids.
        expect(
            &format!("{base}[[rates]]\ntarget = \"dockerhub\"\nfatal_per_pull = 0.1\ntransient_per_fetch = 0.0\n"),
            "unknown target `dockerhub`",
        );
        expect(
            &format!("{base}[[events]]\nkind = \"outage\"\ntarget = \"mirror-3\"\nstart = 0.0\nduration = 10.0\n"),
            "only 0 mirror(s)",
        );
        // Zero-duration events.
        expect(
            &format!("{base}[[events]]\nkind = \"outage\"\ntarget = \"regional\"\nstart = 5.0\nduration = 0.0\n"),
            "must be positive",
        );
        // Overlapping dark windows on one target.
        expect(
            &format!(
                "{base}[[events]]\nkind = \"outage\"\ntarget = \"regional\"\nstart = 0.0\nduration = 100.0\n\
                 [[events]]\nkind = \"outage\"\ntarget = \"regional\"\nstart = 50.0\nduration = 100.0\n"
            ),
            "overlapping dark windows",
        );
        // Unknown keys anywhere.
        expect(&format!("{base}typo = 1\n"), "unknown key `typo`");
        expect(&format!("{base}[testbed]\nbase = \"paper\"\nmirors = 2\n"), "unknown key `mirors`");
        // Out-of-range scalars.
        expect(&format!("{base}time_scale = 0.0"), "must be positive");
        expect(&format!("{base}replications = 0"), "at least 1");
        expect(
            &format!("{base}[[rates]]\ntarget = \"hub\"\nfatal_per_pull = 1.5\ntransient_per_fetch = 0.0\n"),
            "must be in [0, 1]",
        );
        expect(
            &format!("{base}[[events]]\nkind = \"degrade\"\ntarget = \"hub\"\nstart = 0.0\nduration = 1.0\nfactor = 1.0\n"),
            "must be in (0, 1)",
        );
        expect(
            &format!("{base}[[events]]\nkind = \"cache-pressure\"\ndevice = 5\nat = 0.0\nkeep_mb = 0.0\n"),
            "out of range",
        );
        expect(
            &format!("{base}[[sweep]]\naxis = \"warp\"\nvalues = [1.0]\n"),
            "unknown sweep axis",
        );
        // Unknown app / missing name.
        expect("name = \"x\"\napp = \"mining\"\n", "unknown app");
        expect("app = \"text-processing\"\n", "missing required key `name`");
        // Arrival streams: unknown model, degenerate laws, warmup that
        // swallows the measurement phase, unsorted traces.
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"bursty\"\ncount = 2\n"),
            "unknown arrival model",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"poisson\"\nrate = 0.0\ncount = 2\n"),
            "must be a positive finite arrival rate",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"deterministic\"\ninterval = -5.0\ncount = 2\n"),
            "must be a positive finite gap",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"poisson\"\nrate = 0.1\ncount = 0\n"),
            "must be at least 1",
        );
        expect(
            &format!(
                "{base}[[arrivals]]\nmodel = \"poisson\"\nrate = 0.1\ncount = 3\nwarmup = 3\n"
            ),
            "must be below `count`",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"trace\"\ntimes = []\n"),
            "must be non-empty",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"trace\"\ntimes = [10.0, 5.0]\n"),
            "must be sorted ascending",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"trace\"\ntimes = [-1.0, 5.0]\n"),
            "must be non-negative",
        );
        expect(
            &format!("{base}[[arrivals]]\nmodel = \"trace\"\ntimes = [0.0]\ncount = 1\n"),
            "unknown key `count`",
        );
    }

    #[test]
    fn adjacent_dark_windows_do_not_overlap() {
        // Half-open windows: [0, 100) then [100, 200) is legal — the
        // source clears and darkens again on the same tick.
        let s = Scenario::parse(
            r#"
name = "adjacent"
app = "text-processing"

[[events]]
kind = "outage"
target = "regional"
start = 0.0
duration = 100.0

[[events]]
kind = "outage"
target = "regional"
start = 100.0
duration = 100.0
"#,
        );
        assert!(s.is_ok(), "{s:?}");
        // Same interval on *different* targets is fine too.
        let t = Scenario::parse(
            r#"
name = "correlated"
app = "text-processing"

[testbed]
mirrors = 1

[[events]]
kind = "outage"
target = "regional"
start = 0.0
duration = 100.0

[[events]]
kind = "outage"
target = "mirror-0"
start = 50.0
duration = 100.0
"#,
        );
        assert!(t.is_ok(), "{t:?}");
    }

    #[test]
    fn mirror_targets_validate_against_the_sweep_maximum() {
        let s = Scenario::parse(
            r#"
name = "swept"
app = "text-processing"

[[rates]]
target = "mirror-1"
fatal_per_pull = 0.1
transient_per_fetch = 0.0

[[sweep]]
axis = "mirror-count"
values = [0, 2]
"#,
        );
        assert!(s.is_ok(), "mirror-1 exists at the sweep maximum: {s:?}");
    }
}
