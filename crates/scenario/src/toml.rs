//! A hand-rolled parser for the TOML subset scenario files use.
//!
//! The workspace vendors no TOML crate, and scenario files only need a
//! deliberately small slice of the format: comments, bare keys, basic
//! strings, integers, floats, booleans, single-line arrays, `[table]`
//! headers, and `[[array-of-tables]]` headers. Everything else —
//! dotted keys, inline tables, multi-line strings, dates — is rejected
//! with a line-numbered error, which doubles as the hostile-input
//! surface the scenario proptests hammer.
//!
//! The serializer emits a canonical form (sorted keys inside tables,
//! floats via Rust's shortest-round-trip formatting), so
//! parse → serialize → parse is the identity on the [`Value`] tree.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
    Table(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric coercion: scenario quantities (seconds, rates, sizes)
    /// accept `10` and `10.0` interchangeably.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// A parse error with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parse a document into its root table.
pub fn parse(input: &str) -> Result<BTreeMap<String, Value>, ParseError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // The table path currently open via the last `[...]` header; an
    // empty path targets the root.
    let mut path: Vec<String> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return err(line_no, format!("unterminated array-of-tables header `{line}`"));
            };
            let name = name.trim();
            check_header_name(name, line_no)?;
            path = split_header(name);
            push_array_table(&mut root, &path, line_no)?;
        } else if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(line_no, format!("unterminated table header `{line}`"));
            };
            let name = name.trim();
            check_header_name(name, line_no)?;
            path = split_header(name);
            open_table(&mut root, &path, line_no)?;
        } else {
            let Some(eq) = line.find('=') else {
                return err(line_no, format!("expected `key = value`, got `{line}`"));
            };
            let key = line[..eq].trim();
            if key.is_empty() || !key.chars().all(is_bare_key_char) {
                return err(line_no, format!("invalid key `{key}` (bare keys only)"));
            }
            let value = parse_value(line[eq + 1..].trim(), line_no)?;
            let table = current_table(&mut root, &path, line_no)?;
            if table.contains_key(key) {
                return err(line_no, format!("duplicate key `{key}`"));
            }
            table.insert(key.to_string(), value);
        }
    }
    Ok(root)
}

/// Strip a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = in_string && c == '\\' && !escaped;
    }
    line
}

fn check_header_name(name: &str, line_no: usize) -> Result<(), ParseError> {
    if name.is_empty() {
        return err(line_no, "empty table header");
    }
    for segment in name.split('.') {
        let segment = segment.trim();
        if segment.is_empty() || !segment.chars().all(is_bare_key_char) {
            return err(line_no, format!("invalid table header segment `{segment}`"));
        }
    }
    Ok(())
}

fn split_header(name: &str) -> Vec<String> {
    name.split('.').map(|s| s.trim().to_string()).collect()
}

/// Walk (creating as needed) to the table at `path`; the final segment
/// of an array-of-tables path resolves to its *last* element.
fn walk<'t>(
    root: &'t mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<&'t mut BTreeMap<String, Value>, ParseError> {
    let mut current = root;
    for segment in path {
        let entry = current.entry(segment.clone()).or_insert_with(|| Value::Table(BTreeMap::new()));
        current = match entry {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return err(line_no, format!("`{segment}` is not a table")),
            },
            _ => return err(line_no, format!("`{segment}` is not a table")),
        };
    }
    Ok(current)
}

fn open_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<(), ParseError> {
    let (last, parents) = path.split_last().expect("headers are non-empty");
    let parent = walk(root, parents, line_no)?;
    match parent.get(last) {
        None => {
            parent.insert(last.clone(), Value::Table(BTreeMap::new()));
        }
        Some(Value::Table(_)) => {
            return err(line_no, format!("table `{last}` defined twice"));
        }
        Some(_) => return err(line_no, format!("`{last}` is not a table")),
    }
    Ok(())
}

fn push_array_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<(), ParseError> {
    let (last, parents) = path.split_last().expect("headers are non-empty");
    let parent = walk(root, parents, line_no)?;
    match parent.entry(last.clone()).or_insert_with(|| Value::Array(Vec::new())) {
        Value::Array(items) => items.push(Value::Table(BTreeMap::new())),
        _ => return err(line_no, format!("`{last}` is not an array of tables")),
    }
    Ok(())
}

fn current_table<'t>(
    root: &'t mut BTreeMap<String, Value>,
    path: &[String],
    line_no: usize,
) -> Result<&'t mut BTreeMap<String, Value>, ParseError> {
    walk(root, path, line_no)
}

fn parse_value(text: &str, line_no: usize) -> Result<Value, ParseError> {
    if text.is_empty() {
        return err(line_no, "missing value");
    }
    if text.starts_with('"') {
        let (s, rest) = parse_string(text, line_no)?;
        if !rest.trim().is_empty() {
            return err(line_no, format!("trailing garbage after string: `{rest}`"));
        }
        return Ok(Value::Str(s));
    }
    if text.starts_with('[') {
        return parse_array(text, line_no);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        if v.is_finite() {
            return Ok(Value::Float(v));
        }
        return err(line_no, format!("non-finite number `{text}`"));
    }
    err(line_no, format!("unrecognized value `{text}`"))
}

/// Parse a basic string starting at `"`; returns the string and the
/// remaining input after the closing quote.
fn parse_string(text: &str, line_no: usize) -> Result<(String, &str), ParseError> {
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => return err(line_no, format!("unsupported escape `\\{other}`")),
                None => return err(line_no, "unterminated escape"),
            },
            _ => out.push(c),
        }
    }
    err(line_no, "unterminated string")
}

/// Parse a single-line array `[v, v, ...]` (homogeneity is the typed
/// decoder's business, not the parser's).
fn parse_array(text: &str, line_no: usize) -> Result<Value, ParseError> {
    let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) else {
        return err(line_no, format!("unterminated array `{text}`"));
    };
    let mut items = Vec::new();
    // Split on commas outside strings and nested brackets.
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                depth = depth.checked_sub(1).ok_or_else(|| ParseError {
                    line: line_no,
                    message: "unbalanced brackets in array".to_string(),
                })?
            }
            ',' if !in_string && depth == 0 => {
                let piece = inner[start..i].trim();
                if piece.is_empty() {
                    return err(line_no, "empty array element");
                }
                items.push(parse_value(piece, line_no)?);
                start = i + 1;
            }
            _ => {}
        }
        escaped = in_string && c == '\\' && !escaped;
    }
    let tail = inner[start..].trim();
    if !tail.is_empty() {
        items.push(parse_value(tail, line_no)?);
    } else if !items.is_empty() {
        return err(line_no, "trailing comma in array");
    }
    Ok(Value::Array(items))
}

/// Serialize a scalar or array value in canonical form.
pub fn format_value(value: &Value) -> String {
    match value {
        Value::Str(s) => {
            let mut out = String::from("\"");
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    _ => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Value::Int(v) => v.to_string(),
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact f64 — the property the proptests pin.
        Value::Float(v) => format!("{v:?}"),
        Value::Bool(v) => v.to_string(),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(format_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(_) => panic!("tables serialize via headers, not inline"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# a scenario
name = "soak" # trailing comment
seed = 7
scale = 0.25
on = true
values = [1, 2.5, "x"]

[testbed]
base = "paper"

[[events]]
kind = "outage"

[[events]]
kind = "gc"
"#;
        let root = parse(doc).unwrap();
        assert_eq!(root["name"], Value::Str("soak".into()));
        assert_eq!(root["seed"], Value::Int(7));
        assert_eq!(root["scale"], Value::Float(0.25));
        assert_eq!(root["on"], Value::Bool(true));
        assert_eq!(
            root["values"],
            Value::Array(vec![Value::Int(1), Value::Float(2.5), Value::Str("x".into())])
        );
        let tb = root["testbed"].as_table().unwrap();
        assert_eq!(tb["base"], Value::Str("paper".into()));
        let events = root["events"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].as_table().unwrap()["kind"], Value::Str("gc".into()));
    }

    #[test]
    fn dotted_headers_nest() {
        let root = parse("[a.b]\nx = 1\n").unwrap();
        let a = root["a"].as_table().unwrap();
        assert_eq!(a["b"].as_table().unwrap()["x"], Value::Int(1));
    }

    #[test]
    fn string_escapes_round_trip() {
        let root = parse(r#"s = "a\"b\\c\nd""#).unwrap();
        assert_eq!(root["s"], Value::Str("a\"b\\c\nd".into()));
        let formatted = format_value(&root["s"]);
        let reparsed = parse(&format!("s = {formatted}")).unwrap();
        assert_eq!(reparsed["s"], root["s"]);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let root = parse(r##"s = "a#b" # real comment"##).unwrap();
        assert_eq!(root["s"], Value::Str("a#b".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("key = value"), "{e}");

        let e = parse("x = 1\nx = 2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"), "{e}");

        let e = parse("[t]\n[t]").unwrap_err();
        assert!(e.message.contains("twice"), "{e}");

        for hostile in [
            "x = ",
            "x = nope",
            "x = \"unterminated",
            "x = [1, 2",
            "x = [1,, 2]",
            "x = [1, ]",
            "[unclosed",
            "[]",
            "x = inf",
            "x = \"bad\\q\"",
            "key with space = 1",
        ] {
            assert!(parse(hostile).is_err(), "accepted hostile input {hostile:?}");
        }
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 12345.6789, f64::MIN_POSITIVE] {
            let text = format_value(&Value::Float(v));
            let back = parse(&format!("x = {text}")).unwrap();
            assert_eq!(back["x"].as_float().unwrap().to_bits(), v.to_bits());
        }
    }
}
