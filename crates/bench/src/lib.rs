//! Benchmark harness for the DEEP reproduction.
//!
//! Two faces:
//!
//! * **`repro_*` binaries** (in `src/bin/`) regenerate every table and
//!   figure of the paper from fresh simulation runs:
//!   `repro_table1`, `repro_table2`, `repro_table3`, `repro_fig2`,
//!   `repro_fig3a`, `repro_fig3b`, `repro_headline`, and `repro_all`.
//!   Run e.g. `cargo run -p deep-bench --bin repro_table3 --release`.
//! * **criterion benches** (in `benches/`) measure the substrates and the
//!   scheduler itself, including the ablations listed in DESIGN.md:
//!   `nash_solvers`, `des_engine`, `sha256`, `erasure_coding`,
//!   `registry_pull`, `scheduler_comparison`, `dag_ops`, `energy_models`.

use deep_core::Experiments;

/// The experiment configuration used by all repro binaries: ten seeded
/// trials, ±2 % jitter — enough to produce stable ranges while staying
/// fast in debug builds.
pub fn default_experiments() -> Experiments {
    Experiments::default()
}

/// Parse an optional trial-count argument (`repro_table2 25`).
pub fn experiments_from_args() -> Experiments {
    let mut exp = default_experiments();
    if let Some(arg) = std::env::args().nth(1) {
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => exp.trials = n,
            _ => eprintln!("ignoring invalid trial count {arg:?}"),
        }
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let e = default_experiments();
        assert!(e.trials >= 2);
        assert!(e.jitter > 0.0 && e.jitter < 0.1);
    }
}
