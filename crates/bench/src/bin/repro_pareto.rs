//! Exhaustive energy/makespan Pareto analysis of the deployment space
//! (beyond-paper; see DESIGN.md). Brute-forces all 4^6 joint assignments
//! per case study and locates DEEP's equilibrium on the front.

use deep_core::pareto;
use deep_core::{calibration, DeepScheduler, Scheduler};
use deep_dataflow::apps;

fn main() {
    let tb = calibration::calibrated_testbed();
    for app in apps::case_studies() {
        let profiles = pareto::enumerate_profiles(&app, &tb);
        let n = profiles.len();
        let front = pareto::pareto_front(profiles);
        println!("{} — {} joint assignments, {} Pareto-efficient:", app.name(), n, front.len());
        for p in &front {
            println!("  energy {:8.1} J | makespan {:7.1} s", p.energy, p.makespan);
        }
        let schedule = DeepScheduler::paper().schedule(&app, &tb);
        let d = pareto::distance_to_front(&app, &tb, &schedule, &front);
        println!(
            "  DEEP: energy {:.1} J, makespan {:.1} s, energy excess over front {:.3} J\n",
            d.energy, d.makespan, d.energy_excess
        );
    }
    println!("DEEP sits at the energy-minimal end of the front by construction;");
    println!("the front's other end shows what makespan money can buy.");
}
