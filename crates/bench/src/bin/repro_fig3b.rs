//! Regenerate Figure 3b: total energy under the three deployment methods.

fn main() {
    let exp = deep_bench::default_experiments();
    let result = exp.fig3b();
    println!("Figure 3b — energy consumed using three deployment methods\n");
    print!("{}", exp.render_fig3b(&result));
}
