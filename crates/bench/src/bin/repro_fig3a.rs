//! Regenerate Figure 3a: energy per microservice under the DEEP schedule.

fn main() {
    let exp = deep_bench::default_experiments();
    let result = exp.fig3a();
    print!("{}", exp.render_fig3a(&result));
}
