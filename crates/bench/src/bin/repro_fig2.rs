//! Regenerate Figure 2: the case-study DAGs (Graphviz DOT).

fn main() {
    let exp = deep_bench::default_experiments();
    print!("{}", exp.fig2());
}
