//! Regenerate Table III: DEEP's deployment/placement distribution.

fn main() {
    let exp = deep_bench::default_experiments();
    println!("Table III — distribution of image deployments and executions under DEEP\n");
    print!("{}", exp.render_table3(&exp.table3()));
    println!("\npaper: video 83 % medium/Hub + 17 % small/regional;");
    println!("       text  17 % medium/Hub + 17 % medium/regional + 66 % small/regional.");
}
