//! Regenerate Table II: per-microservice benchmarks on both devices.
//! Optional argument: number of seeded trials (default 10).

fn main() {
    let exp = deep_bench::experiments_from_args();
    println!(
        "Table II — benchmarks of microservices ({} seeded trials, ±{:.0} % jitter)\n",
        exp.trials,
        exp.jitter * 100.0
    );
    let rows = exp.table2();
    print!("{}", exp.render_table2(&rows));
    println!("\npaper columns shown alongside; see EXPERIMENTS.md for the deviation accounting.");
}
