//! Run every table/figure regeneration in sequence (EXPERIMENTS.md source).

fn main() {
    let exp = deep_bench::experiments_from_args();
    println!("=== Table I ===\n{}", exp.table1());
    let t2 = exp.table2();
    println!("=== Table II ===\n{}", exp.render_table2(&t2));
    println!("=== Table III ===\n{}", exp.render_table3(&exp.table3()));
    println!("=== Figure 2 (DOT) ===\n{}", exp.fig2());
    println!("=== Figure 3a ===\n{}", exp.render_fig3a(&exp.fig3a()));
    println!("=== Figure 3b ===\n{}", exp.render_fig3b(&exp.fig3b()));
    let h = exp.headline();
    println!("=== Headline ===");
    for ((app, joules), (_, frac)) in h.savings_vs_hub_j.iter().zip(&h.savings_vs_hub_frac) {
        println!(
            "{app}: DEEP saves {joules:.1} J ({:.2} %) vs exclusively-Docker-Hub",
            frac * 100.0
        );
    }
    println!("text regional share: {:.0} %", h.text_regional_share * 100.0);
}
