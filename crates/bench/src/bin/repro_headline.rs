//! Measure the paper's headline claims.

fn main() {
    let exp = deep_bench::default_experiments();
    let h = exp.headline();
    println!("Headline claims, measured on the simulated testbed:\n");
    for ((app, joules), (_, frac)) in h.savings_vs_hub_j.iter().zip(&h.savings_vs_hub_frac) {
        println!(
            "  {app:18} DEEP saves {joules:8.1} J ({:.2} %) vs exclusively-Docker-Hub",
            frac * 100.0
        );
    }
    println!(
        "  text-processing    regional pull share: {:.0} % (paper: 83 %)",
        h.text_regional_share * 100.0
    );
    println!(
        "\npaper: video ~14 J (0.2 %), text ~18 J (0.34 %); shape preserved, see EXPERIMENTS.md."
    );
}
