//! Regenerate Table I: the image catalog on both registries.

fn main() {
    let exp = deep_bench::default_experiments();
    println!("Table I — Docker images of microservices\n");
    print!("{}", exp.table1());
}
