//! The paper's announced future work: DEEP across the cloud-edge
//! continuum (beyond-paper experiment; see DESIGN.md).

use deep_core::continuum;
use deep_simulator::ExecutorConfig;

fn main() {
    println!("Cloud-edge continuum extension (paper future work)\n");
    let rows = continuum::compare(&ExecutorConfig::default());
    print!("{}", continuum::render(&rows));
    println!("\ntranscode is camera-pinned to the edge; ML-heavy stages offload when");
    println!("the cloud's per-instruction energy advantage beats the WAN cost.");
}
