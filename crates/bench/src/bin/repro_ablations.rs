//! Ablation suite over DEEP's design choices (DESIGN.md section 6).

use deep_core::ablation;
use deep_simulator::ExecutorConfig;

fn main() {
    println!("Ablation suite (positive penalty = variant is worse than DEEP)\n");
    let rows = ablation::run_all(&ExecutorConfig::default());
    print!("{}", ablation::render(&rows));
}
