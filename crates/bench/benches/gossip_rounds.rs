//! Gossip round cost: what one wave-barrier epidemic step costs the
//! executor at fleet scale, and how the bounded mesh materialization
//! scales with the view size.
//!
//! Three altitudes:
//!
//! * `barrier_round/*` — one advertise-and-spread barrier over an
//!   n-device fleet (ad refresh scan + fanout-bounded push/pull
//!   exchanges). Each iteration clones a fresh plane: rounds converge,
//!   and a converged plane would measure the no-op refresh path.
//! * `barrier_round_unchanged/*` — the steady-state barrier on a fleet
//!   whose caches have not moved since the last wave: the delta plane's
//!   stale counters turn every exchange into an O(1) no-op, so this is
//!   the price the executor pays at *every* wave of a quiet soak.
//! * `mesh_view/*` — one pull's bounded view off the plane. The delta
//!   backend replays its generation-keyed cached view (the common case:
//!   nothing moved since the wave's barrier); `mesh_view_rebuild/*`
//!   forces the materialization path (partial selection + retraction
//!   scan) through the retained clone-based oracle backend, which
//!   shares the same `materialize` routine but caches nothing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deep_netsim::DataSize;
use deep_registry::{Digest, LayerCache};
use deep_simulator::GossipPlane;

const FANOUT: u32 = 3;

/// An n-device fleet where every 8th device holds a few layers — enough
/// non-empty advertisements that views and selections do real work.
fn fleet_caches(devices: usize) -> Vec<LayerCache> {
    let mut caches = vec![LayerCache::new(DataSize::gigabytes(64.0)); devices];
    for (j, cache) in caches.iter_mut().enumerate().step_by(8) {
        for layer in 0..=(j % 5) {
            cache.insert(Digest::of(&[(j % 251) as u8, layer as u8]), DataSize::megabytes(40.0));
        }
    }
    caches
}

fn bench_barrier_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_round");
    for &devices in &[50usize, 200, 800, 1600] {
        let caches = fleet_caches(devices);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let plane = GossipPlane::new(devices, FANOUT, 8, 1, 42);
        group.bench_function(format!("devices_{devices}").as_str(), |b| {
            b.iter(|| {
                let mut fresh = plane.clone();
                fresh.barrier_round(black_box(&refs));
                black_box(fresh.rounds_run())
            })
        });
    }
    group.finish();
}

fn bench_barrier_round_unchanged(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_round_unchanged");
    for &devices in &[200usize, 800] {
        let caches = fleet_caches(devices);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        // Warm the plane past convergence so every further barrier sees
        // an unchanged fleet: no cache diverged, every partner pair is
        // mutually up to date.
        let mut plane = GossipPlane::new(devices, FANOUT, 8, 1, 42);
        for _ in 0..8 {
            plane.barrier_round(&refs);
        }
        group.bench_function(format!("devices_{devices}").as_str(), |b| {
            b.iter(|| {
                plane.barrier_round(black_box(&refs));
                black_box(plane.rounds_run())
            })
        });
    }
    group.finish();
}

fn bench_mesh_view(c: &mut Criterion) {
    let devices = 200usize;
    let caches = fleet_caches(devices);
    let refs: Vec<&LayerCache> = caches.iter().collect();
    // Cached replay: the delta backend materializes once per (target,
    // generation) and clones the stored view on every further call.
    let mut group = c.benchmark_group("mesh_view");
    for &view_size in &[2u32, 8, 32, u32::MAX] {
        let mut bounded = {
            let mut p = GossipPlane::new(devices, u32::MAX, view_size, 1, 42);
            p.barrier_round(&refs);
            p
        };
        let label =
            if view_size == u32::MAX { "unbounded".into() } else { format!("view_{view_size}") };
        group.bench_function(label.as_str(), |b| {
            b.iter(|| black_box(bounded.mesh_view(black_box(&refs), 3)).len())
        });
    }
    group.finish();
    // Forced materialization: the clone-based oracle backend shares the
    // `materialize` routine (partial selection included) but caches
    // nothing, so every call pays the full select + retraction scan.
    let mut group = c.benchmark_group("mesh_view_rebuild");
    for &view_size in &[2u32, 8, 32, u32::MAX] {
        let mut bounded = {
            let mut p = GossipPlane::new_oracle(devices, u32::MAX, view_size, 1, 42);
            p.barrier_round(&refs);
            p
        };
        let label =
            if view_size == u32::MAX { "unbounded".into() } else { format!("view_{view_size}") };
        group.bench_function(label.as_str(), |b| {
            b.iter(|| black_box(bounded.mesh_view(black_box(&refs), 3)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrier_round, bench_barrier_round_unchanged, bench_mesh_view);
criterion_main!(benches);
