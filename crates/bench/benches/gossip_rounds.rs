//! Gossip round cost: what one wave-barrier epidemic step costs the
//! executor at fleet scale, and how the bounded mesh materialization
//! scales with the view size.
//!
//! Two altitudes:
//!
//! * `barrier_round/*` — one advertise-and-spread barrier over an
//!   n-device fleet (ad refresh scan + fanout-bounded push/pull
//!   exchanges). Each iteration clones a fresh plane: rounds converge,
//!   and a converged plane would measure the no-op refresh path.
//! * `mesh_view/*` — materializing one pull's bounded view from a
//!   converged fleet state (select + sort + clone + retraction scan),
//!   the per-pull price the `view_size` knob bounds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deep_netsim::DataSize;
use deep_registry::{Digest, LayerCache};
use deep_simulator::GossipPlane;

const FANOUT: u32 = 3;

/// An n-device fleet where every 8th device holds a few layers — enough
/// non-empty advertisements that views and selections do real work.
fn fleet_caches(devices: usize) -> Vec<LayerCache> {
    let mut caches = vec![LayerCache::new(DataSize::gigabytes(64.0)); devices];
    for (j, cache) in caches.iter_mut().enumerate().step_by(8) {
        for layer in 0..=(j % 5) {
            cache.insert(Digest::of(&[(j % 251) as u8, layer as u8]), DataSize::megabytes(40.0));
        }
    }
    caches
}

fn bench_barrier_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_round");
    for &devices in &[50usize, 200, 800] {
        let caches = fleet_caches(devices);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let plane = GossipPlane::new(devices, FANOUT, 8, 1, 42);
        group.bench_function(format!("devices_{devices}").as_str(), |b| {
            b.iter(|| {
                let mut fresh = plane.clone();
                fresh.barrier_round(black_box(&refs));
                black_box(fresh.rounds_run())
            })
        });
    }
    group.finish();
}

fn bench_mesh_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_view");
    let devices = 200usize;
    let caches = fleet_caches(devices);
    let refs: Vec<&LayerCache> = caches.iter().collect();
    // A converged plane: every view knows every holder, so view-size
    // truncation is the only variable between runs.
    let mut plane = GossipPlane::new(devices, u32::MAX, u32::MAX, 1, 42);
    plane.barrier_round(&refs);
    assert!(plane.converged());
    for &view_size in &[2u32, 8, 32, u32::MAX] {
        let bounded = {
            let mut p = GossipPlane::new(devices, u32::MAX, view_size, 1, 42);
            p.barrier_round(&refs);
            p
        };
        let label =
            if view_size == u32::MAX { "unbounded".into() } else { format!("view_{view_size}") };
        group.bench_function(label.as_str(), |b| {
            b.iter(|| black_box(bounded.mesh_view(black_box(&refs), 3)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrier_round, bench_mesh_view);
criterion_main!(benches);
