//! Pull-path performance and the layer-cache ablation (DESIGN.md
//! ablation 2): cold pulls vs sibling-deduped pulls vs fully warm pulls.

use criterion::{criterion_group, criterion_main, Criterion};
use deep_netsim::{Bandwidth, DataSize, Seconds};
use deep_registry::{HubRegistry, LayerCache, Platform, PullPlanner, Reference};
use std::hint::black_box;

fn planner() -> PullPlanner {
    PullPlanner {
        download_bw: Bandwidth::megabytes_per_sec(13.0),
        extract_bw: Bandwidth::megabytes_per_sec(12.6),
        overhead: Seconds::new(25.0),
    }
}

fn bench_pull_paths(c: &mut Criterion) {
    let hub = HubRegistry::with_paper_catalog();
    let p = planner();
    let ha = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let la = Reference::new("docker.io", "sina88/vp-la-train", "amd64");

    c.bench_function("pull_cold_5.78GB_image", |b| {
        b.iter(|| {
            let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
            black_box(p.pull(&hub, &ha, Platform::Amd64, &mut cache).unwrap())
        })
    });

    c.bench_function("pull_sibling_deduped", |b| {
        b.iter(|| {
            let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
            p.pull(&hub, &la, Platform::Amd64, &mut cache).unwrap();
            black_box(p.pull(&hub, &ha, Platform::Amd64, &mut cache).unwrap())
        })
    });

    c.bench_function("pull_fully_warm", |b| {
        let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
        p.pull(&hub, &ha, Platform::Amd64, &mut cache).unwrap();
        b.iter(|| black_box(p.pull(&hub, &ha, Platform::Amd64, &mut cache).unwrap()))
    });

    c.bench_function("estimate_counterfactual", |b| {
        let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
        p.pull(&hub, &la, Platform::Amd64, &mut cache).unwrap();
        b.iter(|| black_box(p.estimate(&hub, &ha, Platform::Amd64, &cache).unwrap()))
    });
}

fn bench_catalog_wide_pull(c: &mut Criterion) {
    // Deploy the whole 12-image catalog onto one cache (the full testbed
    // warm-up path).
    let hub = HubRegistry::with_paper_catalog();
    let p = planner();
    let refs: Vec<Reference> =
        deep_registry::paper_catalog().iter().map(|e| e.hub_reference(Platform::Amd64)).collect();
    c.bench_function("pull_entire_catalog_amd64", |b| {
        b.iter(|| {
            let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
            for r in &refs {
                p.pull(&hub, r, Platform::Amd64, &mut cache).unwrap();
            }
            black_box(cache.used())
        })
    });
}

criterion_group!(benches, bench_pull_paths, bench_catalog_wide_pull);
criterion_main!(benches);
