//! DAG substrate performance: validation, stage decomposition and
//! critical-path computation on generated applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deep_dataflow::{critical_path, stages, DagGenerator};
use std::hint::black_box;

fn generators() -> Vec<(usize, DagGenerator)> {
    vec![
        (10, DagGenerator { stages: 4, width: (2, 3), ..DagGenerator::default() }),
        (60, DagGenerator { stages: 20, width: (2, 4), ..DagGenerator::default() }),
        (400, DagGenerator { stages: 100, width: (3, 5), ..DagGenerator::default() }),
    ]
}

fn bench_generation_and_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_generate_validate");
    for (label, gen) in generators() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &gen, |b, gen| {
            b.iter(|| black_box(gen.generate(5)))
        });
    }
    group.finish();
}

fn bench_stage_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_stages");
    for (label, gen) in generators() {
        let app = gen.generate(5);
        group.bench_with_input(BenchmarkId::from_parameter(label), &app, |b, app| {
            b.iter(|| black_box(stages(app)))
        });
    }
    group.finish();
}

fn bench_critical_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_critical_path");
    for (label, gen) in generators() {
        let app = gen.generate(5);
        group.bench_with_input(BenchmarkId::from_parameter(label), &app, |b, app| {
            b.iter(|| {
                black_box(critical_path(app, |id| app.microservice(id).requirements.cpu.as_f64()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generation_and_validation,
    bench_stage_decomposition,
    bench_critical_path
);
criterion_main!(benches);
