//! Fleet-scale soak costs: what the scenario-priced solve and a full
//! executor replay pay at 200- and 800-device scale with gossip
//! discovery on — the two paths PR 10's delta gossip and batched draw
//! pricing rebuilt.
//!
//! * `fleet_solve/*` — one scenario-priced schedule (Monte-Carlo
//!   `E[Td]` over a 64-draw seed stream) on a seeded synthetic fleet
//!   with a flaky regional, peer sharing, and gossip discovery. The
//!   per-(pull, primary) fatal-pattern memo collapses the per-candidate
//!   draw loops of a stage game's row sweep into one sample per commit
//!   point.
//! * `fleet_replay/*` — one executor run of the solved schedule over
//!   the same fleet (gossip barriers at every wave), the soak harness's
//!   per-replication unit of work.

use criterion::{criterion_group, criterion_main, Criterion};
use deep_core::{continuum, DeepScheduler, Scheduler};
use deep_dataflow::DagGenerator;
use deep_registry::FaultRates;
use deep_simulator::{execute, ExecutorConfig, PeerDiscovery, RegistryChoice, Testbed};
use std::hint::black_box;

const DRAWS: u32 = 64;
const DISCOVERY: PeerDiscovery =
    PeerDiscovery::Gossip { fanout: 3, view_size: 8, rounds_per_wave: 1 };

fn fleet(devices: usize) -> (Testbed, deep_dataflow::Application) {
    let gen = DagGenerator { stages: 4, width: (2, 3), ..DagGenerator::default() };
    let app = gen.generate(42);
    let mut tb = continuum::synthetic_fleet_testbed(devices, 3, 42);
    tb.publish_application(&app);
    // A flaky regional puts every estimate on the failover-mix path the
    // fatal-pattern memo serves.
    tb.fault_model = tb.fault_model.clone().with_source(
        RegistryChoice::Regional.registry_id(),
        FaultRates { fatal_per_pull: 0.2, transient_per_fetch: 0.1 },
    );
    (tb, app)
}

fn scheduler() -> DeepScheduler {
    DeepScheduler {
        peer_sharing: true,
        peer_discovery: DISCOVERY,
        ..DeepScheduler::scenario_priced(DRAWS, 7)
    }
}

fn bench_fleet_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_solve");
    group.sample_size(10);
    for &devices in &[200usize, 800] {
        let (tb, app) = fleet(devices);
        let sched = scheduler();
        group.bench_function(format!("devices_{devices}").as_str(), |b| {
            b.iter(|| black_box(sched.schedule(&app, &tb)))
        });
    }
    group.finish();
}

fn bench_fleet_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_replay");
    group.sample_size(10);
    for &devices in &[200usize, 800] {
        let (tb, app) = fleet(devices);
        let schedule = scheduler().schedule(&app, &tb);
        let cfg =
            ExecutorConfig { peer_sharing: true, peer_discovery: DISCOVERY, ..Default::default() };
        group.bench_function(format!("devices_{devices}").as_str(), |b| {
            b.iter(|| {
                let mut run_tb = tb.replica();
                let (report, _) = execute(&mut run_tb, &app, &schedule, &cfg).unwrap();
                black_box(report.microservices.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_solve, bench_fleet_replay);
criterion_main!(benches);
