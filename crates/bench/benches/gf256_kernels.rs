//! GF(2^8) slice-kernel microbenches — the inner loops of RS encode and
//! decode, measured in isolation so kernel regressions are visible
//! independently of full-object erasure coding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_objectstore::gf256::{mul_acc, mul_acc_table, mul_slice, xor_acc, MulTable};
use std::hint::black_box;

fn buf(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

const SIZES: [(usize, &str); 3] = [(4 << 10, "4KiB"), (64 << 10, "64KiB"), (1 << 20, "1MiB")];

fn bench_mul_acc(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_mul_acc");
    for (len, label) in SIZES {
        let src = buf(len, 1);
        let mut dst = buf(len, 2);
        let table = MulTable::new(0x8e);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &len, |b, _| {
            b.iter(|| {
                mul_acc_table(black_box(&mut dst), black_box(&src), &table);
                black_box(dst[0])
            })
        });
    }
    group.finish();
}

fn bench_mul_acc_oneshot(c: &mut Criterion) {
    // The one-shot form pays the table build per call — the delta against
    // gf256_mul_acc is the per-coder caching win.
    let mut group = c.benchmark_group("gf256_mul_acc_oneshot");
    for (len, label) in SIZES {
        let src = buf(len, 3);
        let mut dst = buf(len, 4);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &len, |b, _| {
            b.iter(|| {
                mul_acc(black_box(&mut dst), black_box(&src), 0x8e);
                black_box(dst[0])
            })
        });
    }
    group.finish();
}

fn bench_mul_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_mul_slice");
    for (len, label) in SIZES {
        let src = buf(len, 5);
        let mut dst = vec![0u8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &len, |b, _| {
            b.iter(|| {
                mul_slice(black_box(&mut dst), black_box(&src), 0x1d);
                black_box(dst[0])
            })
        });
    }
    group.finish();
}

fn bench_xor_acc(c: &mut Criterion) {
    // The c == 1 fast path (parity rows frequently carry unit
    // coefficients in systematic codes).
    let mut group = c.benchmark_group("gf256_xor_acc");
    for (len, label) in SIZES {
        let src = buf(len, 6);
        let mut dst = buf(len, 7);
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &len, |b, _| {
            b.iter(|| {
                xor_acc(black_box(&mut dst), black_box(&src));
                black_box(dst[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mul_acc, bench_mul_acc_oneshot, bench_mul_slice, bench_xor_acc);
criterion_main!(benches);
