//! Scenario DSL and soak-harness costs: parsing a chaos scenario,
//! canonical serialization, sweep expansion, scenario-priced scheduling
//! (Monte-Carlo `E[Td]` over the replication seed stream), and a full
//! seeded soak replay through the executor.
//!
//! The checked-in scenario files under `scenarios/` are the fixtures —
//! the same documents the sweep examples and `scripts/tier1.sh` drive,
//! so these benches track the cost of the production path, not a toy.

use criterion::{criterion_group, criterion_main, Criterion};
use deep_core::{run_scenario, scenario_scheduler, scenario_testbed, DeepScheduler, Scheduler};
use deep_scenario::Scenario;
use std::hint::black_box;

const STICKY: &str = include_str!("../../../scenarios/soak_sticky_outage.toml");
const SMOKE: &str = include_str!("../../../scenarios/soak_smoke.toml");
const FAULT_SWEEP: &str = include_str!("../../../scenarios/fault_sweep.toml");

fn bench_dsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_dsl");
    group.bench_function("parse_sticky_soak", |b| {
        b.iter(|| black_box(Scenario::parse(STICKY).expect("fixture parses")))
    });
    group.bench_function("to_toml_sticky_soak", |b| {
        let scenario = Scenario::parse(STICKY).expect("fixture parses");
        b.iter(|| black_box(scenario.to_toml()))
    });
    group.bench_function("expand_fault_sweep_grid", |b| {
        let scenario = Scenario::parse(FAULT_SWEEP).expect("fixture parses");
        b.iter(|| black_box(scenario.expand()))
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_replay");
    group.sample_size(10);
    // The tentpole pricing path: payoffs Monte-Carlo'd over the
    // scenario's 40-seed replication stream, windows clock-gated.
    let sticky = Scenario::parse(STICKY).expect("fixture parses");
    let app = sticky.application();
    let tb = scenario_testbed(&sticky);
    group.bench_function("schedule_scenario_priced", |b| {
        b.iter(|| black_box(scenario_scheduler(&sticky).schedule(&app, &tb)))
    });
    group.bench_function("schedule_fault_aware", |b| {
        b.iter(|| black_box(DeepScheduler::fault_aware().schedule(&app, &tb)))
    });
    // Full harness: schedule + seeded replications + chaos timeline.
    let smoke = Scenario::parse(SMOKE).expect("fixture parses");
    group.bench_function("soak_smoke_replay", |b| {
        b.iter(|| black_box(run_scenario(&smoke, &DeepScheduler::fault_aware())))
    });
    group.finish();
}

criterion_group!(benches, bench_dsl, bench_replay);
criterion_main!(benches);
