//! Peer-plane cost: per-pair per-holder selection and upload-contention
//! pricing vs the scalar aggregate baseline.
//!
//! Three altitudes:
//!
//! * `estimate/*` — one pull session planned against an N-holder mesh
//!   (per-layer cheapest-source scans grow with the holder count) vs
//!   the single aggregated source;
//! * `schedule/*` — the peer-aware Nash scheduler on a warm continuum
//!   fleet under each plane representation (payoffs price per-holder
//!   links and uplink loads vs the anonymous scalar route);
//! * `warm_start/*` — the joint refinement with and without the
//!   Rosenthal potential warm start.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use deep_core::{continuum_testbed, DeepScheduler, Scheduler};
use deep_dataflow::apps;
use deep_netsim::{Bandwidth, DataSize, DeviceId, RegistryId, Seconds};
use deep_registry::{
    HubRegistry, LayerCache, PeerCacheSource, Platform, Reference, RegistryMesh, SourceParams,
};
use deep_simulator::{
    execute, peer_source_id, ExecutorConfig, PeerPlane, RegistryChoice, Schedule, Testbed,
    DEVICE_MEDIUM, REGISTRY_PEER,
};

fn hub_params() -> SourceParams {
    SourceParams { download_bw: Bandwidth::megabytes_per_sec(13.0), overhead: Seconds::new(25.0) }
}

fn peer_params() -> SourceParams {
    SourceParams { download_bw: Bandwidth::megabytes_per_sec(80.0), overhead: Seconds::new(1.0) }
}

/// A cache warmed with the sibling la-train image (the shared 5.2 GB
/// training stack) — what every holder advertises.
fn warm_cache() -> LayerCache {
    let hub = HubRegistry::with_paper_catalog();
    let mut cache = LayerCache::new(DataSize::gigabytes(64.0));
    let mut mesh = RegistryMesh::new();
    mesh.add_registry(RegistryId(0), &hub, hub_params());
    mesh.session(RegistryId(0))
        .pull(
            &Reference::new("docker.io", "sina88/vp-la-train", "amd64"),
            Platform::Amd64,
            &mut cache,
        )
        .unwrap();
    cache
}

fn bench_estimate(c: &mut Criterion) {
    let hub = HubRegistry::with_paper_catalog();
    let cache = warm_cache();
    let reference = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
    let empty = LayerCache::new(DataSize::gigabytes(64.0));
    let mut group = c.benchmark_group("peer_plane_estimate");
    // Scalar baseline: one aggregated source.
    let aggregate = PeerCacheSource::from_caches("peer-cache", [&cache]);
    group.bench_function("aggregate", |b| {
        let mut mesh = RegistryMesh::new();
        mesh.add_registry(RegistryId(0), &hub, hub_params());
        mesh.add_blob_source(REGISTRY_PEER, &aggregate, peer_params());
        b.iter(|| {
            black_box(
                mesh.session(RegistryId(0)).estimate(&reference, Platform::Amd64, &empty).unwrap(),
            )
        })
    });
    // Per-holder planes: every holder advertises the stack, so each
    // layer's cheapest-source scan walks all of them.
    for holders in [4usize, 16, 64] {
        let sources: Vec<PeerCacheSource> =
            (0..holders).map(|j| PeerCacheSource::for_holder(DeviceId(j + 1), &cache)).collect();
        let id = format!("per_pair_{holders}");
        group.bench_function(id.as_str(), |b| {
            let mut mesh = RegistryMesh::new();
            mesh.add_registry(RegistryId(0), &hub, hub_params());
            for (j, source) in sources.iter().enumerate() {
                mesh.add_blob_source(peer_source_id(DeviceId(j + 1)), source, peer_params());
            }
            b.iter(|| {
                black_box(
                    mesh.session(RegistryId(0))
                        .estimate(&reference, Platform::Amd64, &empty)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// A warm continuum fleet (the medium device ran the video app).
fn warm_fleet(aggregate: bool) -> Testbed {
    let mut tb = continuum_testbed();
    if aggregate {
        tb.peer_plane = PeerPlane::Aggregate;
    }
    let app = apps::video_processing();
    let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
    tb
}

fn bench_schedule(c: &mut Criterion) {
    let app = apps::video_processing();
    let mut group = c.benchmark_group("peer_plane_schedule");
    for (label, aggregate) in [("aggregate", true), ("per_pair", false)] {
        let tb = warm_fleet(aggregate);
        group.bench_function(label, |b| {
            b.iter(|| black_box(DeepScheduler::with_peer_sharing().schedule(&app, &tb)))
        });
    }
    // A hot uplink makes the per-pair payoffs genuinely non-uniform.
    let mut hot = warm_fleet(false);
    hot.set_peer_uplink(DEVICE_MEDIUM, Bandwidth::megabytes_per_sec(16.0));
    group.bench_function("per_pair_hot_uplink", |b| {
        b.iter(|| black_box(DeepScheduler::with_peer_sharing().schedule(&app, &hot)))
    });
    group.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let app = apps::video_processing();
    let tb = warm_fleet(false);
    let mut group = c.benchmark_group("peer_plane_warm_start");
    for (label, on) in [("with_potential", true), ("without", false)] {
        let scheduler = DeepScheduler {
            peer_sharing: true,
            congestion_warm_start: on,
            ..DeepScheduler::default()
        };
        group.bench_function(label, |b| b.iter(|| black_box(scheduler.schedule(&app, &tb))));
    }
    group.finish();
}

criterion_group!(benches, bench_estimate, bench_schedule, bench_warm_start);
criterion_main!(benches);
