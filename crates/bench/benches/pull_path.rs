//! The mesh pull path end to end: resolve → diff → fetch over the paper
//! catalog, through `PullSession` — single-source (the seed-parity path),
//! split (hub + regional + warm peer), and the scheduler's estimate side.

use criterion::{criterion_group, criterion_main, Criterion};
use deep_netsim::{Bandwidth, DataSize, RegistryId, Seconds};
use deep_registry::{
    paper_catalog, HubRegistry, LayerCache, PeerCacheSource, Platform, PullSession, Reference,
    RegionalRegistry, RegistryMesh, SourceParams,
};
use std::hint::black_box;

const HUB: RegistryId = RegistryId(0);
const REGIONAL: RegistryId = RegistryId(1);
const PEER: RegistryId = RegistryId(2);

fn hub_params() -> SourceParams {
    SourceParams { download_bw: Bandwidth::megabytes_per_sec(13.0), overhead: Seconds::new(25.0) }
}

fn regional_params() -> SourceParams {
    SourceParams { download_bw: Bandwidth::megabytes_per_sec(8.0), overhead: Seconds::new(5.0) }
}

fn peer_params() -> SourceParams {
    SourceParams { download_bw: Bandwidth::megabytes_per_sec(80.0), overhead: Seconds::new(1.0) }
}

fn cache() -> LayerCache {
    LayerCache::new(DataSize::gigabytes(64.0))
}

fn bench_single_source(c: &mut Criterion) {
    let hub = HubRegistry::with_paper_catalog();
    let mut mesh = RegistryMesh::new();
    mesh.add_registry(HUB, &hub, hub_params());
    let refs: Vec<Reference> =
        paper_catalog().iter().map(|e| e.hub_reference(Platform::Amd64)).collect();

    c.bench_function("pull_path_catalog_single_source", |b| {
        // Resolve → diff → fetch for all 12 images into one cold cache
        // (cross-image dedup exercised).
        b.iter(|| {
            let session =
                PullSession::new(&mesh, HUB).extract_bw(Bandwidth::megabytes_per_sec(12.6));
            let mut cache = cache();
            for r in &refs {
                black_box(session.pull(r, Platform::Amd64, &mut cache).unwrap());
            }
        })
    });

    c.bench_function("pull_path_catalog_warm", |b| {
        let session = PullSession::new(&mesh, HUB).extract_bw(Bandwidth::megabytes_per_sec(12.6));
        let mut warm = cache();
        for r in &refs {
            session.pull(r, Platform::Amd64, &mut warm).unwrap();
        }
        b.iter(|| {
            for r in &refs {
                black_box(session.pull(r, Platform::Amd64, &mut warm).unwrap());
            }
        })
    });
}

fn bench_split_pull(c: &mut Criterion) {
    let hub = HubRegistry::with_paper_catalog();
    let regional = RegionalRegistry::with_paper_catalog();
    // A fleet peer holding the whole catalog: every shared layer rides
    // the peer route, forcing per-layer source selection on each pull.
    let mut peer_cache = cache();
    {
        let mut warm_mesh = RegistryMesh::new();
        warm_mesh.add_registry(HUB, &hub, hub_params());
        let warm = PullSession::new(&warm_mesh, HUB);
        for e in paper_catalog() {
            warm.pull(&e.hub_reference(Platform::Amd64), Platform::Amd64, &mut peer_cache).unwrap();
        }
    }
    let peer = PeerCacheSource::from_caches("peer-cache", [&peer_cache]);

    let mut mesh = RegistryMesh::new();
    mesh.add_registry(HUB, &hub, hub_params());
    mesh.add_registry(REGIONAL, &regional, regional_params());
    mesh.add_blob_source(PEER, &peer, peer_params());
    let refs: Vec<Reference> =
        paper_catalog().iter().map(|e| e.hub_reference(Platform::Amd64)).collect();

    c.bench_function("pull_path_catalog_split_mesh", |b| {
        b.iter(|| {
            let session =
                PullSession::new(&mesh, HUB).extract_bw(Bandwidth::megabytes_per_sec(12.6));
            let mut device = cache();
            for r in &refs {
                black_box(session.pull(r, Platform::Amd64, &mut device).unwrap());
            }
        })
    });

    c.bench_function("pull_path_estimate_counterfactual", |b| {
        let session = PullSession::new(&mesh, HUB);
        let device = cache();
        let ha = Reference::new("docker.io", "sina88/vp-ha-train", "amd64");
        b.iter(|| black_box(session.estimate(&ha, Platform::Amd64, &device).unwrap()))
    });
}

criterion_group!(benches, bench_single_source, bench_split_pull);
criterion_main!(benches);
