//! Discrete-event engine throughput: schedule + drain N events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_netsim::Seconds;
use deep_simulator::Engine;
use std::hint::black_box;

fn bench_schedule_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_schedule_drain");
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new();
                // Interleaved times stress heap ordering.
                for i in 0..n {
                    let t = ((i * 7919) % n) as f64;
                    eng.schedule_at(Seconds::new(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = eng.next() {
                    acc = acc.wrapping_add(e);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_cascading_events(c: &mut Criterion) {
    // Handler-driven cascades (each event schedules a successor).
    c.bench_function("engine_cascade_10k", |b| {
        b.iter(|| {
            let mut eng = Engine::new();
            eng.schedule_at(Seconds::new(0.0), 10_000u32);
            let mut count = 0u32;
            eng.run(|eng, _, n| {
                count += 1;
                if n > 1 {
                    eng.schedule_in(Seconds::new(0.5), n - 1);
                }
            });
            black_box(count)
        })
    });
}

criterion_group!(benches, bench_schedule_drain, bench_cascading_events);
criterion_main!(benches);
