//! Energy substrate performance: RAPL counter updates, wall-meter
//! integration, and the per-phase power model.

use criterion::{criterion_group, criterion_main, Criterion};
use deep_energy::{DevicePowerModel, PowerMeter, RaplBank, RaplMeasurement, Watts};
use deep_netsim::Seconds;
use std::hint::black_box;

fn bench_rapl(c: &mut Criterion) {
    c.bench_function("rapl_advance_10k", |b| {
        b.iter(|| {
            let mut bank = RaplBank::new();
            let m = RaplMeasurement::begin(&bank);
            for i in 0..10_000u32 {
                bank.advance_package(Watts::new(5.0 + (i % 7) as f64), Seconds::new(0.01));
            }
            black_box(m.package_energy(&bank))
        })
    });
}

fn bench_meter(c: &mut Criterion) {
    c.bench_function("wall_meter_1k_observations", |b| {
        b.iter(|| {
            let mut meter = PowerMeter::ketotek();
            for i in 0..1_000u32 {
                meter.observe(Watts::new(2.0 + (i % 5) as f64), Seconds::new(0.37));
            }
            black_box(meter.energy())
        })
    });
}

fn bench_power_model(c: &mut Criterion) {
    let model = DevicePowerModel::intel_i7_7700();
    c.bench_function("power_model_energy", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..1_000 {
                let td = Seconds::new(10.0 + i as f64 * 0.01);
                let e = model.energy(td, Seconds::new(1.0), Seconds::new(100.0));
                total += e.as_f64();
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_rapl, bench_meter, bench_power_model);
criterion_main!(benches);
