//! Seed-kernel baselines: verbatim copies of the pre-optimisation
//! byte-at-a-time GF(2^8) multiply-accumulate and per-block-schedule
//! SHA-256, benchmarked beside the optimised kernels so the speedup ratio
//! in PERF.md is reproducible on any machine with one command:
//!
//! ```text
//! cargo bench -p deep-bench --bench kernel_baselines
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

// ---- seed GF(2^8): log/exp tables, per-byte zero test ------------------

struct Gf256Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

#[allow(clippy::needless_range_loop)] // `i` indexes `exp` and `log` together
fn gf_tables() -> Gf256Tables {
    let mut log = [0u8; 256];
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    for i in 0..255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
    }
    for i in 255..512 {
        exp[i] = exp[i - 255];
    }
    Gf256Tables { log, exp }
}

fn seed_mul_acc(t: &Gf256Tables, dst: &mut [u8], src: &[u8], c: u8) {
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

// ---- seed SHA-256: full 64-word schedule per block ---------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn seed_compress(state: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
    }
    for t in 16..64 {
        let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
        let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
        w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for t in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h.wrapping_add(big_s1).wrapping_add(ch).wrapping_add(K[t]).wrapping_add(w[t]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

fn seed_sha256_blocks(data: &[u8]) -> [u32; 8] {
    // Whole blocks only — enough for a throughput baseline.
    let mut state = [
        0x6a09e667u32,
        0xbb67ae85,
        0x3c6ef372,
        0xa54ff53a,
        0x510e527f,
        0x9b05688c,
        0x1f83d9ab,
        0x5be0cd19,
    ];
    for block in data.chunks_exact(64) {
        seed_compress(&mut state, block);
    }
    state
}

fn buf(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn bench_seed_gf(c: &mut Criterion) {
    let len = 1 << 20;
    let tables = gf_tables();
    let src = buf(len, 1);
    let mut dst = buf(len, 2);
    let mut group = c.benchmark_group("seed_baseline");
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("gf256_mul_acc_1MiB", |b| {
        b.iter(|| {
            seed_mul_acc(&tables, black_box(&mut dst), black_box(&src), 0x8e);
            black_box(dst[0])
        })
    });
    group.finish();
}

fn bench_seed_rs_encode(c: &mut Criterion) {
    // The seed's RS encode inner work — scalar mul_acc over every
    // (parity row × data shard) pair — on pre-split reused shard buffers,
    // i.e. the same workload shape as the optimised `rs_encode_1MiB`
    // bench. The `rs_encode_1MiB` / `seed_baseline/rs_encode_1MiB` ratio
    // is the like-for-like kernel speedup.
    let data = buf(1 << 20, 9);
    let tables = gf_tables();
    let mut group = c.benchmark_group("seed_baseline/rs_encode_1MiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (k, m) in [(4usize, 2usize), (8, 4), (12, 4)] {
        let coder = deep_objectstore::ErasureCoder::new(k, m).unwrap();
        let shard_len = coder.shard_len(data.len());
        // Vandermonde-derived parity coefficients, same as the coder's.
        let rows: Vec<Vec<u8>> =
            (0..m).map(|p| (0..k).map(|j| ((p * k + j) % 254 + 2) as u8).collect()).collect();
        let data_shards: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                let start = (i * shard_len).min(data.len());
                let end = (start + shard_len).min(data.len());
                let mut s = data[start..end].to_vec();
                s.resize(shard_len, 0);
                s
            })
            .collect();
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; shard_len]; m];
        group.bench_with_input(
            criterion::BenchmarkId::from_parameter(format!("{k}+{m}")),
            &k,
            |b, _| {
                b.iter(|| {
                    for (p, row) in parity.iter_mut().zip(&rows) {
                        p.fill(0);
                        for (shard, &coef) in data_shards.iter().zip(row) {
                            seed_mul_acc(&tables, p, shard, coef);
                        }
                    }
                    black_box(parity[0][0])
                })
            },
        );
    }
    group.finish();
}

fn bench_seed_sha(c: &mut Criterion) {
    let len = 1 << 20;
    let data = buf(len, 3);
    let mut group = c.benchmark_group("seed_baseline");
    group.throughput(Throughput::Bytes(len as u64));
    group.bench_function("sha256_1MiB", |b| {
        b.iter(|| black_box(seed_sha256_blocks(black_box(&data))))
    });
    group.finish();
}

criterion_group!(benches, bench_seed_gf, bench_seed_rs_encode, bench_seed_sha);
criterion_main!(benches);
