//! Scheduler performance and ablations (DESIGN.md ablations 1 and 3):
//! DEEP with/without joint refinement vs the baselines, on the case
//! studies and on generated applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deep_core::{
    calibration, DeepScheduler, ExclusiveRegistry, GreedyDecoupled, RoundRobin, Scheduler,
};
use deep_dataflow::{apps, DagGenerator};
use std::hint::black_box;

fn bench_case_studies(c: &mut Criterion) {
    let tb = calibration::calibrated_testbed();
    let video = apps::video_processing();
    let text = apps::text_processing();
    let mut group = c.benchmark_group("schedule_case_studies");
    for (name, app) in [("video", &video), ("text", &text)] {
        group.bench_with_input(BenchmarkId::new("deep", name), app, |b, app| {
            b.iter(|| black_box(DeepScheduler::paper().schedule(app, &tb)))
        });
        group.bench_with_input(BenchmarkId::new("deep_no_refine", name), app, |b, app| {
            b.iter(|| black_box(DeepScheduler::without_refinement().schedule(app, &tb)))
        });
        group.bench_with_input(BenchmarkId::new("exclusive_hub", name), app, |b, app| {
            b.iter(|| black_box(ExclusiveRegistry::hub().schedule(app, &tb)))
        });
        group.bench_with_input(BenchmarkId::new("greedy_decoupled", name), app, |b, app| {
            b.iter(|| black_box(GreedyDecoupled.schedule(app, &tb)))
        });
        group.bench_with_input(BenchmarkId::new("round_robin", name), app, |b, app| {
            b.iter(|| black_box(RoundRobin.schedule(app, &tb)))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // DEEP's cost as applications grow (generated layered DAGs).
    let mut group = c.benchmark_group("deep_scaling");
    group.sample_size(10);
    for stages in [4usize, 8, 12] {
        let gen = DagGenerator { stages, width: (2, 3), ..DagGenerator::default() };
        let app = gen.generate(13);
        let mut tb = calibration::calibrated_testbed();
        tb.publish_application(&app);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}ms", app.len())),
            &app,
            |b, app| b.iter(|| black_box(DeepScheduler::without_refinement().schedule(app, &tb))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_case_studies, bench_scaling);
criterion_main!(benches);
