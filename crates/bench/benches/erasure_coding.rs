//! Reed–Solomon erasure coding throughput — the regional registry's
//! durability cost (DESIGN.md ablation 4: coding width vs amplification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_objectstore::ErasureCoder;
use std::hint::black_box;

fn object(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31) % 251) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    // The steady-state write path: caller-owned shard buffers via
    // `encode_into`, zero per-encode allocation after warmup — the shape a
    // sustained registry write load runs in. The allocate-per-call
    // convenience form is measured separately below.
    let data = object(1 << 20);
    let mut group = c.benchmark_group("rs_encode_1MiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (k, m) in [(4usize, 2usize), (8, 4), (12, 4)] {
        let coder = ErasureCoder::new(k, m).unwrap();
        let mut shards: Vec<Vec<u8>> = Vec::new();
        coder.encode_into(&data, &mut shards);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}+{m}")),
            &coder,
            |b, coder| {
                b.iter(|| {
                    coder.encode_into(&data, &mut shards);
                    black_box(shards[0][0])
                })
            },
        );
    }
    group.finish();
}

fn bench_encode_alloc(c: &mut Criterion) {
    // Allocate-per-call form: dominated by page faults on the fresh shard
    // buffers once the kernels are fast. Kept measurable so the allocation
    // tax stays visible.
    let data = object(1 << 20);
    let mut group = c.benchmark_group("rs_encode_alloc_1MiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (k, m) in [(4usize, 2usize), (8, 4), (12, 4)] {
        let coder = ErasureCoder::new(k, m).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}+{m}")),
            &coder,
            |b, coder| b.iter(|| black_box(coder.encode(&data))),
        );
    }
    group.finish();
}

fn bench_decode_paths(c: &mut Criterion) {
    let data = object(1 << 20);
    let coder = ErasureCoder::minio_default();
    let shards: Vec<Option<Vec<u8>>> = coder.encode(&data).into_iter().map(Some).collect();

    // Fast path: all data shards intact.
    c.bench_function("rs_decode_fast_path_4+2", |b| {
        b.iter(|| black_box(coder.decode(&shards, data.len()).unwrap()))
    });

    // Reconstruction path: two data shards lost.
    let mut degraded = shards.clone();
    degraded[0] = None;
    degraded[1] = None;
    c.bench_function("rs_decode_reconstruct_4+2", |b| {
        b.iter(|| black_box(coder.decode(&degraded, data.len()).unwrap()))
    });
}

fn bench_heal(c: &mut Criterion) {
    let data = object(1 << 18);
    let coder = ErasureCoder::new(4, 2).unwrap();
    c.bench_function("rs_reconstruct_shards_256KiB", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> =
                coder.encode(&data).into_iter().map(Some).collect();
            shards[2] = None;
            shards[5] = None;
            coder.reconstruct_shards(&mut shards, data.len()).unwrap();
            black_box(shards)
        })
    });
}

criterion_group!(benches, bench_encode, bench_encode_alloc, bench_decode_paths, bench_heal);
criterion_main!(benches);
