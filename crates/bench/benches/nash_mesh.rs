//! Mesh-aware Nash scheduling: the cost of widening the stage game from
//! the paper's two registries to the whole mesh.
//!
//! Groups:
//! * `nash_mesh_strategy_space` — DEEP over 0–3 regional mirrors (the
//!   |R|×|D| stage game + joint refinement as the strategy space grows);
//! * `nash_mesh_peer` — the peer-aware scheduler on the warm continuum
//!   fleet (payoffs price split pulls) vs the peer-blind paper scheduler;
//! * `nash_mesh_equilibrium_check` — verifying a schedule is a pure Nash
//!   equilibrium of the mesh-wide joint game;
//! * `nash_mesh_fleet` — the fleet axis: the auto-selected sparse path
//!   on 50/200/1,000-device synthetic fleets at 10 registries, plus the
//!   forced-dense path where it is still feasible (50/200 devices × 2
//!   registries) to place the crossover. The scaling curve is recorded
//!   in PERF.md ("Fleet-scale solver").
//!
//! The equilibrium-quality numbers this bench's scenarios produce (split
//! vs best-single deployment time) are printed by
//! `examples/registry_sweep.rs` and recorded in PERF.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deep_core::{
    calibration, continuum_testbed, synthetic_fleet_testbed, DeepScheduler, Scheduler,
};
use deep_dataflow::apps;
use deep_netsim::{Bandwidth, Seconds};
use deep_simulator::{execute, ExecutorConfig, RegistryChoice, Schedule, Testbed, DEVICE_MEDIUM};
use std::hint::black_box;

fn mirrored_testbed(mirrors: usize) -> Testbed {
    let mut tb = calibration::calibrated_testbed();
    for k in 0..mirrors {
        tb.add_regional_mirror(Bandwidth::megabytes_per_sec(10.0 + k as f64), Seconds::new(5.0));
    }
    tb
}

fn bench_strategy_space(c: &mut Criterion) {
    let text = apps::text_processing();
    let mut group = c.benchmark_group("nash_mesh_strategy_space");
    group.sample_size(10);
    for mirrors in [0usize, 1, 2, 3] {
        let tb = mirrored_testbed(mirrors);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}r", 2 + mirrors)),
            &text,
            |b, app| b.iter(|| black_box(DeepScheduler::paper().schedule(app, &tb))),
        );
    }
    group.finish();
}

fn bench_peer_pricing(c: &mut Criterion) {
    // Warm continuum fleet: the medium device already ran the app; the
    // scheduler prices what the fleet holds.
    let app = apps::video_processing();
    let mut tb = continuum_testbed();
    let warm = Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM);
    execute(&mut tb, &app, &warm, &ExecutorConfig::default()).expect("warm-up run");
    let mut group = c.benchmark_group("nash_mesh_peer");
    group.sample_size(10);
    group.bench_function("peer_blind", |b| {
        b.iter(|| black_box(DeepScheduler::paper().schedule(&app, &tb)))
    });
    group.bench_function("peer_priced", |b| {
        b.iter(|| black_box(DeepScheduler::with_peer_sharing().schedule(&app, &tb)))
    });
    group.finish();
}

fn bench_equilibrium_check(c: &mut Criterion) {
    let tb = mirrored_testbed(2);
    let app = apps::text_processing();
    let schedule = DeepScheduler::paper().schedule(&app, &tb);
    c.bench_function("nash_mesh_equilibrium_check", |b| {
        b.iter(|| black_box(DeepScheduler::is_joint_equilibrium(&app, &tb, &schedule)))
    });
}

fn bench_fleet(c: &mut Criterion) {
    let app =
        deep_dataflow::DagGenerator { stages: 5, width: (2, 4), ..Default::default() }.generate(42);
    let mut group = c.benchmark_group("nash_mesh_fleet");
    group.sample_size(10);
    // The sparse path across the fleet axis (auto-selected: every cell
    // sits above DEFAULT_SPARSE_THRESHOLD).
    for devices in [50usize, 200, 1000] {
        let mut tb = synthetic_fleet_testbed(devices, 10, 42);
        tb.publish_application(&app);
        group.bench_with_input(
            BenchmarkId::new("sparse", format!("{devices}d_10r")),
            &app,
            |b, app| b.iter(|| black_box(DeepScheduler::paper().schedule(app, &tb))),
        );
    }
    // The dense path where it is still affordable: support enumeration
    // over the full |R|×|D| bimatrix per member. 1,000×dense is omitted
    // on purpose — it is exactly what the sparse path exists to avoid.
    for devices in [50usize, 200] {
        let mut tb = synthetic_fleet_testbed(devices, 2, 42);
        tb.publish_application(&app);
        let dense = DeepScheduler { sparse_threshold: usize::MAX, ..DeepScheduler::paper() };
        group.bench_with_input(
            BenchmarkId::new("dense", format!("{devices}d_2r")),
            &app,
            |b, app| b.iter(|| black_box(dense.schedule(app, &tb))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategy_space,
    bench_peer_pricing,
    bench_equilibrium_check,
    bench_fleet
);
criterion_main!(benches);
