//! Nash-equilibrium solver performance: support enumeration vs
//! Lemke–Howson across game sizes, plus the classic validation games.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deep_game::{classic, lemke_howson, support_enumeration, Bimatrix, Matrix};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_bimatrix(rows: usize, cols: usize, seed: u64) -> Bimatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(0.0..10.0));
    let b = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(0.0..10.0));
    Bimatrix::new(a, b)
}

fn bench_support_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("support_enumeration");
    for n in [2usize, 3, 4, 5] {
        let game = random_bimatrix(n, n, 42 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, g| {
            b.iter(|| black_box(support_enumeration(g)))
        });
    }
    group.finish();
}

fn bench_lemke_howson(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemke_howson");
    for n in [2usize, 4, 8, 16] {
        let game = random_bimatrix(n, n, 7 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, g| {
            b.iter(|| black_box(lemke_howson(g, 0)))
        });
    }
    group.finish();
}

fn bench_deployment_shaped_game(c: &mut Criterion) {
    // The 2×2 (registry × device) game DEEP solves per microservice.
    let game = random_bimatrix(2, 2, 99);
    c.bench_function("deep_stage_game_2x2", |b| b.iter(|| black_box(support_enumeration(&game))));
    let pd = classic::prisoners_dilemma();
    c.bench_function("prisoners_dilemma", |b| b.iter(|| black_box(support_enumeration(&pd))));
}

criterion_group!(
    benches,
    bench_support_enumeration,
    bench_lemke_howson,
    bench_deployment_shaped_game
);
criterion_main!(benches);
