//! SHA-256 throughput — the content-address function of the registry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deep_registry::sha256::{sha256, Sha256};
use std::hint::black_box;

fn bench_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256_oneshot");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha256(d)))
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    // Layer-by-layer hashing as a registry push would do it.
    let chunk = vec![0xabu8; 8192];
    c.bench_function("sha256_incremental_64k_in_8k_chunks", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for _ in 0..8 {
                h.update(&chunk);
            }
            black_box(h.finalize())
        })
    });
}

criterion_group!(benches, bench_oneshot, bench_incremental);
criterion_main!(benches);
