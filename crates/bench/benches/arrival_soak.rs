//! Arrival-plane re-equilibration costs: what one admission pays under
//! each repair policy, and what a full soak over the checked-in arrival
//! scenario costs end to end.
//!
//! The per-admission pair is the acceptance headline: warm-starting
//! best-response dynamics from the incumbent equilibrium
//! (`incremental_repair`) must beat the scenario-priced full re-solve
//! by at least 5x, because the full path re-runs the Monte-Carlo
//! `E[Td]` pricing for every (microservice, replica, route) triple
//! while repair re-prices only the routes the incumbent can deviate to.

use criterion::{criterion_group, criterion_main, Criterion};
use deep_arrival::{run_plane, ArrivalPlane, RepairPolicy, DEFAULT_DEVIATION_BUDGET};
use deep_core::{scenario_scheduler, scenario_testbed, Scheduler};
use deep_scenario::Scenario;
use std::hint::black_box;

const ARRIVAL_SOAK: &str = include_str!("../../../scenarios/arrival_soak.toml");

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_admission");
    group.sample_size(10);
    let scenario = Scenario::parse(ARRIVAL_SOAK).expect("fixture parses");
    let app = scenario.application();
    let tb = scenario_testbed(&scenario);
    let scheduler = scenario_scheduler(&scenario);
    let incumbent = scheduler.schedule(&app, &tb);
    // One admission, full policy: re-solve the whole game from scratch.
    group.bench_function("full_resolve", |b| b.iter(|| black_box(scheduler.schedule(&app, &tb))));
    // One admission, repair policy: warm-start from the incumbent.
    group.bench_function("incremental_repair", |b| {
        b.iter(|| {
            black_box(scheduler.incremental_repair(&app, &tb, &incumbent, DEFAULT_DEVIATION_BUDGET))
        })
    });
    group.finish();
}

fn bench_soak(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_soak");
    group.sample_size(10);
    let scenario = Scenario::parse(ARRIVAL_SOAK).expect("fixture parses");
    let cell = scenario.expand().into_iter().next().expect("grid is non-empty");
    // The whole plane: seeded arrivals, admissions at wave barriers,
    // queue dynamics, chaos timeline — per policy.
    group.bench_function("plane_incremental_repair", |b| {
        b.iter(|| black_box(run_plane(&cell, &ArrivalPlane::default())))
    });
    group.bench_function("plane_full_resolve", |b| {
        b.iter(|| {
            black_box(run_plane(
                &cell,
                &ArrivalPlane { policy: RepairPolicy::Full, ..ArrivalPlane::default() },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_admission, bench_soak);
criterion_main!(benches);
