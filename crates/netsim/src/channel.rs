//! A single network channel with optional contention.
//!
//! The paper's model treats each channel as an isolated pipe of constant
//! bandwidth. Real edge uplinks are shared; to let ablation experiments
//! quantify how much that idealisation matters, [`Channel`] supports three
//! contention policies. The default, [`ContentionPolicy::None`], reproduces
//! the paper exactly.

use crate::units::{Bandwidth, DataSize, Seconds};
use serde::{Deserialize, Serialize};

/// How concurrent flows share a channel's bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ContentionPolicy {
    /// Every flow sees the full bandwidth (the paper's assumption).
    #[default]
    None,
    /// `n` concurrent flows each get `BW / n` (processor-sharing).
    FairShare,
    /// Flows are serialized: the channel serves one flow at a time (FIFO).
    Fifo,
}

/// A directed channel between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    bandwidth: Bandwidth,
    policy: ContentionPolicy,
}

impl Channel {
    /// A channel with the given nominal bandwidth and no contention.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Channel { bandwidth, policy: ContentionPolicy::None }
    }

    /// Override the contention policy.
    pub fn with_policy(mut self, policy: ContentionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Nominal (uncontended) bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Configured contention policy.
    pub fn policy(&self) -> ContentionPolicy {
        self.policy
    }

    /// Effective bandwidth seen by one of `concurrent_flows` flows.
    ///
    /// `concurrent_flows` counts *all* flows on the channel including the
    /// one being asked about, so it must be ≥ 1.
    pub fn effective_bandwidth(&self, concurrent_flows: usize) -> Bandwidth {
        assert!(concurrent_flows >= 1, "a flow cannot contend with fewer than itself");
        match self.policy {
            ContentionPolicy::None => self.bandwidth,
            ContentionPolicy::FairShare => self.bandwidth.scale(1.0 / concurrent_flows as f64),
            // Under FIFO the flow eventually gets the full pipe; the *delay*
            // is modelled by the caller queueing transfers back-to-back.
            ContentionPolicy::Fifo => self.bandwidth,
        }
    }

    /// Time for one flow among `concurrent_flows` to move `size`.
    ///
    /// Under FIFO this is the service time only; queueing delay is the
    /// responsibility of the event-driven layer that knows arrival order.
    pub fn transfer_time(&self, size: DataSize, concurrent_flows: usize) -> Seconds {
        if size.is_zero() {
            return Seconds::ZERO;
        }
        let bw = self.effective_bandwidth(concurrent_flows);
        if bw.as_bytes_per_sec().is_infinite() {
            Seconds::ZERO
        } else {
            size / bw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transfer() {
        let ch = Channel::new(Bandwidth::megabytes_per_sec(100.0));
        let t = ch.transfer_time(DataSize::megabytes(500.0), 1);
        assert!((t.as_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn none_policy_ignores_contention() {
        let ch = Channel::new(Bandwidth::megabytes_per_sec(100.0));
        assert_eq!(ch.effective_bandwidth(8), Bandwidth::megabytes_per_sec(100.0));
    }

    #[test]
    fn fair_share_divides_bandwidth() {
        let ch = Channel::new(Bandwidth::megabytes_per_sec(100.0))
            .with_policy(ContentionPolicy::FairShare);
        assert_eq!(ch.effective_bandwidth(4), Bandwidth::megabytes_per_sec(25.0));
        let t = ch.transfer_time(DataSize::megabytes(100.0), 4);
        assert!((t.as_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_keeps_service_bandwidth() {
        let ch =
            Channel::new(Bandwidth::megabytes_per_sec(50.0)).with_policy(ContentionPolicy::Fifo);
        assert_eq!(ch.effective_bandwidth(10), Bandwidth::megabytes_per_sec(50.0));
    }

    #[test]
    fn zero_size_is_free_even_under_contention() {
        let ch = Channel::new(Bandwidth::megabytes_per_sec(1.0))
            .with_policy(ContentionPolicy::FairShare);
        assert_eq!(ch.transfer_time(DataSize::ZERO, 100), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "fewer than itself")]
    fn zero_flows_panics() {
        let ch = Channel::new(Bandwidth::megabytes_per_sec(1.0));
        ch.effective_bandwidth(0);
    }

    #[test]
    fn infinite_channel_is_instant() {
        let ch = Channel::new(Bandwidth::infinite());
        assert_eq!(ch.transfer_time(DataSize::gigabytes(100.0), 1), Seconds::ZERO);
    }
}
