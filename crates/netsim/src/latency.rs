//! Round-trip-time extension — quantifying what the paper neglects.
//!
//! The paper's network model "neglects the network round-trip time (RTT),
//! focusing exclusively on bandwidth". This module adds the neglected
//! term so experiments can *measure* how much that simplification costs:
//! a transfer of `size` in `chunks` sequential requests over a link with
//! round-trip time `rtt` takes `size/BW + chunks·rtt`, and TCP ramp-up is
//! approximated by a slow-start penalty on short transfers.

use crate::units::{Bandwidth, DataSize, Seconds};
use serde::{Deserialize, Serialize};

/// A link with both bandwidth and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatentLink {
    pub bandwidth: Bandwidth,
    /// One round trip.
    pub rtt: Seconds,
    /// TCP initial congestion window, in bytes (used by the slow-start
    /// approximation; 10 segments ≈ 14.6 kB is the modern default).
    pub init_cwnd: DataSize,
}

impl LatentLink {
    /// A link with the given bandwidth and RTT, default initial window.
    pub fn new(bandwidth: Bandwidth, rtt: Seconds) -> Self {
        assert!(rtt.as_f64() >= 0.0, "RTT cannot be negative");
        LatentLink { bandwidth, rtt, init_cwnd: DataSize::kilobytes(14.6) }
    }

    /// The paper's idealisation: same bandwidth, zero RTT.
    pub fn ideal(bandwidth: Bandwidth) -> Self {
        Self::new(bandwidth, Seconds::ZERO)
    }

    /// Transfer time with per-request round trips: `chunks` sequential
    /// request/response exchanges (e.g. one per image layer) each pay one
    /// RTT before their bytes flow.
    pub fn transfer_time(&self, size: DataSize, chunks: usize) -> Seconds {
        assert!(chunks >= 1, "a transfer is at least one request");
        let wire = crate::transfer::transfer_time(size, self.bandwidth);
        wire + self.rtt * chunks as f64
    }

    /// Slow-start-aware transfer time: doubling congestion windows from
    /// `init_cwnd` until the pipe is full, then line rate. A good
    /// approximation for short transfers where bandwidth never saturates.
    pub fn transfer_time_slow_start(&self, size: DataSize) -> Seconds {
        if size.is_zero() || self.bandwidth.as_bytes_per_sec().is_infinite() {
            return crate::transfer::transfer_time(size, self.bandwidth);
        }
        if self.rtt == Seconds::ZERO {
            return crate::transfer::transfer_time(size, self.bandwidth);
        }
        // Bandwidth-delay product: the window at which the pipe is full.
        let bdp = self.bandwidth * self.rtt;
        let mut window = self.init_cwnd.as_bytes().max(1);
        let mut sent: u64 = 0;
        let mut time = Seconds::ZERO;
        let total = size.as_bytes();
        // Ramp-up: each RTT sends one window.
        while sent < total && window < bdp.as_bytes().max(1) {
            time += self.rtt;
            sent += window;
            window *= 2;
        }
        if sent < total {
            // Remainder at line rate.
            time += DataSize::bytes(total - sent) / self.bandwidth;
        }
        time
    }

    /// Relative error of the paper's zero-RTT idealisation for a transfer
    /// of `size` in `chunks` requests: `(t_real − t_ideal) / t_real`.
    pub fn idealisation_error(&self, size: DataSize, chunks: usize) -> f64 {
        let real = self.transfer_time(size, chunks).as_f64();
        if real == 0.0 {
            return 0.0;
        }
        let ideal = crate::transfer::transfer_time(size, self.bandwidth).as_f64();
        (real - ideal) / real
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LatentLink {
        LatentLink::new(Bandwidth::megabytes_per_sec(10.0), Seconds::new(0.05))
    }

    #[test]
    fn zero_rtt_matches_bandwidth_model() {
        let l = LatentLink::ideal(Bandwidth::megabytes_per_sec(10.0));
        let t = l.transfer_time(DataSize::megabytes(100.0), 5);
        assert!((t.as_f64() - 10.0).abs() < 1e-9);
        assert_eq!(l.idealisation_error(DataSize::megabytes(100.0), 5), 0.0);
    }

    #[test]
    fn per_chunk_rtt_adds_up() {
        let l = link();
        // 100 MB at 10 MB/s = 10 s, plus 4 layers × 50 ms.
        let t = l.transfer_time(DataSize::megabytes(100.0), 4);
        assert!((t.as_f64() - 10.2).abs() < 1e-9);
    }

    #[test]
    fn idealisation_error_small_for_big_images_large_for_small_ones() {
        let l = link();
        // 5.78 GB training image, 4 layers: RTT is noise.
        let big = l.idealisation_error(DataSize::gigabytes(5.78), 4);
        assert!(big < 0.001, "{big}");
        // 1 MB manifest fetch: RTT dominates.
        let small = l.idealisation_error(DataSize::megabytes(1.0), 3);
        assert!(small > 0.5, "{small}");
        // This asymmetry justifies the paper's neglect for its GB-scale
        // images.
    }

    #[test]
    fn slow_start_penalises_short_transfers() {
        let l = link();
        let short = DataSize::kilobytes(100.0);
        let with_ss = l.transfer_time_slow_start(short).as_f64();
        let ideal = crate::transfer::transfer_time(short, l.bandwidth).as_f64();
        assert!(with_ss > ideal * 2.0, "slow start dominates: {with_ss} vs {ideal}");
    }

    #[test]
    fn slow_start_converges_to_line_rate_for_long_transfers() {
        let l = link();
        let long = DataSize::gigabytes(1.0);
        let with_ss = l.transfer_time_slow_start(long).as_f64();
        let ideal = crate::transfer::transfer_time(long, l.bandwidth).as_f64();
        assert!((with_ss - ideal) / ideal < 0.01, "{with_ss} vs {ideal}");
        assert!(with_ss >= ideal);
    }

    #[test]
    fn slow_start_degenerates_cleanly() {
        let l = LatentLink::ideal(Bandwidth::megabytes_per_sec(5.0));
        let t = l.transfer_time_slow_start(DataSize::megabytes(10.0));
        assert!((t.as_f64() - 2.0).abs() < 1e-9);
        assert_eq!(link().transfer_time_slow_start(DataSize::ZERO), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_chunks_rejected() {
        link().transfer_time(DataSize::megabytes(1.0), 0);
    }
}
