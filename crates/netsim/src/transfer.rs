//! Transfer-time arithmetic shared by every layer above.
//!
//! Besides the scalar `Size / BW` helper the module provides
//! [`TransferPlan`], a piecewise multi-segment transfer used when an image
//! pull is split across cached/uncached layers or when a dataflow crosses a
//! two-hop path whose bottleneck differs per segment.

use crate::units::{Bandwidth, DataSize, Seconds};
use serde::{Deserialize, Serialize};

/// `size / bw`, returning zero for empty transfers or infinite links.
#[inline]
pub fn transfer_time(size: DataSize, bw: Bandwidth) -> Seconds {
    if size.is_zero() || bw.as_bytes_per_sec().is_infinite() {
        Seconds::ZERO
    } else {
        assert!(!bw.is_zero(), "cannot transfer {size} over a zero-bandwidth link");
        size / bw
    }
}

/// One segment of a piecewise transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub size: DataSize,
    pub bandwidth: Bandwidth,
}

/// A transfer consisting of sequential segments (e.g. the uncached layers of
/// an image, each fetched over the registry link, followed by a local
/// extraction stage at disk bandwidth).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    segments: Vec<Segment>,
}

impl TransferPlan {
    /// An empty plan that takes zero time.
    pub fn empty() -> Self {
        TransferPlan { segments: Vec::new() }
    }

    /// Append a segment.
    pub fn push(&mut self, size: DataSize, bandwidth: Bandwidth) {
        self.segments.push(Segment { size, bandwidth });
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, size: DataSize, bandwidth: Bandwidth) -> Self {
        self.push(size, bandwidth);
        self
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the plan has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total bytes moved across all segments.
    pub fn total_size(&self) -> DataSize {
        self.segments.iter().map(|s| s.size).sum()
    }

    /// Total wall time: segments are sequential.
    pub fn total_time(&self) -> Seconds {
        self.segments.iter().map(|s| transfer_time(s.size, s.bandwidth)).sum()
    }

    /// Iterate over segments.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_helper_matches_division() {
        let t = transfer_time(DataSize::gigabytes(0.7), Bandwidth::megabytes_per_sec(70.0));
        assert!((t.as_f64() - 10.0).abs() < 1e-9);
        assert_eq!(transfer_time(DataSize::ZERO, Bandwidth::megabytes_per_sec(1.0)), Seconds::ZERO);
        assert_eq!(transfer_time(DataSize::gigabytes(3.0), Bandwidth::infinite()), Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn nonzero_over_zero_link_panics() {
        transfer_time(DataSize::bytes(1), Bandwidth::bytes_per_sec(0.0));
    }

    #[test]
    fn plan_accumulates_sequentially() {
        let plan = TransferPlan::empty()
            .with(DataSize::megabytes(100.0), Bandwidth::megabytes_per_sec(50.0)) // 2 s
            .with(DataSize::megabytes(30.0), Bandwidth::megabytes_per_sec(10.0)); // 3 s
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.total_size(), DataSize::megabytes(130.0));
        assert!((plan.total_time().as_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_is_free() {
        let plan = TransferPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.total_time(), Seconds::ZERO);
        assert_eq!(plan.total_size(), DataSize::ZERO);
    }

    #[test]
    fn zero_sized_segments_cost_nothing() {
        let plan = TransferPlan::empty()
            .with(DataSize::ZERO, Bandwidth::megabytes_per_sec(1.0))
            .with(DataSize::megabytes(10.0), Bandwidth::megabytes_per_sec(10.0));
        assert!((plan.total_time().as_f64() - 1.0).abs() < 1e-9);
    }
}
