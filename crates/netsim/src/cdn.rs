//! Docker Hub CDN distribution model.
//!
//! The paper (Section I) explains Docker Hub's delivery performance by its
//! CDN-based distribution: images are served from a point of presence (PoP)
//! geographically close to the client, and the effective pull bandwidth
//! depends on which PoP class serves the request. We model a small set of
//! PoP classes — from an in-region cache to a trans-continental origin —
//! each scaling the client's nominal bandwidth. This is what makes
//! "exclusively Docker Hub" competitive in the paper: the CDN hides most of
//! the distance to the registry's origin servers, leaving only a small gap
//! for the regional registry to close.

use crate::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Which tier of the CDN serves a pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PopClass {
    /// A PoP inside the client's metro region (best case).
    Regional,
    /// A PoP on the same continent.
    Continental,
    /// The origin data centre, across continents (worst case, cold cache).
    Origin,
}

impl PopClass {
    /// Fraction of the client's nominal bandwidth realised when served by
    /// this PoP class. Calibrated so that a warm CDN is nearly as fast as a
    /// LAN registry, matching the paper's observation that Docker Hub stays
    /// competitive with the regional registry.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            PopClass::Regional => 0.95,
            PopClass::Continental => 0.70,
            PopClass::Origin => 0.35,
        }
    }

    /// All classes, best first.
    pub fn all() -> [PopClass; 3] {
        [PopClass::Regional, PopClass::Continental, PopClass::Origin]
    }
}

/// A CDN with a configurable hit distribution over PoP classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdnModel {
    /// Probability that a pull is served regionally (else it cascades).
    regional_hit: f64,
    /// Probability that a regional miss is served continentally.
    continental_hit: f64,
}

impl CdnModel {
    /// A CDN where `regional_hit` of requests are served by a regional PoP
    /// and `continental_hit` of the remainder by a continental PoP; the
    /// rest go to origin. Probabilities must lie in `[0, 1]`.
    pub fn new(regional_hit: f64, continental_hit: f64) -> Self {
        assert!((0.0..=1.0).contains(&regional_hit), "regional_hit out of [0,1]");
        assert!((0.0..=1.0).contains(&continental_hit), "continental_hit out of [0,1]");
        CdnModel { regional_hit, continental_hit }
    }

    /// The warm-cache CDN used for Docker Hub in the paper reproduction:
    /// popular base images are virtually always at the nearest PoP.
    pub fn warm() -> Self {
        CdnModel::new(0.9, 0.8)
    }

    /// A cold CDN (first pull of a rare image).
    pub fn cold() -> Self {
        CdnModel::new(0.0, 0.2)
    }

    /// Deterministic PoP selection given a uniform sample in `[0, 1)`.
    ///
    /// Taking the sample as a parameter (instead of an RNG) keeps this crate
    /// free of randomness; the simulator supplies seeded samples.
    pub fn classify(&self, sample: f64) -> PopClass {
        assert!((0.0..1.0).contains(&sample), "sample must be in [0,1)");
        if sample < self.regional_hit {
            PopClass::Regional
        } else {
            // renormalise the remaining mass
            let rest =
                (sample - self.regional_hit) / (1.0 - self.regional_hit).max(f64::MIN_POSITIVE);
            if rest < self.continental_hit {
                PopClass::Continental
            } else {
                PopClass::Origin
            }
        }
    }

    /// Expected bandwidth factor across the hit distribution.
    pub fn expected_factor(&self) -> f64 {
        let p_reg = self.regional_hit;
        let p_cont = (1.0 - p_reg) * self.continental_hit;
        let p_orig = 1.0 - p_reg - p_cont;
        p_reg * PopClass::Regional.bandwidth_factor()
            + p_cont * PopClass::Continental.bandwidth_factor()
            + p_orig * PopClass::Origin.bandwidth_factor()
    }

    /// Effective expected bandwidth for a client with the given nominal
    /// bandwidth — the `BW_gj` the completion-time model should use for a
    /// Hub pull.
    pub fn expected_bandwidth(&self, nominal: Bandwidth) -> Bandwidth {
        nominal.scale(self.expected_factor())
    }

    /// Effective bandwidth for one concrete pull served by `pop`.
    pub fn bandwidth_via(&self, nominal: Bandwidth, pop: PopClass) -> Bandwidth {
        nominal.scale(pop.bandwidth_factor())
    }
}

impl Default for CdnModel {
    fn default() -> Self {
        CdnModel::warm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_ordered_best_first() {
        let [a, b, c] = PopClass::all();
        assert!(a.bandwidth_factor() > b.bandwidth_factor());
        assert!(b.bandwidth_factor() > c.bandwidth_factor());
    }

    #[test]
    fn classify_partitions_unit_interval() {
        let cdn = CdnModel::new(0.5, 0.5);
        assert_eq!(cdn.classify(0.0), PopClass::Regional);
        assert_eq!(cdn.classify(0.49), PopClass::Regional);
        assert_eq!(cdn.classify(0.5), PopClass::Continental);
        assert_eq!(cdn.classify(0.74), PopClass::Continental);
        assert_eq!(cdn.classify(0.75), PopClass::Origin);
        assert_eq!(cdn.classify(0.99), PopClass::Origin);
    }

    #[test]
    fn warm_cdn_expected_factor_close_to_regional() {
        let f = CdnModel::warm().expected_factor();
        assert!(f > 0.9, "warm CDN should retain >90% of nominal bandwidth, got {f}");
        assert!(f < 1.0);
    }

    #[test]
    fn cold_cdn_much_slower() {
        assert!(CdnModel::cold().expected_factor() < 0.5);
    }

    #[test]
    fn expected_bandwidth_scales_nominal() {
        let cdn = CdnModel::new(1.0, 0.0); // always regional
        let bw = cdn.expected_bandwidth(Bandwidth::megabytes_per_sec(100.0));
        assert!((bw.as_megabytes_per_sec() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_via_specific_pop() {
        let cdn = CdnModel::warm();
        let bw = cdn.bandwidth_via(Bandwidth::megabytes_per_sec(100.0), PopClass::Origin);
        assert!((bw.as_megabytes_per_sec() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn expected_factor_is_probability_weighted() {
        // p_reg=0, cont_hit=1 => everything continental.
        let cdn = CdnModel::new(0.0, 1.0);
        assert!((cdn.expected_factor() - PopClass::Continental.bandwidth_factor()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_panics() {
        CdnModel::new(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "sample must be in [0,1)")]
    fn invalid_sample_panics() {
        CdnModel::warm().classify(1.0);
    }
}
