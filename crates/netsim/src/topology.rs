//! Device and registry interconnect topology.
//!
//! Models the paper's `H = {h_kj}` device-to-device bandwidth matrix and the
//! registry-to-device bandwidths `BW_gj` (Section III-B/C). Bandwidths are
//! directional: `BW(k → j)` may differ from `BW(j → k)` (edge uplinks are
//! commonly asymmetric). The loopback channel `h_jj` defaults to an
//! effectively infinite memory-speed link so co-located microservices pay no
//! transfer cost, matching the paper's testbed where co-scheduled stages
//! exchange data through the local filesystem.
//!
//! Beyond dataflow transfers, device-to-device links are also the substrate
//! of the simulator's *peer data plane* (EdgePier-style image distribution,
//! arXiv:2109.12983): a registry-free [`Topology`] whose link `k → j` is the
//! effective rate at which device `k` serves cached image layers to device
//! `j`. [`Topology::uniform_mesh`] builds the degenerate all-pairs-equal
//! plane (the scalar `peer_bw` model of earlier revisions), and
//! [`Topology::set_device_bandwidth`] dents individual links for hot-peer
//! and throttled-uplink scenarios.

use crate::units::{Bandwidth, DataSize, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an edge device (`d_j` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

/// Index of a Docker registry (`r_g` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegistryId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for RegistryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Errors raised while constructing or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A device index was out of range.
    UnknownDevice(DeviceId),
    /// A registry index was out of range.
    UnknownRegistry(RegistryId),
    /// A required link has no bandwidth assigned.
    MissingLink(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            TopologyError::UnknownRegistry(r) => write!(f, "unknown registry {r}"),
            TopologyError::MissingLink(s) => write!(f, "missing link: {s}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Bandwidth used for a device's link to itself: data moved through local
/// memory/disk, effectively instantaneous relative to network transfers.
pub const LOOPBACK: Bandwidth = Bandwidth::infinite();

/// The full interconnect: `n` devices, `m` registries, and the two
/// bandwidth matrices of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    devices: usize,
    registries: usize,
    /// `device_bw[k][j]` = `BW_kj`, bandwidth from device `k` to device `j`.
    device_bw: Vec<Vec<Bandwidth>>,
    /// `registry_bw[g][j]` = `BW_gj`, bandwidth from registry `g` to device `j`.
    registry_bw: Vec<Vec<Bandwidth>>,
}

impl Topology {
    /// The complete `devices × devices` mesh with every off-diagonal link
    /// at `bw` (self-links stay [`LOOPBACK`]) and no registries: the
    /// uniform peer plane, equivalent to a single scalar per-pair
    /// bandwidth.
    pub fn uniform_mesh(devices: usize, bw: Bandwidth) -> Self {
        TopologyBuilder::new(devices, 0)
            .uniform_device_bandwidth(bw)
            .build()
            .expect("uniform fill leaves no missing link")
    }

    /// Number of devices `N_D`.
    pub fn device_count(&self) -> usize {
        self.devices
    }

    /// Number of registries `N_R`.
    pub fn registry_count(&self) -> usize {
        self.registries
    }

    /// Iterate over all device ids.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> {
        (0..self.devices).map(DeviceId)
    }

    /// Iterate over all registry ids.
    pub fn registries(&self) -> impl Iterator<Item = RegistryId> {
        (0..self.registries).map(RegistryId)
    }

    /// `BW_kj`: bandwidth for dataflow transfer from device `k` to device `j`.
    pub fn device_bandwidth(
        &self,
        from: DeviceId,
        to: DeviceId,
    ) -> Result<Bandwidth, TopologyError> {
        self.check_device(from)?;
        self.check_device(to)?;
        Ok(self.device_bw[from.0][to.0])
    }

    /// `BW_gj`: bandwidth for image pull from registry `g` to device `j`.
    pub fn registry_bandwidth(
        &self,
        from: RegistryId,
        to: DeviceId,
    ) -> Result<Bandwidth, TopologyError> {
        self.check_registry(from)?;
        self.check_device(to)?;
        Ok(self.registry_bw[from.0][to.0])
    }

    /// Time to move `size` from device `k` to device `j` (`Tc` term).
    pub fn device_transfer_time(
        &self,
        from: DeviceId,
        to: DeviceId,
        size: DataSize,
    ) -> Result<Seconds, TopologyError> {
        let bw = self.device_bandwidth(from, to)?;
        Ok(div_or_zero(size, bw))
    }

    /// Time to pull `size` from registry `g` onto device `j` (`Td` term).
    pub fn registry_transfer_time(
        &self,
        from: RegistryId,
        to: DeviceId,
        size: DataSize,
    ) -> Result<Seconds, TopologyError> {
        let bw = self.registry_bandwidth(from, to)?;
        Ok(div_or_zero(size, bw))
    }

    /// Overwrite one directed device link `BW_kj` in place — how sweeps
    /// and fault scenarios throttle a single uplink without rebuilding
    /// the whole matrix.
    pub fn set_device_bandwidth(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        bw: Bandwidth,
    ) -> Result<(), TopologyError> {
        self.check_device(from)?;
        self.check_device(to)?;
        self.device_bw[from.0][to.0] = bw;
        Ok(())
    }

    fn check_device(&self, d: DeviceId) -> Result<(), TopologyError> {
        if d.0 < self.devices {
            Ok(())
        } else {
            Err(TopologyError::UnknownDevice(d))
        }
    }

    fn check_registry(&self, r: RegistryId) -> Result<(), TopologyError> {
        if r.0 < self.registries {
            Ok(())
        } else {
            Err(TopologyError::UnknownRegistry(r))
        }
    }
}

#[inline]
fn div_or_zero(size: DataSize, bw: Bandwidth) -> Seconds {
    if size.is_zero() || bw.as_bytes_per_sec().is_infinite() {
        Seconds::ZERO
    } else {
        size / bw
    }
}

/// Builder for [`Topology`]. Device self-links default to [`LOOPBACK`];
/// all other links must be assigned explicitly (or via the `uniform_*`
/// helpers) before [`TopologyBuilder::build`] succeeds.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    devices: usize,
    registries: usize,
    device_bw: Vec<Vec<Option<Bandwidth>>>,
    registry_bw: Vec<Vec<Option<Bandwidth>>>,
}

impl TopologyBuilder {
    /// Start a topology with `devices` edge devices and `registries` registries.
    pub fn new(devices: usize, registries: usize) -> Self {
        let mut device_bw = vec![vec![None; devices]; devices];
        for (j, row) in device_bw.iter_mut().enumerate() {
            row[j] = Some(LOOPBACK);
        }
        TopologyBuilder {
            devices,
            registries,
            device_bw,
            registry_bw: vec![vec![None; devices]; registries],
        }
    }

    /// Set `BW_kj` for one directed device pair.
    pub fn device_link(mut self, from: DeviceId, to: DeviceId, bw: Bandwidth) -> Self {
        self.device_bw[from.0][to.0] = Some(bw);
        self
    }

    /// Set `BW_kj = BW_jk = bw` for a device pair.
    pub fn symmetric_device_link(mut self, a: DeviceId, b: DeviceId, bw: Bandwidth) -> Self {
        self.device_bw[a.0][b.0] = Some(bw);
        self.device_bw[b.0][a.0] = Some(bw);
        self
    }

    /// Set `BW_gj` for one registry→device link.
    pub fn registry_link(mut self, from: RegistryId, to: DeviceId, bw: Bandwidth) -> Self {
        self.registry_bw[from.0][to.0] = Some(bw);
        self
    }

    /// Assign `bw` to every device-to-device link not yet set.
    pub fn uniform_device_bandwidth(mut self, bw: Bandwidth) -> Self {
        for row in &mut self.device_bw {
            for cell in row.iter_mut() {
                if cell.is_none() {
                    *cell = Some(bw);
                }
            }
        }
        self
    }

    /// Assign `bw` to every registry-to-device link not yet set.
    pub fn uniform_registry_bandwidth(mut self, bw: Bandwidth) -> Self {
        for row in &mut self.registry_bw {
            for cell in row.iter_mut() {
                if cell.is_none() {
                    *cell = Some(bw);
                }
            }
        }
        self
    }

    /// Finish, verifying every link has a bandwidth.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let mut device_bw = Vec::with_capacity(self.devices);
        for (k, row) in self.device_bw.into_iter().enumerate() {
            let mut out = Vec::with_capacity(row.len());
            for (j, cell) in row.into_iter().enumerate() {
                out.push(
                    cell.ok_or_else(|| TopologyError::MissingLink(format!("device d{k} -> d{j}")))?,
                );
            }
            device_bw.push(out);
        }
        let mut registry_bw = Vec::with_capacity(self.registries);
        for (g, row) in self.registry_bw.into_iter().enumerate() {
            let mut out = Vec::with_capacity(row.len());
            for (j, cell) in row.into_iter().enumerate() {
                out.push(
                    cell.ok_or_else(|| {
                        TopologyError::MissingLink(format!("registry r{g} -> d{j}"))
                    })?,
                );
            }
            registry_bw.push(out);
        }
        Ok(Topology { devices: self.devices, registries: self.registries, device_bw, registry_bw })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> Topology {
        TopologyBuilder::new(2, 2)
            .symmetric_device_link(DeviceId(0), DeviceId(1), Bandwidth::megabytes_per_sec(50.0))
            .registry_link(RegistryId(0), DeviceId(0), Bandwidth::megabytes_per_sec(100.0))
            .registry_link(RegistryId(0), DeviceId(1), Bandwidth::megabytes_per_sec(80.0))
            .registry_link(RegistryId(1), DeviceId(0), Bandwidth::megabytes_per_sec(110.0))
            .registry_link(RegistryId(1), DeviceId(1), Bandwidth::megabytes_per_sec(90.0))
            .build()
            .unwrap()
    }

    #[test]
    fn counts_and_iterators() {
        let t = two_by_two();
        assert_eq!(t.device_count(), 2);
        assert_eq!(t.registry_count(), 2);
        assert_eq!(t.devices().collect::<Vec<_>>(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(t.registries().count(), 2);
    }

    #[test]
    fn loopback_is_free() {
        let t = two_by_two();
        let time =
            t.device_transfer_time(DeviceId(0), DeviceId(0), DataSize::gigabytes(10.0)).unwrap();
        assert_eq!(time, Seconds::ZERO);
    }

    #[test]
    fn cross_device_transfer_time() {
        let t = two_by_two();
        let time =
            t.device_transfer_time(DeviceId(0), DeviceId(1), DataSize::megabytes(250.0)).unwrap();
        assert!((time.as_f64() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn registry_pull_time_matches_model() {
        // Td = Size_mi / BW_gj: 5.78 GB at 80 MB/s = 72.25 s.
        let t = two_by_two();
        let time = t
            .registry_transfer_time(RegistryId(0), DeviceId(1), DataSize::gigabytes(5.78))
            .unwrap();
        assert!((time.as_f64() - 72.25).abs() < 1e-9);
    }

    #[test]
    fn zero_size_transfer_is_free() {
        let t = two_by_two();
        let time = t.registry_transfer_time(RegistryId(1), DeviceId(0), DataSize::ZERO).unwrap();
        assert_eq!(time, Seconds::ZERO);
    }

    #[test]
    fn unknown_indices_error() {
        let t = two_by_two();
        assert_eq!(
            t.device_bandwidth(DeviceId(5), DeviceId(0)).unwrap_err(),
            TopologyError::UnknownDevice(DeviceId(5))
        );
        assert_eq!(
            t.registry_bandwidth(RegistryId(9), DeviceId(0)).unwrap_err(),
            TopologyError::UnknownRegistry(RegistryId(9))
        );
    }

    #[test]
    fn missing_link_fails_build() {
        let err = TopologyBuilder::new(2, 1)
            .symmetric_device_link(DeviceId(0), DeviceId(1), Bandwidth::megabytes_per_sec(10.0))
            .registry_link(RegistryId(0), DeviceId(0), Bandwidth::megabytes_per_sec(10.0))
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::MissingLink("registry r0 -> d1".into()));
    }

    #[test]
    fn uniform_fill_respects_explicit_links() {
        let t = TopologyBuilder::new(2, 1)
            .registry_link(RegistryId(0), DeviceId(0), Bandwidth::megabytes_per_sec(42.0))
            .uniform_registry_bandwidth(Bandwidth::megabytes_per_sec(10.0))
            .uniform_device_bandwidth(Bandwidth::megabytes_per_sec(5.0))
            .build()
            .unwrap();
        assert_eq!(
            t.registry_bandwidth(RegistryId(0), DeviceId(0)).unwrap(),
            Bandwidth::megabytes_per_sec(42.0)
        );
        assert_eq!(
            t.registry_bandwidth(RegistryId(0), DeviceId(1)).unwrap(),
            Bandwidth::megabytes_per_sec(10.0)
        );
        // loopback untouched by uniform fill
        assert!(t
            .device_bandwidth(DeviceId(0), DeviceId(0))
            .unwrap()
            .as_bytes_per_sec()
            .is_infinite());
    }

    #[test]
    fn uniform_mesh_is_complete_and_loopback_free() {
        let t = Topology::uniform_mesh(4, Bandwidth::megabytes_per_sec(80.0));
        assert_eq!(t.device_count(), 4);
        assert_eq!(t.registry_count(), 0);
        for k in t.devices() {
            for j in t.devices() {
                let bw = t.device_bandwidth(k, j).unwrap();
                if k == j {
                    assert!(bw.as_bytes_per_sec().is_infinite());
                } else {
                    assert_eq!(bw, Bandwidth::megabytes_per_sec(80.0));
                }
            }
        }
    }

    #[test]
    fn set_device_bandwidth_dents_one_directed_link() {
        let mut t = Topology::uniform_mesh(3, Bandwidth::megabytes_per_sec(80.0));
        t.set_device_bandwidth(DeviceId(0), DeviceId(2), Bandwidth::megabytes_per_sec(5.0))
            .unwrap();
        assert_eq!(
            t.device_bandwidth(DeviceId(0), DeviceId(2)).unwrap(),
            Bandwidth::megabytes_per_sec(5.0)
        );
        // The reverse direction and every other link are untouched.
        assert_eq!(
            t.device_bandwidth(DeviceId(2), DeviceId(0)).unwrap(),
            Bandwidth::megabytes_per_sec(80.0)
        );
        assert_eq!(
            t.device_bandwidth(DeviceId(0), DeviceId(1)).unwrap(),
            Bandwidth::megabytes_per_sec(80.0)
        );
        assert_eq!(
            t.set_device_bandwidth(DeviceId(0), DeviceId(9), Bandwidth::megabytes_per_sec(1.0))
                .unwrap_err(),
            TopologyError::UnknownDevice(DeviceId(9))
        );
    }

    #[test]
    fn asymmetric_links_are_directional() {
        let t = TopologyBuilder::new(2, 0)
            .device_link(DeviceId(0), DeviceId(1), Bandwidth::megabytes_per_sec(100.0))
            .device_link(DeviceId(1), DeviceId(0), Bandwidth::megabytes_per_sec(10.0))
            .build()
            .unwrap();
        let down = t.device_bandwidth(DeviceId(0), DeviceId(1)).unwrap();
        let up = t.device_bandwidth(DeviceId(1), DeviceId(0)).unwrap();
        assert!(down.as_bytes_per_sec() > up.as_bytes_per_sec());
    }
}
