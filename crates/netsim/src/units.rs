//! Strongly-typed physical units.
//!
//! The paper mixes GB (image sizes, storage), MB (dataflow sizes), MI and
//! MI/s (compute), seconds and Joules. Every cross-unit bug in a
//! reproduction of this kind is a silent factor-of-1000 error, so the whole
//! workspace trades exclusively in these newtypes and converts at the edges.
//!
//! Conventions: sizes are stored in **bytes** (u64), bandwidth in
//! **bytes/second** (f64), time in **seconds** (f64). Decimal prefixes
//! (1 GB = 1e9 B) are used throughout because the paper reports decimal GB
//! and MB.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A quantity of data, stored in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl DataSize {
    pub const ZERO: DataSize = DataSize(0);

    /// Construct from raw bytes.
    #[inline]
    pub const fn bytes(n: u64) -> Self {
        DataSize(n)
    }

    /// Construct from kilobytes (decimal, 1 kB = 1000 B).
    #[inline]
    pub fn kilobytes(n: f64) -> Self {
        DataSize((n * 1e3).round() as u64)
    }

    /// Construct from megabytes (decimal, 1 MB = 1e6 B).
    #[inline]
    pub fn megabytes(n: f64) -> Self {
        DataSize((n * 1e6).round() as u64)
    }

    /// Construct from gigabytes (decimal, 1 GB = 1e9 B).
    #[inline]
    pub fn gigabytes(n: f64) -> Self {
        DataSize((n * 1e9).round() as u64)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in decimal megabytes.
    #[inline]
    pub fn as_megabytes(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Size in decimal gigabytes.
    #[inline]
    pub fn as_gigabytes(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful for cache-quota arithmetic.
    #[inline]
    pub fn saturating_sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.saturating_sub(rhs.0))
    }

    /// True when the size is exactly zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a dimensionless factor, rounding to the nearest byte.
    #[inline]
    pub fn scale(self, factor: f64) -> DataSize {
        DataSize((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for DataSize {
    type Output = DataSize;
    #[inline]
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl AddAssign for DataSize {
    #[inline]
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    #[inline]
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 - rhs.0)
    }
}

impl SubAssign for DataSize {
    #[inline]
    fn sub_assign(&mut self, rhs: DataSize) {
        self.0 -= rhs.0;
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> DataSize {
        iter.fold(DataSize::ZERO, Add::add)
    }
}

impl Div<Bandwidth> for DataSize {
    type Output = Seconds;
    /// `Size / BW` — the core quantity of the paper's completion-time model.
    #[inline]
    fn div(self, rhs: Bandwidth) -> Seconds {
        assert!(rhs.as_bytes_per_sec() > 0.0, "division by zero bandwidth");
        Seconds(self.0 as f64 / rhs.as_bytes_per_sec())
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e9 {
            write!(f, "{:.2} GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2} MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2} kB", b / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Link bandwidth in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Construct from bytes per second.
    #[inline]
    pub fn bytes_per_sec(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "bandwidth must be finite and non-negative");
        Bandwidth(v)
    }

    /// An effectively infinite, loop-back bandwidth. `Size / infinite() = 0 s`.
    #[inline]
    pub const fn infinite() -> Self {
        Bandwidth(f64::INFINITY)
    }

    /// Construct from decimal megabytes per second.
    #[inline]
    pub fn megabytes_per_sec(v: f64) -> Self {
        Self::bytes_per_sec(v * 1e6)
    }

    /// Construct from decimal gigabits per second (1 Gbit = 1.25e8 B).
    #[inline]
    pub fn gigabits_per_sec(v: f64) -> Self {
        Self::bytes_per_sec(v * 1.25e8)
    }

    /// Construct from decimal megabits per second.
    #[inline]
    pub fn megabits_per_sec(v: f64) -> Self {
        Self::bytes_per_sec(v * 1.25e5)
    }

    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn as_megabytes_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// Scale by a dimensionless factor (e.g. contention share).
    #[inline]
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.0 * factor)
    }

    /// True when no data can flow.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The smaller of two bandwidths — the bottleneck of a two-hop path.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Mul<Seconds> for Bandwidth {
    type Output = DataSize;
    #[inline]
    fn mul(self, rhs: Seconds) -> DataSize {
        DataSize((self.0 * rhs.0).round().max(0.0) as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MB/s", self.0 / 1e6)
    }
}

/// A duration or point offset on the simulated clock, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(pub f64);

impl Seconds {
    pub const ZERO: Seconds = Seconds(0.0);

    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite(), "time must be finite");
        Seconds(v)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Scale by a dimensionless factor (jitter, slowdown).
    #[inline]
    pub fn scale(self, factor: f64) -> Seconds {
        Seconds::new(self.0 * factor)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    #[inline]
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    #[inline]
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}

impl Neg for Seconds {
    type Output = Seconds;
    #[inline]
    fn neg(self) -> Seconds {
        Seconds(-self.0)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasize_constructors_round_trip() {
        assert_eq!(DataSize::gigabytes(0.17).as_bytes(), 170_000_000);
        assert_eq!(DataSize::megabytes(1.5).as_bytes(), 1_500_000);
        assert_eq!(DataSize::kilobytes(2.0).as_bytes(), 2_000);
        assert!((DataSize::gigabytes(5.78).as_gigabytes() - 5.78).abs() < 1e-9);
        assert!((DataSize::megabytes(250.0).as_megabytes() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn datasize_arithmetic() {
        let a = DataSize::megabytes(10.0);
        let b = DataSize::megabytes(4.0);
        assert_eq!((a + b).as_bytes(), 14_000_000);
        assert_eq!((a - b).as_bytes(), 6_000_000);
        assert_eq!(b.saturating_sub(a), DataSize::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_bytes(), 14_000_000);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn datasize_sum_and_scale() {
        let total: DataSize = [1.0, 2.0, 3.0].iter().map(|&g| DataSize::gigabytes(g)).sum();
        assert_eq!(total, DataSize::gigabytes(6.0));
        assert_eq!(DataSize::megabytes(100.0).scale(0.5), DataSize::megabytes(50.0));
    }

    #[test]
    fn transfer_time_is_size_over_bandwidth() {
        // The paper: Td = Size_mi / BW_gj. 1.7 GB at 100 MB/s = 17 s.
        let t = DataSize::gigabytes(1.7) / Bandwidth::megabytes_per_sec(100.0);
        assert!((t.as_f64() - 17.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_division_panics() {
        let _ = DataSize::megabytes(1.0) / Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn bandwidth_units() {
        assert!((Bandwidth::gigabits_per_sec(1.0).as_megabytes_per_sec() - 125.0).abs() < 1e-9);
        assert!((Bandwidth::megabits_per_sec(80.0).as_megabytes_per_sec() - 10.0).abs() < 1e-9);
        let bw = Bandwidth::megabytes_per_sec(40.0);
        assert!((bw.scale(0.25).as_megabytes_per_sec() - 10.0).abs() < 1e-9);
        assert_eq!(bw.min(Bandwidth::megabytes_per_sec(20.0)), Bandwidth::megabytes_per_sec(20.0));
    }

    #[test]
    fn bandwidth_times_time_is_size() {
        let moved = Bandwidth::megabytes_per_sec(25.0) * Seconds::new(4.0);
        assert_eq!(moved, DataSize::megabytes(100.0));
    }

    #[test]
    fn seconds_ops() {
        let a = Seconds::new(2.5);
        let b = Seconds::new(1.0);
        assert_eq!((a + b).as_f64(), 3.5);
        assert_eq!((a - b).as_f64(), 1.5);
        assert_eq!((-b).as_f64(), -1.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!((a * 2.0).as_f64(), 5.0);
        assert!((a - Seconds::new(3.0)).is_negative());
        let sum: Seconds = [a, b].into_iter().sum();
        assert_eq!(sum.as_f64(), 3.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DataSize::gigabytes(5.78)), "5.78 GB");
        assert_eq!(format!("{}", DataSize::megabytes(250.0)), "250.00 MB");
        assert_eq!(format!("{}", DataSize::bytes(12)), "12 B");
        assert_eq!(format!("{}", Bandwidth::megabytes_per_sec(100.0)), "100.00 MB/s");
        assert_eq!(format!("{}", Seconds::new(1.2345)), "1.234 s");
    }

    #[test]
    fn serde_round_trip() {
        let s = DataSize::gigabytes(2.36);
        let json = serde_json::to_string(&s).unwrap();
        let back: DataSize = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn datasize_gb_round_trip(gb in 0.0f64..1000.0) {
            let s = DataSize::gigabytes(gb);
            prop_assert!((s.as_gigabytes() - gb).abs() < 1e-6);
        }

        #[test]
        fn datasize_addition_is_commutative(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
            let (x, y) = (DataSize::bytes(a), DataSize::bytes(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn saturating_sub_never_underflows(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let d = DataSize::bytes(a).saturating_sub(DataSize::bytes(b));
            prop_assert!(d.as_bytes() <= a);
        }

        #[test]
        fn transfer_time_positive_and_finite(mb in 0.001f64..100_000.0, bw in 0.001f64..100_000.0) {
            let t = DataSize::megabytes(mb) / Bandwidth::megabytes_per_sec(bw);
            prop_assert!(t.as_f64() > 0.0);
            prop_assert!(t.as_f64().is_finite());
        }

        #[test]
        fn bandwidth_time_size_triangle(mb in 0.1f64..10_000.0, bw in 0.1f64..10_000.0) {
            // (size / bw) * bw ≈ size.
            let size = DataSize::megabytes(mb);
            let bandwidth = Bandwidth::megabytes_per_sec(bw);
            let t = size / bandwidth;
            let back = bandwidth * t;
            let err = (back.as_bytes() as f64 - size.as_bytes() as f64).abs();
            prop_assert!(err <= 1.0, "round-trip error {err} bytes");
        }

        #[test]
        fn seconds_scale_linearity(s in -1000.0f64..1000.0, k in 0.0f64..100.0) {
            let t = Seconds::new(s);
            prop_assert!((t.scale(k).as_f64() - s * k).abs() < 1e-9 * (1.0 + s.abs() * k));
        }
    }
}
