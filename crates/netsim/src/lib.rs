//! Network substrate for the DEEP reproduction.
//!
//! The paper's device/network model (Section III-B) is deliberately simple:
//! devices are interconnected by channels characterized only by bandwidth
//! (`h_kj = BW_kj`; round-trip time is explicitly neglected), and registries
//! reach devices through links `BW_gj`. This crate provides:
//!
//! * strongly-typed physical units ([`DataSize`], [`Bandwidth`], [`Seconds`])
//!   so that "GB divided by MB/s" mistakes are compile errors rather than
//!   silent unit bugs;
//! * a [`Topology`] holding the device-to-device bandwidth matrix `H` and
//!   the registry-to-device bandwidth matrix;
//! * a [`cdn`] module modelling Docker Hub's CDN-backed distribution
//!   (geographically-classed points of presence), which is how the paper
//!   explains Docker Hub's delivery performance;
//! * transfer-time math shared by every higher layer ([`transfer`]);
//! * a seeded push/pull epidemic ([`gossip`]) for decentralized holder
//!   advertisement — the substrate the simulator's gossip discovery
//!   plane builds on.
//!
//! All quantities are deterministic; stochastic jitter is layered on by the
//! simulator crate, never here.

pub mod cdn;
pub mod channel;
pub mod gossip;
pub mod latency;
pub mod topology;
pub mod transfer;
pub mod units;

pub use cdn::{CdnModel, PopClass};
pub use channel::{Channel, ContentionPolicy};
pub use gossip::{GossipConfig, GossipState};
pub use latency::LatentLink;
pub use topology::{DeviceId, RegistryId, Topology, TopologyBuilder, TopologyError};
pub use transfer::{transfer_time, TransferPlan};
pub use units::{Bandwidth, DataSize, Seconds};
