//! Seeded push/pull epidemic dissemination of per-device advertisements.
//!
//! DEEP's peer plane (PR 5) hands every pull an *omniscient* snapshot of
//! which devices hold which layers — a central catalog no real edge
//! fleet has. This module provides the decentralized alternative in the
//! EdgePier style (arXiv:2109.12983): each device periodically
//! *advertises* an opaque payload (for DEEP, the digest set of its layer
//! cache) under a monotonically increasing **epoch**, and a seeded
//! push/pull gossip round spreads the freshest epoch of every
//! advertisement through the fleet. Views are therefore *eventually*
//! consistent: between the moment a holder's cache changes and the
//! moment the new epoch reaches a viewer, the viewer acts on a **stale
//! advertisement** — a holder whose `has_blob` lies. Higher layers must
//! tolerate that (the registry mesh's mid-pull failover does), which is
//! exactly the failure model the differential test plane locks down.
//!
//! The protocol is deliberately deterministic: partner choice is a pure
//! function of `(seed, round, device, probe)` via splitmix64, devices
//! exchange in ascending id order with immediate visibility, and views
//! are `BTreeMap`s, so the same seed always yields the same view
//! sequence — the property the simulator's estimator/executor parity
//! contract builds on. With `fanout >= devices - 1` a single round is a
//! full all-pairs exchange, so one round converges every view; that
//! configuration is the bridge back to the omniscient snapshot plane.

use std::collections::BTreeMap;

/// Tuning knobs for a gossip deployment: how many partners each device
/// exchanges with per round, and how many rounds run per wave barrier.
/// `view_size` is *not* enforced here — the protocol keeps full
/// knowledge and lets the consumer bound how much of it a single
/// decision may use (see the simulator's `GossipPlane`), mirroring how
/// partial-view protocols cap the membership a node acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Exchange partners per device per round (clamped to `devices - 1`).
    pub fanout: u32,
    /// Epidemic rounds run at every wave barrier.
    pub rounds_per_wave: u32,
    /// Seed for the deterministic partner schedule.
    pub seed: u64,
}

/// One device's knowledge of another's advertisement: the epoch it was
/// published under, plus the payload.
type Entry<T> = (u64, T);

/// The fleet-wide gossip state: every device's partial view of every
/// other device's freshest advertisement.
///
/// `T` is the advertised payload (DEEP advertises layer-cache digest
/// sets; the unit tests use plain integers). Payloads travel by clone,
/// so keep them cheap to copy.
#[derive(Debug, Clone)]
pub struct GossipState<T: Clone> {
    /// `views[viewer][holder] = (epoch, payload)` — what `viewer`
    /// currently believes `holder` last advertised. A device's own
    /// freshest advertisement is stored in its own view.
    views: Vec<BTreeMap<usize, Entry<T>>>,
    /// `epochs[holder]` — the holder's own advertisement counter;
    /// 0 means it has never advertised.
    epochs: Vec<u64>,
    /// Rounds run so far (feeds the partner schedule).
    round: u64,
    seed: u64,
}

impl<T: Clone> GossipState<T> {
    /// A fleet of `devices` nodes with empty views.
    pub fn new(devices: usize, seed: u64) -> Self {
        GossipState {
            views: vec![BTreeMap::new(); devices],
            epochs: vec![0; devices],
            round: 0,
            seed,
        }
    }

    /// Fleet size.
    pub fn devices(&self) -> usize {
        self.views.len()
    }

    /// Rounds run so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Publish a fresh advertisement for `holder`: bumps its epoch and
    /// installs the payload in its own view, whence gossip spreads it.
    /// Returns the new epoch.
    pub fn advertise(&mut self, holder: usize, payload: T) -> u64 {
        self.epochs[holder] += 1;
        let epoch = self.epochs[holder];
        self.views[holder].insert(holder, (epoch, payload));
        epoch
    }

    /// The holder's own advertisement counter (0 = never advertised).
    pub fn epoch(&self, holder: usize) -> u64 {
        self.epochs[holder]
    }

    /// The holder's own freshest advertisement, if it ever published one.
    pub fn self_ad(&self, holder: usize) -> Option<&T> {
        self.views[holder].get(&holder).map(|(_, payload)| payload)
    }

    /// Everything `viewer` currently knows, in ascending holder order:
    /// `(holder, epoch, payload)` triples, the viewer's own entry
    /// included.
    pub fn known(&self, viewer: usize) -> impl Iterator<Item = (usize, u64, &T)> {
        self.views[viewer].iter().map(|(&holder, (epoch, payload))| (holder, *epoch, payload))
    }

    /// True once every device's view carries the freshest epoch of
    /// every advertisement ever published — from here, further rounds
    /// change nothing until somebody re-advertises.
    pub fn converged(&self) -> bool {
        self.views.iter().all(|view| {
            self.epochs.iter().enumerate().all(|(holder, &epoch)| {
                epoch == 0 || view.get(&holder).map(|(e, _)| *e) == Some(epoch)
            })
        })
    }

    /// Run `rounds` push/pull rounds at the given fanout.
    pub fn run_rounds(&mut self, rounds: u32, fanout: u32) {
        for _ in 0..rounds {
            self.run_round(fanout);
        }
    }

    /// One epidemic round: every device, in ascending id order, picks
    /// `fanout` seeded partners and does a symmetric push/pull — both
    /// sides end up with the freshest epoch of every advertisement
    /// either knew. Exchanges within a round see each other's effects
    /// (immediate visibility), which keeps the round deterministic
    /// without a message buffer and only speeds convergence up.
    pub fn run_round(&mut self, fanout: u32) {
        let n = self.views.len();
        if n >= 2 {
            let fanout = (fanout as usize).min(n - 1);
            for device in 0..n {
                let mut partners: Vec<usize> = Vec::with_capacity(fanout);
                let mut probe = 0u64;
                while partners.len() < fanout {
                    let raw = splitmix64(
                        self.seed
                            ^ self.round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            ^ (device as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
                            ^ probe.wrapping_mul(0x94d0_49bb_1331_11eb),
                    );
                    probe += 1;
                    let partner = (raw % n as u64) as usize;
                    if partner != device && !partners.contains(&partner) {
                        partners.push(partner);
                    }
                }
                for partner in partners {
                    self.exchange(device, partner);
                }
            }
        }
        self.round += 1;
    }

    /// Symmetric push/pull merge: after the exchange, `a` and `b` both
    /// hold the higher-epoch version of every advertisement either knew.
    fn exchange(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        let holders: Vec<usize> = {
            let mut h: Vec<usize> =
                self.views[a].keys().chain(self.views[b].keys()).copied().collect();
            h.sort_unstable();
            h.dedup();
            h
        };
        for holder in holders {
            let ea = self.views[a].get(&holder).map(|(e, _)| *e).unwrap_or(0);
            let eb = self.views[b].get(&holder).map(|(e, _)| *e).unwrap_or(0);
            if ea > eb {
                let entry = self.views[a][&holder].clone();
                self.views[b].insert(holder, entry);
            } else if eb > ea {
                let entry = self.views[b][&holder].clone();
                self.views[a].insert(holder, entry);
            }
        }
    }
}

/// splitmix64: the repo-standard cheap deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fleet where every device has advertised its own id × 100.
    fn advertised_fleet(n: usize, seed: u64) -> GossipState<u32> {
        let mut state = GossipState::new(n, seed);
        for d in 0..n {
            state.advertise(d, d as u32 * 100);
        }
        state
    }

    fn view_snapshot(state: &GossipState<u32>) -> Vec<Vec<(usize, u64, u32)>> {
        (0..state.devices()).map(|v| state.known(v).map(|(h, e, p)| (h, e, *p)).collect()).collect()
    }

    #[test]
    fn same_seed_yields_the_same_view_sequence() {
        let mut a = advertised_fleet(16, 7);
        let mut b = advertised_fleet(16, 7);
        for _ in 0..6 {
            a.run_round(2);
            b.run_round(2);
            assert_eq!(view_snapshot(&a), view_snapshot(&b));
        }
    }

    #[test]
    fn different_seeds_diverge_mid_epidemic() {
        let mut a = advertised_fleet(32, 1);
        let mut b = advertised_fleet(32, 2);
        a.run_round(1);
        b.run_round(1);
        // One fanout-1 round over 32 devices cannot have converged, and
        // the two partner schedules disagree somewhere.
        assert_ne!(view_snapshot(&a), view_snapshot(&b));
    }

    #[test]
    fn views_grow_monotonically_and_epochs_never_regress() {
        let mut state = advertised_fleet(24, 11);
        let mut prev = view_snapshot(&state);
        for _ in 0..8 {
            state.run_round(1);
            let next = view_snapshot(&state);
            for (viewer, before) in prev.iter().enumerate() {
                let after: BTreeMap<usize, (u64, u32)> =
                    next[viewer].iter().map(|&(h, e, p)| (h, (e, p))).collect();
                for &(holder, epoch, _) in before {
                    let (e, _) = after[&holder];
                    assert!(e >= epoch, "viewer {viewer} lost epoch on holder {holder}");
                }
                assert!(after.len() >= before.len(), "viewer {viewer}'s view shrank");
            }
            prev = next;
        }
    }

    #[test]
    fn gossip_eventually_converges_to_full_views() {
        let mut state = advertised_fleet(40, 3);
        let mut rounds = 0;
        while !state.converged() {
            state.run_round(2);
            rounds += 1;
            assert!(rounds < 64, "epidemic failed to converge");
        }
        for viewer in 0..40 {
            assert_eq!(state.known(viewer).count(), 40);
        }
    }

    #[test]
    fn all_pairs_fanout_converges_in_one_round() {
        let mut state = advertised_fleet(17, 99);
        state.run_round(u32::MAX); // clamped to n - 1
        assert!(state.converged());
    }

    #[test]
    fn readvertising_bumps_the_epoch_and_spreads_the_fresh_payload() {
        let mut state = advertised_fleet(8, 5);
        state.run_round(u32::MAX);
        assert!(state.converged());
        let epoch = state.advertise(3, 999);
        assert_eq!(epoch, 2);
        assert!(!state.converged(), "stale epoch-1 copies remain remote");
        state.run_round(u32::MAX);
        assert!(state.converged());
        for viewer in 0..8 {
            let (_, epoch, payload) =
                state.known(viewer).find(|&(h, _, _)| h == 3).expect("holder 3 known");
            assert_eq!((epoch, *payload), (2, 999));
        }
    }

    #[test]
    fn empty_and_singleton_fleets_are_inert() {
        let mut empty: GossipState<u32> = GossipState::new(0, 1);
        empty.run_round(4);
        assert!(empty.converged());
        let mut solo = advertised_fleet(1, 1);
        solo.run_round(4);
        assert!(solo.converged());
        assert_eq!(solo.known(0).count(), 1);
    }
}
