//! Seeded push/pull epidemic dissemination of per-device advertisements,
//! exchanged as **epoch-vector deltas**.
//!
//! DEEP's peer plane (PR 5) hands every pull an *omniscient* snapshot of
//! which devices hold which layers — a central catalog no real edge
//! fleet has. This module provides the decentralized alternative in the
//! EdgePier style (arXiv:2109.12983): each device periodically
//! *advertises* an opaque payload (for DEEP, the digest set of its layer
//! cache) under a monotonically increasing **epoch**, and a seeded
//! push/pull gossip round spreads the freshest epoch of every
//! advertisement through the fleet.
//!
//! ## What an exchange ships
//!
//! The PR 9 protocol merged full views: every exchange collected the
//! union of both partners' known holders into a fresh key vector and
//! *cloned* each winning `(epoch, payload)` entry across — at fleet
//! scale the payload clones dominated the barrier
//! (`barrier_round/devices_800` spent ~288 ms copying advertisement
//! maps). The protocol is now anti-entropy over **version vectors**:
//!
//! * each viewer's knowledge is a dense per-holder epoch vector
//!   (`known[viewer][holder]`, 0 = never heard of it) — the
//!   version-vector *summary* both sides of an exchange compare first;
//! * the *delta* is only the advertisements one side holds strictly
//!   newer than the other: the exchange copies the winning epoch
//!   numbers across (plain `u64` stores, symmetric max-merge) and never
//!   touches a payload, because payloads live once in a shared
//!   per-holder store keyed by epoch;
//! * a per-viewer staleness counter (`# holders whose freshest epoch
//!   this viewer lacks`) short-circuits the exchange entirely when both
//!   partners are fully fresh — a barrier over an unchanged fleet is a
//!   no-op that allocates nothing, with partner selection running out
//!   of the reusable [`GossipWorkspace`] scratch buffer.
//!
//! Everything observable is unchanged: the same seeded partner schedule
//! (a pure splitmix64 function of `(seed, round, device, probe)`),
//! ascending-id exchange order with immediate visibility, max-epoch
//! merge semantics, and `known()` views in ascending holder order. The
//! clone-based PR 9 implementation is retained verbatim in
//! [`oracle`] and the differential plane pins the two view sequences
//! (and the Schedules/RunReports built on them) byte for byte — so
//! convergence behaviour and the snapshot bridge (`fanout >= devices -
//! 1` converges in one round, reproducing the omniscient plane) carry
//! over unchanged.
//!
//! Views remain *eventually* consistent: between the moment a holder's
//! cache changes and the moment the new epoch reaches a viewer, the
//! viewer acts on a **stale advertisement** — a holder whose `has_blob`
//! lies. Higher layers must tolerate that (the registry mesh's mid-pull
//! failover does), which is exactly the failure model the differential
//! test plane locks down; superseded payloads stay addressable in the
//! store for as long as any viewer still references their epoch.

/// Tuning knobs for a gossip deployment: how many partners each device
/// exchanges with per round, and how many rounds run per wave barrier.
/// `view_size` is *not* enforced here — the protocol keeps full
/// knowledge and lets the consumer bound how much of it a single
/// decision may use (see the simulator's `GossipPlane`), mirroring how
/// partial-view protocols cap the membership a node acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Exchange partners per device per round (clamped to `devices - 1`).
    pub fanout: u32,
    /// Epidemic rounds run at every wave barrier.
    pub rounds_per_wave: u32,
    /// Seed for the deterministic partner schedule.
    pub seed: u64,
}

/// Reusable per-round scratch buffers for the exchange schedule. One
/// workspace lives inside each [`GossipState`] and is reused across
/// every round: after the first round has sized it, partner selection
/// allocates nothing — which is what makes a steady-state wave barrier
/// over an unchanged fleet allocation-free.
#[derive(Debug, Clone, Default)]
pub struct GossipWorkspace {
    /// The partner picks of the device currently exchanging.
    partners: Vec<usize>,
}

/// The fleet-wide gossip state: every device's partial view of every
/// other device's freshest advertisement, held as epoch vectors over a
/// shared payload store.
///
/// `T` is the advertised payload (DEEP advertises layer-cache digest
/// sets; the unit tests use plain integers). Payloads are stored once
/// per `(holder, epoch)` and never cloned by the protocol — `T: Clone`
/// remains on the API only so consumers can materialize owned copies of
/// what [`GossipState::known`] lends them.
#[derive(Debug, Clone)]
pub struct GossipState<T: Clone> {
    /// `store[holder]` — the holder's live advertisement payloads in
    /// ascending epoch order. Superseded epochs are pruned as soon as
    /// no viewer's vector references them (checked on each
    /// re-advertisement, which already scans the holder's column).
    store: Vec<Vec<(u64, T)>>,
    /// Dense viewer-major epoch matrix: `known[viewer * n + holder]` is
    /// the freshest epoch `viewer` holds of `holder`'s advertisement
    /// (0 = never heard of it). This is the version-vector summary an
    /// exchange compares.
    known: Vec<u64>,
    /// `epochs[holder]` — the holder's own advertisement counter;
    /// 0 means it has never advertised.
    epochs: Vec<u64>,
    /// `stale[viewer]` — how many holders have advertised an epoch this
    /// viewer has not yet received. 0 means the viewer is fully fresh;
    /// two fully-fresh partners short-circuit their exchange.
    stale: Vec<u32>,
    /// Rounds run so far (feeds the partner schedule).
    round: u64,
    seed: u64,
    /// Bumped on every observable view movement (an advertisement or an
    /// epoch landing in some viewer's vector) — consumers key
    /// materialized-view caches on it. Deliberately *not* advanced by
    /// no-op rounds.
    generation: u64,
    /// Per-round scratch (partner picks), reused across rounds.
    workspace: GossipWorkspace,
}

impl<T: Clone> GossipState<T> {
    /// A fleet of `devices` nodes with empty views.
    pub fn new(devices: usize, seed: u64) -> Self {
        GossipState {
            store: vec![Vec::new(); devices],
            known: vec![0; devices * devices],
            epochs: vec![0; devices],
            stale: vec![0; devices],
            round: 0,
            seed,
            generation: 0,
            workspace: GossipWorkspace::default(),
        }
    }

    /// Fleet size.
    pub fn devices(&self) -> usize {
        self.store.len()
    }

    /// Rounds run so far.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Monotone counter of observable view movement: advances whenever
    /// an advertisement is published or an exchange lands a fresher
    /// epoch in some viewer's vector, and *only* then. Two equal
    /// generations bracket a span in which every view (and every
    /// payload it references) was bit-identical — the invalidation key
    /// for materialized-view caches.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Publish a fresh advertisement for `holder`: bumps its epoch and
    /// installs the payload in the shared store (and the holder's own
    /// vector), whence gossip spreads it. Returns the new epoch.
    pub fn advertise(&mut self, holder: usize, payload: T) -> u64 {
        let n = self.devices();
        let previous = self.epochs[holder];
        let epoch = previous + 1;
        self.epochs[holder] = epoch;
        // Every viewer that was fresh on this holder just went stale
        // (viewers already lagging were counted when they fell behind).
        // The same column scan finds the oldest epoch any viewer still
        // references, which bounds what the store must keep.
        let mut min_referenced = epoch;
        for viewer in 0..n {
            if viewer == holder {
                continue;
            }
            let held = self.known[viewer * n + holder];
            if held == previous {
                self.stale[viewer] += 1;
            }
            if held > 0 {
                min_referenced = min_referenced.min(held);
            }
        }
        self.known[holder * n + holder] = epoch;
        self.store[holder].retain(|&(e, _)| e >= min_referenced);
        self.store[holder].push((epoch, payload));
        self.generation += 1;
        epoch
    }

    /// The holder's own advertisement counter (0 = never advertised).
    pub fn epoch(&self, holder: usize) -> u64 {
        self.epochs[holder]
    }

    /// The holder's own freshest advertisement, if it ever published one.
    pub fn self_ad(&self, holder: usize) -> Option<&T> {
        self.store[holder].last().map(|(_, payload)| payload)
    }

    /// The stored payload of `(holder, epoch)` — present for every epoch
    /// some viewer's vector references.
    fn payload(&self, holder: usize, epoch: u64) -> &T {
        let ads = &self.store[holder];
        match ads.binary_search_by_key(&epoch, |&(e, _)| e) {
            Ok(i) => &ads[i].1,
            Err(_) => unreachable!("viewer references epoch {epoch} pruned from holder {holder}"),
        }
    }

    /// Everything `viewer` currently knows, in ascending holder order:
    /// `(holder, epoch, payload)` triples, the viewer's own entry
    /// included.
    pub fn known(&self, viewer: usize) -> impl Iterator<Item = (usize, u64, &T)> {
        let n = self.devices();
        (0..n).filter_map(move |holder| {
            let epoch = self.known[viewer * n + holder];
            (epoch > 0).then(|| (holder, epoch, self.payload(holder, epoch)))
        })
    }

    /// True once every device's view carries the freshest epoch of
    /// every advertisement ever published — from here, further rounds
    /// change nothing until somebody re-advertises. O(devices): the
    /// staleness counters carry the answer.
    pub fn converged(&self) -> bool {
        self.stale.iter().all(|&s| s == 0)
    }

    /// Run `rounds` push/pull rounds at the given fanout.
    pub fn run_rounds(&mut self, rounds: u32, fanout: u32) {
        for _ in 0..rounds {
            self.run_round(fanout);
        }
    }

    /// One epidemic round: every device, in ascending id order, picks
    /// `fanout` seeded partners and does a symmetric push/pull — both
    /// sides end up with the freshest epoch of every advertisement
    /// either knew. Exchanges within a round see each other's effects
    /// (immediate visibility), which keeps the round deterministic
    /// without a message buffer and only speeds convergence up. Partner
    /// selection runs out of the reused [`GossipWorkspace`]; on an
    /// unchanged fleet (every staleness counter 0) the round performs
    /// no stores and no allocations.
    pub fn run_round(&mut self, fanout: u32) {
        let n = self.devices();
        if n >= 2 {
            let fanout = (fanout as usize).min(n - 1);
            let mut ws = std::mem::take(&mut self.workspace);
            for device in 0..n {
                ws.partners.clear();
                let mut probe = 0u64;
                while ws.partners.len() < fanout {
                    let raw = splitmix64(
                        self.seed
                            ^ self.round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            ^ (device as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
                            ^ probe.wrapping_mul(0x94d0_49bb_1331_11eb),
                    );
                    probe += 1;
                    let partner = (raw % n as u64) as usize;
                    if partner != device && !ws.partners.contains(&partner) {
                        ws.partners.push(partner);
                    }
                }
                for &partner in &ws.partners {
                    self.exchange(device, partner);
                }
            }
            self.workspace = ws;
        }
        self.round += 1;
    }

    /// Symmetric anti-entropy merge: compare the two epoch vectors and
    /// copy each advertisement's higher epoch across — after the
    /// exchange, `a` and `b` both hold the freshest version of every
    /// advertisement either knew. Ships only the delta (holders whose
    /// epochs differ), touches no payload, and short-circuits to a
    /// no-op when both partners are fully fresh.
    fn exchange(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        if self.stale[a] == 0 && self.stale[b] == 0 {
            // Both partners already hold every freshest epoch: their
            // vectors are necessarily identical, nothing to ship.
            return;
        }
        let n = self.devices();
        let mut moved = false;
        for holder in 0..n {
            let ea = self.known[a * n + holder];
            let eb = self.known[b * n + holder];
            if ea == eb {
                continue;
            }
            let freshest = self.epochs[holder];
            if ea > eb {
                self.known[b * n + holder] = ea;
                if ea == freshest {
                    self.stale[b] -= 1;
                }
            } else {
                self.known[a * n + holder] = eb;
                if eb == freshest {
                    self.stale[a] -= 1;
                }
            }
            moved = true;
        }
        if moved {
            self.generation += 1;
        }
    }
}

/// splitmix64: the repo-standard cheap deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The PR 9 clone-based protocol, retained **verbatim** as the
/// differential-test oracle: full-map views merged by cloning winning
/// `(epoch, payload)` entries across on every exchange. Same partner
/// schedule, same merge semantics, same observable view sequence — the
/// delta implementation above must match it byte for byte, which the
/// proptest differential plane (here and in `tests/gossip_discovery.rs`)
/// locks down. Not part of the supported API.
#[doc(hidden)]
pub mod oracle {
    use std::collections::BTreeMap;

    /// One device's knowledge of another's advertisement.
    type Entry<T> = (u64, T);

    /// The clone-based gossip state (PR 9 implementation).
    #[derive(Debug, Clone)]
    pub struct GossipState<T: Clone> {
        views: Vec<BTreeMap<usize, Entry<T>>>,
        epochs: Vec<u64>,
        round: u64,
        seed: u64,
    }

    impl<T: Clone> GossipState<T> {
        pub fn new(devices: usize, seed: u64) -> Self {
            GossipState {
                views: vec![BTreeMap::new(); devices],
                epochs: vec![0; devices],
                round: 0,
                seed,
            }
        }

        pub fn devices(&self) -> usize {
            self.views.len()
        }

        pub fn rounds_run(&self) -> u64 {
            self.round
        }

        pub fn advertise(&mut self, holder: usize, payload: T) -> u64 {
            self.epochs[holder] += 1;
            let epoch = self.epochs[holder];
            self.views[holder].insert(holder, (epoch, payload));
            epoch
        }

        pub fn epoch(&self, holder: usize) -> u64 {
            self.epochs[holder]
        }

        pub fn self_ad(&self, holder: usize) -> Option<&T> {
            self.views[holder].get(&holder).map(|(_, payload)| payload)
        }

        pub fn known(&self, viewer: usize) -> impl Iterator<Item = (usize, u64, &T)> {
            self.views[viewer].iter().map(|(&holder, (epoch, payload))| (holder, *epoch, payload))
        }

        pub fn converged(&self) -> bool {
            self.views.iter().all(|view| {
                self.epochs.iter().enumerate().all(|(holder, &epoch)| {
                    epoch == 0 || view.get(&holder).map(|(e, _)| *e) == Some(epoch)
                })
            })
        }

        pub fn run_rounds(&mut self, rounds: u32, fanout: u32) {
            for _ in 0..rounds {
                self.run_round(fanout);
            }
        }

        pub fn run_round(&mut self, fanout: u32) {
            let n = self.views.len();
            if n >= 2 {
                let fanout = (fanout as usize).min(n - 1);
                for device in 0..n {
                    let mut partners: Vec<usize> = Vec::with_capacity(fanout);
                    let mut probe = 0u64;
                    while partners.len() < fanout {
                        let raw = super::splitmix64(
                            self.seed
                                ^ self.round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                ^ (device as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
                                ^ probe.wrapping_mul(0x94d0_49bb_1331_11eb),
                        );
                        probe += 1;
                        let partner = (raw % n as u64) as usize;
                        if partner != device && !partners.contains(&partner) {
                            partners.push(partner);
                        }
                    }
                    for partner in partners {
                        self.exchange(device, partner);
                    }
                }
            }
            self.round += 1;
        }

        fn exchange(&mut self, a: usize, b: usize) {
            debug_assert_ne!(a, b);
            let holders: Vec<usize> = {
                let mut h: Vec<usize> =
                    self.views[a].keys().chain(self.views[b].keys()).copied().collect();
                h.sort_unstable();
                h.dedup();
                h
            };
            for holder in holders {
                let ea = self.views[a].get(&holder).map(|(e, _)| *e).unwrap_or(0);
                let eb = self.views[b].get(&holder).map(|(e, _)| *e).unwrap_or(0);
                if ea > eb {
                    let entry = self.views[a][&holder].clone();
                    self.views[b].insert(holder, entry);
                } else if eb > ea {
                    let entry = self.views[b][&holder].clone();
                    self.views[a].insert(holder, entry);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A fleet where every device has advertised its own id × 100.
    fn advertised_fleet(n: usize, seed: u64) -> GossipState<u32> {
        let mut state = GossipState::new(n, seed);
        for d in 0..n {
            state.advertise(d, d as u32 * 100);
        }
        state
    }

    fn view_snapshot(state: &GossipState<u32>) -> Vec<Vec<(usize, u64, u32)>> {
        (0..state.devices()).map(|v| state.known(v).map(|(h, e, p)| (h, e, *p)).collect()).collect()
    }

    #[test]
    fn same_seed_yields_the_same_view_sequence() {
        let mut a = advertised_fleet(16, 7);
        let mut b = advertised_fleet(16, 7);
        for _ in 0..6 {
            a.run_round(2);
            b.run_round(2);
            assert_eq!(view_snapshot(&a), view_snapshot(&b));
        }
    }

    #[test]
    fn different_seeds_diverge_mid_epidemic() {
        let mut a = advertised_fleet(32, 1);
        let mut b = advertised_fleet(32, 2);
        a.run_round(1);
        b.run_round(1);
        // One fanout-1 round over 32 devices cannot have converged, and
        // the two partner schedules disagree somewhere.
        assert_ne!(view_snapshot(&a), view_snapshot(&b));
    }

    #[test]
    fn views_grow_monotonically_and_epochs_never_regress() {
        let mut state = advertised_fleet(24, 11);
        let mut prev = view_snapshot(&state);
        for _ in 0..8 {
            state.run_round(1);
            let next = view_snapshot(&state);
            for (viewer, before) in prev.iter().enumerate() {
                let after: std::collections::BTreeMap<usize, (u64, u32)> =
                    next[viewer].iter().map(|&(h, e, p)| (h, (e, p))).collect();
                for &(holder, epoch, _) in before {
                    let (e, _) = after[&holder];
                    assert!(e >= epoch, "viewer {viewer} lost epoch on holder {holder}");
                }
                assert!(after.len() >= before.len(), "viewer {viewer}'s view shrank");
            }
            prev = next;
        }
    }

    #[test]
    fn gossip_eventually_converges_to_full_views() {
        let mut state = advertised_fleet(40, 3);
        let mut rounds = 0;
        while !state.converged() {
            state.run_round(2);
            rounds += 1;
            assert!(rounds < 64, "epidemic failed to converge");
        }
        for viewer in 0..40 {
            assert_eq!(state.known(viewer).count(), 40);
        }
    }

    #[test]
    fn all_pairs_fanout_converges_in_one_round() {
        let mut state = advertised_fleet(17, 99);
        state.run_round(u32::MAX); // clamped to n - 1
        assert!(state.converged());
    }

    #[test]
    fn readvertising_bumps_the_epoch_and_spreads_the_fresh_payload() {
        let mut state = advertised_fleet(8, 5);
        state.run_round(u32::MAX);
        assert!(state.converged());
        let epoch = state.advertise(3, 999);
        assert_eq!(epoch, 2);
        assert!(!state.converged(), "stale epoch-1 copies remain remote");
        state.run_round(u32::MAX);
        assert!(state.converged());
        for viewer in 0..8 {
            let (_, epoch, payload) =
                state.known(viewer).find(|&(h, _, _)| h == 3).expect("holder 3 known");
            assert_eq!((epoch, *payload), (2, 999));
        }
    }

    #[test]
    fn empty_and_singleton_fleets_are_inert() {
        let mut empty: GossipState<u32> = GossipState::new(0, 1);
        empty.run_round(4);
        assert!(empty.converged());
        let mut solo = advertised_fleet(1, 1);
        solo.run_round(4);
        assert!(solo.converged());
        assert_eq!(solo.known(0).count(), 1);
    }

    #[test]
    fn superseded_payloads_stay_addressable_while_referenced() {
        // Viewer 1 learns epoch 1 of holder 0, then holder 0
        // re-advertises twice before gossip reaches viewer 1 again: the
        // viewer's view must keep materializing the *old* payload (the
        // stale-advertisement contract) until a round refreshes it.
        let mut state = GossipState::new(4, 21);
        state.advertise(0, 10);
        state.run_round(u32::MAX);
        state.advertise(0, 20);
        state.advertise(0, 30);
        let (_, epoch, payload) = state.known(1).find(|&(h, _, _)| h == 0).unwrap();
        assert_eq!((epoch, *payload), (1, 10), "stale epoch still serves its payload");
        state.run_round(u32::MAX);
        let (_, epoch, payload) = state.known(1).find(|&(h, _, _)| h == 0).unwrap();
        assert_eq!((epoch, *payload), (3, 30));
    }

    #[test]
    fn fully_referenced_readvertisement_prunes_the_store() {
        // Once every viewer has moved past an epoch, the next
        // advertisement drops it from the store.
        let mut state = advertised_fleet(6, 13);
        state.run_round(u32::MAX);
        for _ in 0..3 {
            state.advertise(2, 7);
            state.run_round(u32::MAX);
        }
        assert!(state.converged());
        state.advertise(2, 8);
        assert_eq!(state.store[2].len(), 2, "only the referenced epoch and the fresh one remain");
    }

    #[test]
    fn generation_moves_with_views_and_rests_with_them() {
        let mut state = advertised_fleet(8, 17);
        let g0 = state.generation();
        state.run_round(u32::MAX);
        assert!(state.generation() > g0, "spreading ads moves the generation");
        let g1 = state.generation();
        state.run_round(u32::MAX);
        assert_eq!(state.generation(), g1, "a converged round moves nothing");
        state.advertise(3, 1);
        assert!(state.generation() > g1, "a re-advertisement moves it again");
    }

    #[test]
    fn unchanged_fleet_rounds_reuse_the_workspace_in_place() {
        // The gf256 fingerprint idiom: after a warm round has sized the
        // partner scratch, steady-state rounds reuse it in place.
        let mut state = advertised_fleet(32, 9);
        state.run_rounds(16, 3);
        assert!(state.converged());
        let fp = (state.workspace.partners.as_ptr(), state.workspace.partners.capacity());
        state.run_rounds(8, 3);
        assert_eq!(
            fp,
            (state.workspace.partners.as_ptr(), state.workspace.partners.capacity()),
            "steady-state round reallocated the partner scratch"
        );
    }

    /// Drive the delta state and the PR 9 clone-based oracle through the
    /// same script and compare every observable after every step.
    fn assert_matches_oracle(devices: usize, seed: u64, script: &[(u8, usize, u32)]) {
        let mut delta: GossipState<u32> = GossipState::new(devices, seed);
        let mut reference: oracle::GossipState<u32> = oracle::GossipState::new(devices, seed);
        for &(op, device, arg) in script {
            match op {
                0 => {
                    let payload = device as u32 ^ arg;
                    assert_eq!(
                        delta.advertise(device, payload),
                        reference.advertise(device, payload)
                    );
                }
                _ => {
                    delta.run_round(arg);
                    reference.run_round(arg);
                }
            }
            assert_eq!(delta.converged(), reference.converged());
            assert_eq!(delta.rounds_run(), reference.rounds_run());
            for viewer in 0..devices {
                let d: Vec<(usize, u64, u32)> =
                    delta.known(viewer).map(|(h, e, p)| (h, e, *p)).collect();
                let r: Vec<(usize, u64, u32)> =
                    reference.known(viewer).map(|(h, e, p)| (h, e, *p)).collect();
                assert_eq!(d, r, "viewer {viewer} diverged from the clone-based oracle");
                assert_eq!(delta.self_ad(viewer), reference.self_ad(viewer));
                assert_eq!(delta.epoch(viewer), reference.epoch(viewer));
            }
        }
    }

    #[test]
    fn delta_exchange_matches_the_clone_based_oracle_on_a_fixed_script() {
        assert_matches_oracle(
            9,
            42,
            &[(0, 0, 1), (0, 3, 2), (1, 0, 1), (0, 3, 5), (1, 0, 2), (0, 8, 1), (1, 0, u32::MAX)],
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random advertise/round interleavings: the epoch-vector delta
        /// protocol and the PR 9 clone-based oracle produce identical
        /// view sequences, epochs, self-ads and convergence verdicts at
        /// every step.
        #[test]
        fn delta_exchange_is_byte_identical_to_the_clone_based_oracle(
            devices in 2usize..14,
            seed in any::<u64>(),
            raw in proptest::collection::vec(any::<u64>(), 1..24),
        ) {
            // Decode each word into (op, device, fanout): even words
            // advertise, odd words run a round at fanout 1..=4.
            let script: Vec<(u8, usize, u32)> = raw
                .into_iter()
                .map(|x| {
                    ((x & 1) as u8, ((x >> 1) % devices as u64) as usize, 1 + ((x >> 32) % 4) as u32)
                })
                .collect();
            assert_matches_oracle(devices, seed, &script);
        }
    }
}
