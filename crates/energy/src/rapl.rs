//! Emulated Intel RAPL energy counters (the pyRAPL substitution).
//!
//! pyRAPL measures energy by reading the `MSR_PKG_ENERGY_STATUS` family of
//! model-specific registers before and after a code region. The real
//! counters are 32-bit, tick in units of `2^-ESU` joules (ESU = 16 on the
//! i7-7700, i.e. ≈15.26 µJ per tick) and wrap around silently — correct
//! readers must compute deltas modulo 2^32. This module reproduces those
//! semantics exactly so the measurement layer above exercises the same
//! wraparound-safe read-delta-convert flow pyRAPL does.

use crate::units::{Joules, Watts};
use deep_netsim::Seconds;
use serde::{Deserialize, Serialize};

/// RAPL power domains exposed by the i7-7700.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaplDomain {
    /// Whole processor package (`PKG`).
    Package,
    /// Sum of core domains (`PP0`).
    Core,
    /// Integrated graphics / uncore (`PP1`).
    Uncore,
    /// Memory controller (`DRAM`).
    Dram,
}

impl RaplDomain {
    pub const COUNT: usize = 4;

    pub fn all() -> [RaplDomain; 4] {
        [RaplDomain::Package, RaplDomain::Core, RaplDomain::Uncore, RaplDomain::Dram]
    }

    fn index(self) -> usize {
        match self {
            RaplDomain::Package => 0,
            RaplDomain::Core => 1,
            RaplDomain::Uncore => 2,
            RaplDomain::Dram => 3,
        }
    }
}

/// Default RAPL energy-status unit: `2^-16` J per tick (ESU = 16).
pub const DEFAULT_ENERGY_UNIT_J: f64 = 1.0 / 65536.0;

/// A bank of emulated 32-bit RAPL counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaplBank {
    /// Raw 32-bit counters, one per domain, in hardware tick units.
    counters: [u32; RaplDomain::COUNT],
    /// Sub-tick residue carried between advances so no energy is lost to
    /// quantisation (kept in joules).
    residue: [f64; RaplDomain::COUNT],
    /// Joules per counter tick.
    energy_unit: f64,
}

impl RaplBank {
    /// A fresh bank with the default i7-class energy unit, all counters 0.
    pub fn new() -> Self {
        Self::with_energy_unit(DEFAULT_ENERGY_UNIT_J)
    }

    /// A bank with a custom energy unit (joules per tick).
    pub fn with_energy_unit(energy_unit: f64) -> Self {
        assert!(energy_unit > 0.0 && energy_unit.is_finite(), "invalid RAPL energy unit");
        RaplBank {
            counters: [0; RaplDomain::COUNT],
            residue: [0.0; RaplDomain::COUNT],
            energy_unit,
        }
    }

    /// Start a bank at arbitrary raw counter values (for wraparound tests
    /// and to mimic attaching to a machine that has been up for weeks).
    pub fn with_initial_counters(mut self, counters: [u32; RaplDomain::COUNT]) -> Self {
        self.counters = counters;
        self
    }

    /// Joules per tick for this bank.
    pub fn energy_unit(&self) -> f64 {
        self.energy_unit
    }

    /// Raw 32-bit register value for `domain` — what `rdmsr` would return.
    pub fn read_raw(&self, domain: RaplDomain) -> u32 {
        self.counters[domain.index()]
    }

    /// Accumulate `power × dt` of energy into `domain`, wrapping at 2^32.
    pub fn advance(&mut self, domain: RaplDomain, power: Watts, dt: Seconds) {
        assert!(dt.as_f64() >= 0.0, "cannot advance RAPL counters backwards");
        let idx = domain.index();
        let joules = power.as_f64() * dt.as_f64() + self.residue[idx];
        let ticks = (joules / self.energy_unit).floor();
        self.residue[idx] = joules - ticks * self.energy_unit;
        // Ticks may exceed u32::MAX across a long advance; wrap like hardware.
        let wrapped = (ticks % 4_294_967_296.0) as u64 as u32;
        self.counters[idx] = self.counters[idx].wrapping_add(wrapped);
    }

    /// Convenience: charge a package-level draw, attributing 80 % of it to
    /// the core domain and 5 % to DRAM, roughly the split seen on desktop
    /// parts under CPU-bound load.
    pub fn advance_package(&mut self, package_power: Watts, dt: Seconds) {
        self.advance(RaplDomain::Package, package_power, dt);
        self.advance(RaplDomain::Core, package_power.scale(0.8), dt);
        self.advance(RaplDomain::Dram, package_power.scale(0.05), dt);
    }

    /// Wraparound-correct energy delta between two raw readings.
    pub fn delta(&self, before: u32, after: u32) -> Joules {
        let ticks = after.wrapping_sub(before) as f64;
        Joules::new(ticks * self.energy_unit)
    }
}

impl Default for RaplBank {
    fn default() -> Self {
        Self::new()
    }
}

/// A pyRAPL-style region measurement: snapshot counters at `begin`, compute
/// deltas at `end`.
#[derive(Debug, Clone)]
pub struct RaplMeasurement {
    start: [u32; RaplDomain::COUNT],
}

impl RaplMeasurement {
    /// Snapshot all domain counters (pyRAPL's `Measurement.begin()`).
    pub fn begin(bank: &RaplBank) -> Self {
        let mut start = [0u32; RaplDomain::COUNT];
        for d in RaplDomain::all() {
            start[d.index()] = bank.read_raw(d);
        }
        RaplMeasurement { start }
    }

    /// Energy consumed in `domain` since `begin` (pyRAPL's `.end()` result).
    pub fn end(&self, bank: &RaplBank, domain: RaplDomain) -> Joules {
        bank.delta(self.start[domain.index()], bank.read_raw(domain))
    }

    /// Package-domain energy — the figure the paper reports for the medium
    /// device.
    pub fn package_energy(&self, bank: &RaplBank) -> Joules {
        self.end(bank, RaplDomain::Package)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_energy_matches_integrated_power() {
        let mut bank = RaplBank::new();
        let m = RaplMeasurement::begin(&bank);
        bank.advance(RaplDomain::Package, Watts::new(8.0), Seconds::new(100.0));
        let e = m.package_energy(&bank);
        assert!((e.as_f64() - 800.0).abs() < 0.01, "got {e}");
    }

    #[test]
    fn counter_wraps_like_hardware() {
        // Place the counter near the top of the 32-bit range, then push it
        // over; the delta must still be correct.
        let near_top = u32::MAX - 100;
        let mut bank = RaplBank::new().with_initial_counters([near_top; 4]);
        let m = RaplMeasurement::begin(&bank);
        // 1 J = 65536 ticks, far beyond the 100 remaining ticks.
        bank.advance(RaplDomain::Package, Watts::new(1.0), Seconds::new(1.0));
        assert!(bank.read_raw(RaplDomain::Package) < near_top, "counter should have wrapped");
        let e = m.package_energy(&bank);
        assert!((e.as_f64() - 1.0).abs() < 1e-3, "wrap-corrected delta wrong: {e}");
    }

    #[test]
    fn residue_preserves_sub_tick_energy() {
        let mut bank = RaplBank::new();
        let m = RaplMeasurement::begin(&bank);
        // Each advance is half a tick; 1000 advances = 500 ticks exactly.
        let half_tick_j = DEFAULT_ENERGY_UNIT_J / 2.0;
        for _ in 0..1000 {
            bank.advance(RaplDomain::Core, Watts::new(half_tick_j), Seconds::new(1.0));
        }
        let e = m.end(&bank, RaplDomain::Core);
        let expected = 500.0 * DEFAULT_ENERGY_UNIT_J;
        assert!((e.as_f64() - expected).abs() < DEFAULT_ENERGY_UNIT_J, "{e}");
    }

    #[test]
    fn domains_are_independent() {
        let mut bank = RaplBank::new();
        bank.advance(RaplDomain::Dram, Watts::new(3.0), Seconds::new(10.0));
        assert_eq!(bank.read_raw(RaplDomain::Package), 0);
        assert_eq!(bank.read_raw(RaplDomain::Core), 0);
        assert!(bank.read_raw(RaplDomain::Dram) > 0);
    }

    #[test]
    fn package_split_charges_core_and_dram() {
        let mut bank = RaplBank::new();
        let m = RaplMeasurement::begin(&bank);
        bank.advance_package(Watts::new(10.0), Seconds::new(60.0));
        let pkg = m.end(&bank, RaplDomain::Package).as_f64();
        let core = m.end(&bank, RaplDomain::Core).as_f64();
        let dram = m.end(&bank, RaplDomain::Dram).as_f64();
        assert!((pkg - 600.0).abs() < 0.01);
        assert!((core - 480.0).abs() < 0.01);
        assert!((dram - 30.0).abs() < 0.01);
    }

    #[test]
    fn custom_energy_unit_respected() {
        let mut bank = RaplBank::with_energy_unit(1e-3); // 1 mJ ticks
        let m = RaplMeasurement::begin(&bank);
        bank.advance(RaplDomain::Package, Watts::new(2.0), Seconds::new(5.0));
        assert_eq!(bank.read_raw(RaplDomain::Package), 10_000);
        assert!((m.package_energy(&bank).as_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_does_not_lose_energy_to_wrapping() {
        // 50 W for 3000 s = 150 kJ ≈ 9.8e9 ticks > 2^32: multiple wraps
        // inside a single advance are fine as long as reads bracket <2^32.
        let mut bank = RaplBank::new();
        bank.advance(RaplDomain::Package, Watts::new(50.0), Seconds::new(3000.0));
        // A second, short measurement still works.
        let m = RaplMeasurement::begin(&bank);
        bank.advance(RaplDomain::Package, Watts::new(50.0), Seconds::new(2.0));
        assert!((m.package_energy(&bank).as_f64() - 100.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_advance_rejected() {
        let mut bank = RaplBank::new();
        bank.advance(RaplDomain::Package, Watts::new(1.0), Seconds::new(-1.0));
    }
}
