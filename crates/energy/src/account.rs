//! Labelled energy ledgers.
//!
//! The paper aggregates `EC_total(A, R, D) = Σ EC(m_i, r_g, d_j)` over all
//! microservices of an application. [`EnergyAccount`] is that sum with
//! provenance: every charge is filed under a label (microservice name,
//! phase, device), so Figure 3a's per-microservice bars and Figure 3b's
//! per-method totals both fall out of the same ledger.

use crate::units::Joules;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An append-only ledger of energy charges keyed by label.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyAccount {
    entries: BTreeMap<String, Joules>,
}

impl EnergyAccount {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `amount` under `label`, creating the entry if needed.
    pub fn charge(&mut self, label: impl Into<String>, amount: Joules) {
        *self.entries.entry(label.into()).or_insert(Joules::ZERO) += amount;
    }

    /// Energy filed under `label` (zero if absent).
    pub fn get(&self, label: &str) -> Joules {
        self.entries.get(label).copied().unwrap_or(Joules::ZERO)
    }

    /// `EC_total`: sum over all labels.
    pub fn total(&self) -> Joules {
        self.entries.values().copied().sum()
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no charges have been filed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(label, energy)` in label order (deterministic output for
    /// table rendering).
    pub fn iter(&self) -> impl Iterator<Item = (&str, Joules)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fold another ledger into this one, label by label.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (label, amount) in other.iter() {
            self.charge(label, amount);
        }
    }

    /// The label with the highest charge, if any (Figure 3a's observation
    /// that training microservices dominate).
    pub fn max_entry(&self) -> Option<(&str, Joules)> {
        self.iter().max_by(|a, b| a.1.partial_cmp(&b.1).expect("energy is never NaN"))
    }

    /// Each label's share of the total, in label order.
    pub fn shares(&self) -> Vec<(String, f64)> {
        let total = self.total().as_f64();
        if total == 0.0 {
            return self.entries.keys().map(|k| (k.clone(), 0.0)).collect();
        }
        self.entries.iter().map(|(k, v)| (k.clone(), v.as_f64() / total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_label() {
        let mut acc = EnergyAccount::new();
        acc.charge("ha-train", Joules::new(3000.0));
        acc.charge("ha-train", Joules::new(264.0));
        acc.charge("transcode", Joules::new(857.0));
        assert!((acc.get("ha-train").as_f64() - 3264.0).abs() < 1e-9);
        assert!((acc.total().as_f64() - 4121.0).abs() < 1e-9);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn absent_label_reads_zero() {
        let acc = EnergyAccount::new();
        assert_eq!(acc.get("nope"), Joules::ZERO);
        assert!(acc.is_empty());
        assert_eq!(acc.max_entry(), None);
    }

    #[test]
    fn merge_combines_ledgers() {
        let mut a = EnergyAccount::new();
        a.charge("x", Joules::new(1.0));
        a.charge("y", Joules::new(2.0));
        let mut b = EnergyAccount::new();
        b.charge("y", Joules::new(3.0));
        b.charge("z", Joules::new(4.0));
        a.merge(&b);
        assert_eq!(a.get("x").as_f64(), 1.0);
        assert_eq!(a.get("y").as_f64(), 5.0);
        assert_eq!(a.get("z").as_f64(), 4.0);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn max_entry_finds_dominant_microservice() {
        let mut acc = EnergyAccount::new();
        acc.charge("transcode", Joules::new(857.0));
        acc.charge("ha-train", Joules::new(3264.0));
        acc.charge("la-infer", Joules::new(830.0));
        let (label, e) = acc.max_entry().unwrap();
        assert_eq!(label, "ha-train");
        assert!((e.as_f64() - 3264.0).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut acc = EnergyAccount::new();
        acc.charge("a", Joules::new(10.0));
        acc.charge("b", Joules::new(30.0));
        let shares = acc.shares();
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((shares[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iteration_is_deterministic_label_order() {
        let mut acc = EnergyAccount::new();
        acc.charge("zeta", Joules::new(1.0));
        acc.charge("alpha", Joules::new(1.0));
        acc.charge("mid", Joules::new(1.0));
        let labels: Vec<&str> = acc.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn serde_round_trip() {
        let mut acc = EnergyAccount::new();
        acc.charge("a", Joules::new(42.0));
        let json = serde_json::to_string(&acc).unwrap();
        let back: EnergyAccount = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("a").as_f64(), 42.0);
    }
}
