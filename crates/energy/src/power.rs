//! Per-device power models.
//!
//! The paper's energy model is `EC(m_i, r_g, d_j) = Ea + Es` where `Ea` is
//! "directly related to `CT(m_i, r_g, d_j)`" and `Es` is the static draw of
//! the device. We realise that as
//!
//! ```text
//! EC = Σ_phase P_active(d_j, phase) · t_phase  +  P_static(d_j) · CT
//! ```
//!
//! with the three phases of the completion-time model: deployment (image
//! pull + extraction), dataflow transmission, and processing. Splitting the
//! active draw per phase lets us reproduce the testbed observation that a
//! device pulling an image over the NIC draws less than one crunching an ML
//! training job — which is exactly why registry placement has a small but
//! non-zero energy effect (the paper's headline ≈0.34 %).

use crate::units::{Joules, Watts};
use deep_netsim::Seconds;
use serde::{Deserialize, Serialize};

/// The phase of a microservice's lifetime on a device; mirrors the three
/// terms of `CT = Td + Tc + Tp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionPhase {
    /// `Td`: pulling and unpacking the container image.
    Deployment,
    /// `Tc`: receiving the upstream dataflow.
    Transfer,
    /// `Tp`: executing the microservice over the dataflow.
    Processing,
}

impl ExecutionPhase {
    /// All phases in `CT` order.
    pub fn all() -> [ExecutionPhase; 3] {
        [ExecutionPhase::Deployment, ExecutionPhase::Transfer, ExecutionPhase::Processing]
    }
}

/// Power model of one edge device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DevicePowerModel {
    /// Idle/background draw `Es` per second, always paid while the device
    /// is busy with the microservice.
    pub static_watts: Watts,
    /// Extra draw while pulling + extracting an image (NIC + disk).
    pub deploy_watts: Watts,
    /// Extra draw while receiving dataflow bytes (NIC).
    pub transfer_watts: Watts,
    /// Extra draw while processing (CPU at load).
    pub process_watts: Watts,
}

impl DevicePowerModel {
    /// A model with uniform active draw across phases — the simplest
    /// reading of the paper's `Ea ∝ CT`.
    pub fn uniform(static_watts: Watts, active_watts: Watts) -> Self {
        DevicePowerModel {
            static_watts,
            deploy_watts: active_watts,
            transfer_watts: active_watts,
            process_watts: active_watts,
        }
    }

    /// Fully phase-differentiated model.
    pub fn per_phase(
        static_watts: Watts,
        deploy_watts: Watts,
        transfer_watts: Watts,
        process_watts: Watts,
    ) -> Self {
        DevicePowerModel { static_watts, deploy_watts, transfer_watts, process_watts }
    }

    /// Active draw during `phase` (excludes static draw).
    pub fn active_watts(&self, phase: ExecutionPhase) -> Watts {
        match phase {
            ExecutionPhase::Deployment => self.deploy_watts,
            ExecutionPhase::Transfer => self.transfer_watts,
            ExecutionPhase::Processing => self.process_watts,
        }
    }

    /// Total draw during `phase` (active + static).
    pub fn total_watts(&self, phase: ExecutionPhase) -> Watts {
        self.active_watts(phase) + self.static_watts
    }

    /// Active energy `Ea` for one phase of duration `t`.
    pub fn active_energy(&self, phase: ExecutionPhase, t: Seconds) -> Joules {
        self.active_watts(phase) * t
    }

    /// Static energy `Es` over a total busy time `ct`.
    pub fn static_energy(&self, ct: Seconds) -> Joules {
        self.static_watts * ct
    }

    /// Full `EC = Σ Ea(phase) + Es(CT)` for the phase durations
    /// `(td, tc, tp)`; `CT = td + tc + tp` as in the paper.
    pub fn energy(&self, td: Seconds, tc: Seconds, tp: Seconds) -> Joules {
        let ct = td + tc + tp;
        self.active_energy(ExecutionPhase::Deployment, td)
            + self.active_energy(ExecutionPhase::Transfer, tc)
            + self.active_energy(ExecutionPhase::Processing, tp)
            + self.static_energy(ct)
    }

    /// The canonical medium device of the testbed (Intel i7-7700 class).
    ///
    /// Calibrated against Table II: e.g. text `HA Train` at `CT ≈ 467 s`
    /// consumed ≈3.6 kJ, an average draw of ≈7.7 W above idle-adjusted
    /// baseline — consistent with a partially-loaded 65 W-TDP desktop part
    /// where pyRAPL only meters the package domain.
    pub fn intel_i7_7700() -> Self {
        DevicePowerModel::per_phase(
            Watts::new(2.0), // package idle floor seen by RAPL
            Watts::new(2.5), // NIC+disk during pull
            Watts::new(2.0), // NIC during dataflow receive
            Watts::new(6.0), // package under single-service ML load
        )
    }

    /// The canonical small device of the testbed (Raspberry Pi 4 class).
    ///
    /// Wall-meter figures include PSU losses, so the static floor is a
    /// larger fraction of total draw than on the Intel part; peak whole-
    /// board draw under load is ≈7–8 W, consistent with Table II's small-
    /// device energies (e.g. video `HA Train`: ≈5 kJ over ≈1.2 ks ≈ 4 W).
    pub fn raspberry_pi_4() -> Self {
        DevicePowerModel::per_phase(
            Watts::new(2.7), // idle board + PSU overhead at the wall
            Watts::new(0.9), // NIC+SD during pull
            Watts::new(0.7), // NIC during dataflow receive
            Watts::new(1.3), // CPU under load (whole-board delta)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_charges_all_phases_equally() {
        let m = DevicePowerModel::uniform(Watts::new(1.0), Watts::new(4.0));
        for phase in ExecutionPhase::all() {
            assert_eq!(m.active_watts(phase), Watts::new(4.0));
            assert_eq!(m.total_watts(phase), Watts::new(5.0));
        }
    }

    #[test]
    fn energy_decomposes_into_active_plus_static() {
        let m = DevicePowerModel::per_phase(
            Watts::new(2.0),
            Watts::new(3.0),
            Watts::new(1.0),
            Watts::new(6.0),
        );
        let (td, tc, tp) = (Seconds::new(10.0), Seconds::new(5.0), Seconds::new(100.0));
        let e = m.energy(td, tc, tp);
        // active: 3*10 + 1*5 + 6*100 = 635; static: 2*115 = 230.
        assert!((e.as_f64() - 865.0).abs() < 1e-9);
        let active = m.active_energy(ExecutionPhase::Deployment, td)
            + m.active_energy(ExecutionPhase::Transfer, tc)
            + m.active_energy(ExecutionPhase::Processing, tp);
        let reconstructed = active + m.static_energy(td + tc + tp);
        assert!((e.as_f64() - reconstructed.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn zero_durations_cost_nothing() {
        let m = DevicePowerModel::intel_i7_7700();
        assert_eq!(m.energy(Seconds::ZERO, Seconds::ZERO, Seconds::ZERO), Joules::ZERO);
    }

    #[test]
    fn processing_draws_more_than_deployment_on_both_testbed_devices() {
        // This asymmetry is what gives registry choice its (small) energy
        // leverage: a second of pulling costs less than a second of compute.
        for m in [DevicePowerModel::intel_i7_7700(), DevicePowerModel::raspberry_pi_4()] {
            assert!(m.process_watts > m.deploy_watts);
            assert!(m.process_watts > m.transfer_watts);
        }
    }

    #[test]
    fn medium_device_outdraw_small_under_load() {
        let med = DevicePowerModel::intel_i7_7700();
        let small = DevicePowerModel::raspberry_pi_4();
        assert!(
            med.total_watts(ExecutionPhase::Processing).as_f64()
                > small.total_watts(ExecutionPhase::Processing).as_f64()
        );
    }

    #[test]
    fn deployment_time_changes_energy() {
        // The crux of the paper: shaving deployment seconds saves energy.
        let m = DevicePowerModel::intel_i7_7700();
        let slow = m.energy(Seconds::new(60.0), Seconds::new(5.0), Seconds::new(100.0));
        let fast = m.energy(Seconds::new(40.0), Seconds::new(5.0), Seconds::new(100.0));
        assert!(slow > fast);
        let saved = slow - fast;
        // 20 s of (deploy 2.5 W + static 2.0 W) = 90 J.
        assert!((saved.as_f64() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let m = DevicePowerModel::raspberry_pi_4();
        let json = serde_json::to_string(&m).unwrap();
        let back: DevicePowerModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
