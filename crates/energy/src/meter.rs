//! Sampling wall-power meter (the Ketotek substitution).
//!
//! The paper measures the ARM device with a plug-in wall meter. Such meters
//! sample instantaneous power at a fixed rate (order 1 Hz) and integrate;
//! they therefore (a) see the whole board including PSU losses and (b)
//! quantise short power excursions. [`PowerMeter`] reproduces both: callers
//! feed it a piecewise-constant power trace and it integrates only at its
//! sample instants, so sub-sample spikes are attributed to whichever level
//! the meter happened to observe — exactly the error mode of the physical
//! instrument.

use crate::units::{Joules, Watts};
use deep_netsim::Seconds;
use serde::{Deserialize, Serialize};

/// A sampling wall meter integrating power over time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerMeter {
    sample_interval: Seconds,
    /// Wall-clock position of the meter.
    now: Seconds,
    /// Time of the next sampling instant.
    next_sample: Seconds,
    /// Power level the meter saw at its most recent sample.
    held_power: Watts,
    /// Accumulated energy.
    total: Joules,
    /// Number of samples taken.
    samples: u64,
}

impl PowerMeter {
    /// A meter sampling every `sample_interval` seconds (Ketotek-class
    /// meters refresh at ~1 Hz).
    pub fn new(sample_interval: Seconds) -> Self {
        assert!(sample_interval.as_f64() > 0.0, "sample interval must be positive");
        PowerMeter {
            sample_interval,
            now: Seconds::ZERO,
            next_sample: Seconds::ZERO,
            held_power: Watts::ZERO,
            total: Joules::ZERO,
            samples: 0,
        }
    }

    /// A 1 Hz meter, matching the testbed instrument.
    pub fn ketotek() -> Self {
        PowerMeter::new(Seconds::new(1.0))
    }

    /// Feed the meter a constant power level lasting `duration`.
    ///
    /// The meter integrates its *held* (last-sampled) power between sample
    /// instants, re-sampling whenever the clock crosses one.
    pub fn observe(&mut self, power: Watts, duration: Seconds) {
        assert!(duration.as_f64() >= 0.0, "cannot observe negative duration");
        let mut remaining = duration.as_f64();
        while remaining > 0.0 {
            if self.now.as_f64() >= self.next_sample.as_f64() {
                // Sampling instant: the meter reads the live power level.
                self.held_power = power;
                self.samples += 1;
                self.next_sample += self.sample_interval;
            }
            let until_sample = (self.next_sample - self.now).as_f64();
            let step = remaining.min(until_sample);
            self.total += self.held_power * Seconds::new(step);
            self.now += Seconds::new(step);
            remaining -= step;
        }
    }

    /// Energy accumulated so far.
    pub fn energy(&self) -> Joules {
        self.total
    }

    /// Number of samples the meter has taken.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Current meter clock.
    pub fn elapsed(&self) -> Seconds {
        self.now
    }

    /// Reset the reading (as the physical meter's reset button does),
    /// keeping the clock phase.
    pub fn reset_energy(&mut self) {
        self.total = Joules::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integrates_exactly() {
        let mut m = PowerMeter::ketotek();
        m.observe(Watts::new(5.0), Seconds::new(100.0));
        assert!((m.energy().as_f64() - 500.0).abs() < 1e-9);
        assert_eq!(m.sample_count(), 100);
    }

    #[test]
    fn sub_sample_spike_is_missed() {
        // 1 Hz meter, 10 s at 1 W with a 0.2 s 100 W spike mid-interval:
        // the spike falls between samples and is integrated at the held 1 W.
        let mut m = PowerMeter::ketotek();
        m.observe(Watts::new(1.0), Seconds::new(5.5));
        m.observe(Watts::new(100.0), Seconds::new(0.2));
        m.observe(Watts::new(1.0), Seconds::new(4.3));
        // True energy: 5.5 + 20 + 4.3 = 29.8 J; meter sees 10 J.
        assert!((m.energy().as_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn spike_at_sample_instant_is_held_for_full_interval() {
        // A spike landing exactly on a sampling instant is over-counted:
        // the meter holds it until the next sample.
        let mut m = PowerMeter::ketotek();
        m.observe(Watts::new(100.0), Seconds::new(0.2)); // sampled at t=0
        m.observe(Watts::new(1.0), Seconds::new(0.8)); // still held at 100 W
        m.observe(Watts::new(1.0), Seconds::new(9.0));
        // meter: 100*1.0 + 1*9 = 109 J; truth: 20 + 0.8 + 9 = 29.8 J.
        assert!((m.energy().as_f64() - 109.0).abs() < 1e-9);
    }

    #[test]
    fn finer_sampling_converges_to_truth() {
        let coarse = {
            let mut m = PowerMeter::new(Seconds::new(1.0));
            m.observe(Watts::new(2.0), Seconds::new(3.5));
            m.observe(Watts::new(8.0), Seconds::new(3.5));
            m.energy().as_f64()
        };
        let fine = {
            let mut m = PowerMeter::new(Seconds::new(0.01));
            m.observe(Watts::new(2.0), Seconds::new(3.5));
            m.observe(Watts::new(8.0), Seconds::new(3.5));
            m.energy().as_f64()
        };
        let truth = 2.0 * 3.5 + 8.0 * 3.5;
        assert!((fine - truth).abs() < (coarse - truth).abs() + 1e-12);
        assert!((fine - truth).abs() < 0.1);
    }

    #[test]
    fn reset_clears_energy_but_not_clock() {
        let mut m = PowerMeter::ketotek();
        m.observe(Watts::new(5.0), Seconds::new(10.0));
        m.reset_energy();
        assert_eq!(m.energy(), Joules::ZERO);
        assert!((m.elapsed().as_f64() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_is_noop() {
        let mut m = PowerMeter::ketotek();
        m.observe(Watts::new(5.0), Seconds::ZERO);
        assert_eq!(m.energy(), Joules::ZERO);
        assert_eq!(m.sample_count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        PowerMeter::new(Seconds::ZERO);
    }
}
