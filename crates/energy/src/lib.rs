//! Energy substrate for the DEEP reproduction.
//!
//! The paper measures energy with two instruments: pyRAPL reading Intel RAPL
//! MSR counters on the medium device, and a Ketotek wall-power meter on the
//! ARM small device. Its model (Section III-D2) splits consumption into
//! active energy `Ea(m_i, r_g, d_j)` — proportional to the completion time
//! `CT` — and static energy `Es(d_j)` for keeping the device up.
//!
//! This crate provides all of that as reusable pieces:
//!
//! * [`units`] — [`Watts`]/[`Joules`] newtypes with dimensional arithmetic;
//! * [`power`] — per-device power models with per-phase active draw
//!   (deployment, dataflow transfer, processing) plus static draw;
//! * [`rapl`] — an emulated RAPL counter bank with the real MSR's 32-bit
//!   wraparound semantics and a pyRAPL-style measurement API;
//! * [`meter`] — a sampling wall-power meter in the spirit of the Ketotek
//!   unit, integrating instantaneous power at a finite sample rate;
//! * [`account`] — labelled energy ledgers used by the experiment drivers.

pub mod account;
pub mod meter;
pub mod power;
pub mod rapl;
pub mod units;

pub use account::EnergyAccount;
pub use meter::PowerMeter;
pub use power::{DevicePowerModel, ExecutionPhase};
pub use rapl::{RaplBank, RaplDomain, RaplMeasurement};
pub use units::{Joules, Watts};
