//! Power and energy newtypes.
//!
//! `Watts * Seconds = Joules` is the only way to mint energy in this
//! workspace, which keeps the `Ea ∝ CT` structure of the paper's model
//! visible in the types.

use deep_netsim::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Instantaneous power draw in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    pub const ZERO: Watts = Watts(0.0);

    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "power must be finite and non-negative");
        Watts(v)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Scale by a dimensionless factor (e.g. utilization).
    #[inline]
    pub fn scale(self, factor: f64) -> Watts {
        Watts::new(self.0 * factor)
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        assert!(rhs.as_f64() >= 0.0, "cannot integrate power over negative time");
        Joules(self.0 * rhs.as_f64())
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

/// An amount of energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    pub const ZERO: Joules = Joules(0.0);

    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "energy must be finite and non-negative");
        Joules(v)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn as_kilojoules(self) -> f64 {
        self.0 / 1e3
    }

    /// Construct from microjoules — RAPL counters tick in µJ-scale units.
    #[inline]
    pub fn from_microjoules(uj: f64) -> Self {
        Joules::new(uj / 1e6)
    }

    #[inline]
    pub fn as_microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// Relative difference `(self - other) / other`, used for the paper's
    /// "% improvement" claims.
    pub fn relative_delta(self, other: Joules) -> f64 {
        assert!(other.0 > 0.0, "relative delta against zero energy");
        (self.0 - other.0) / other.0
    }

    /// Average power over a duration.
    pub fn average_power(self, over: Seconds) -> Watts {
        assert!(over.as_f64() > 0.0, "average power over non-positive duration");
        Watts::new(self.0 / over.as_f64())
    }
}

impl Add for Joules {
    type Output = Joules;
    #[inline]
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    #[inline]
    fn sub(self, rhs: Joules) -> Joules {
        assert!(self.0 >= rhs.0, "energy subtraction would go negative");
        Joules(self.0 - rhs.0)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, Add::add)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: f64) -> Joules {
        Joules::new(self.0 * rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Joules) -> f64 {
        assert!(rhs.0 != 0.0, "division by zero energy");
        self.0 / rhs.0
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e3 {
            write!(f, "{:.3} kJ", self.0 / 1e3)
        } else {
            write!(f, "{:.2} J", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(65.0) * Seconds::new(10.0);
        assert!((e.as_f64() - 650.0).abs() < 1e-9);
    }

    #[test]
    fn joules_arithmetic() {
        let a = Joules::new(100.0);
        let b = Joules::new(40.0);
        assert_eq!((a + b).as_f64(), 140.0);
        assert_eq!((a - b).as_f64(), 60.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_f64(), 140.0);
        assert_eq!((a * 0.5).as_f64(), 50.0);
        assert!((a / b - 2.5).abs() < 1e-12);
        let total: Joules = [a, b].into_iter().sum();
        assert_eq!(total.as_f64(), 140.0);
    }

    #[test]
    fn microjoule_round_trip() {
        let e = Joules::from_microjoules(1_234_567.0);
        assert!((e.as_f64() - 1.234567).abs() < 1e-12);
        assert!((e.as_microjoules() - 1_234_567.0).abs() < 1e-6);
    }

    #[test]
    fn relative_delta_matches_paper_claim_shape() {
        // DEEP saves ~18 J out of ~5.3 kJ => ~0.34 %.
        let deep = Joules::new(5282.0);
        let hub = Joules::new(5300.0);
        let delta = deep.relative_delta(hub);
        assert!(delta < 0.0);
        assert!((delta.abs() - 0.0034).abs() < 5e-4);
    }

    #[test]
    fn average_power() {
        let p = Joules::new(650.0).average_power(Seconds::new(10.0));
        assert!((p.as_f64() - 65.0).abs() < 1e-12);
    }

    #[test]
    fn watts_scale_and_add() {
        let w = Watts::new(10.0).scale(0.5) + Watts::new(5.0);
        assert!((w.as_f64() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Joules::new(856.0)), "856.00 J");
        assert_eq!(format!("{}", Joules::new(3264.0)), "3.264 kJ");
        assert_eq!(format!("{}", Watts::new(4.5)), "4.50 W");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_power_rejected() {
        Watts::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "go negative")]
    fn energy_underflow_rejected() {
        let _ = Joules::new(1.0) - Joules::new(2.0);
    }

    #[test]
    fn kilojoules_conversion() {
        assert!((Joules::new(5300.0).as_kilojoules() - 5.3).abs() < 1e-12);
    }
}
