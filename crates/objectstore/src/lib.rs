//! MinIO-like S3-compatible object store.
//!
//! The paper's regional Docker registry is "a MinIO-based Docker registry
//! locally deployed in our laboratory" — a registry whose blob storage is
//! an S3-compatible object store "provisioned on a local server with a
//! specific storage capacity according to the user's requirements (e.g.,
//! 100 GB)". This crate is that substrate:
//!
//! * [`store`] — buckets and objects with ETags, capacity quotas, listing
//!   (the S3 surface the registry uses);
//! * [`multipart`] — S3 multipart uploads (how registries push large
//!   layers);
//! * [`versioning`] — per-key version history, S3-style;
//! * [`gf256`] / [`erasure`] — GF(2^8) arithmetic and systematic
//!   Reed–Solomon coding, MinIO's storage-redundancy mechanism;
//! * [`drives`] — an erasure-set of simulated drives with failure and
//!   healing, mirroring MinIO's drive model.
//!
//! Everything is in-memory and deterministic; latency/bandwidth are
//! supplied by `deep-netsim` at the layer above.

pub mod drives;
pub mod erasure;
pub mod gf256;
pub mod hash64;
pub mod multipart;
pub mod scrub;
pub mod store;
pub mod versioning;

pub use drives::{DriveSet, DriveSetError};
pub use erasure::{ErasureCoder, ErasureError};
pub use hash64::{checksum64, Hash64};
pub use multipart::{MultipartError, MultipartUpload};
pub use scrub::{ScrubReport, ScrubbedSet};
pub use store::{Bucket, ObjectMeta, ObjectStore, StoreError};
pub use versioning::VersionedBucket;
