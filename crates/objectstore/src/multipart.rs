//! S3 multipart uploads.
//!
//! Registries push multi-gigabyte layers as multipart uploads: initiate,
//! upload parts (possibly out of order), then complete with the part list.
//! Aborting discards staged parts without touching the bucket.

use crate::store::{ObjectMeta, ObjectStore, StoreError};
use bytes::{Bytes, BytesMut};
use std::collections::BTreeMap;
use std::fmt;

/// Errors specific to multipart state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultipartError {
    /// Completing with a part number that was never uploaded.
    MissingPart(u32),
    /// Parts must be numbered starting at 1 (S3 semantics).
    BadPartNumber(u32),
    /// Underlying store failure at completion time.
    Store(StoreError),
    /// Upload already completed or aborted.
    Finished,
}

impl fmt::Display for MultipartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultipartError::MissingPart(n) => write!(f, "part {n} was never uploaded"),
            MultipartError::BadPartNumber(n) => write!(f, "invalid part number {n}"),
            MultipartError::Store(e) => write!(f, "store error: {e}"),
            MultipartError::Finished => write!(f, "upload already completed or aborted"),
        }
    }
}

impl std::error::Error for MultipartError {}

impl From<StoreError> for MultipartError {
    fn from(e: StoreError) -> Self {
        MultipartError::Store(e)
    }
}

/// One in-flight multipart upload session.
pub struct MultipartUpload {
    store: ObjectStore,
    bucket: String,
    key: String,
    parts: BTreeMap<u32, Bytes>,
    finished: bool,
}

impl MultipartUpload {
    /// Initiate an upload of `bucket/key` (S3 `CreateMultipartUpload`).
    pub fn initiate(store: &ObjectStore, bucket: &str, key: &str) -> Self {
        MultipartUpload {
            store: store.clone(),
            bucket: bucket.to_string(),
            key: key.to_string(),
            parts: BTreeMap::new(),
            finished: false,
        }
    }

    /// Upload (or replace) part `number` (1-based, S3 `UploadPart`).
    pub fn upload_part(&mut self, number: u32, data: Bytes) -> Result<(), MultipartError> {
        if self.finished {
            return Err(MultipartError::Finished);
        }
        if number == 0 {
            return Err(MultipartError::BadPartNumber(0));
        }
        self.parts.insert(number, data);
        Ok(())
    }

    /// Number of staged parts.
    pub fn staged_parts(&self) -> usize {
        self.parts.len()
    }

    /// Checksum of the object the staged parts would assemble into,
    /// computed by streaming the parts in part-number order — no
    /// concatenation. Matches the ETag [`MultipartUpload::complete`]
    /// commits, so clients can verify before completing.
    pub fn staged_checksum(&self) -> u64 {
        let mut h = crate::hash64::Hash64::new();
        for data in self.parts.values() {
            h.update(data);
        }
        h.finish()
    }

    /// Complete the upload: concatenate parts in part-number order and
    /// commit as one object (S3 `CompleteMultipartUpload`). `expected`
    /// lists the part numbers the client believes it uploaded; a mismatch
    /// aborts with [`MultipartError::MissingPart`].
    pub fn complete(mut self, expected: &[u32]) -> Result<ObjectMeta, MultipartError> {
        if self.finished {
            return Err(MultipartError::Finished);
        }
        for &n in expected {
            if !self.parts.contains_key(&n) {
                return Err(MultipartError::MissingPart(n));
            }
        }
        let total: usize = self.parts.values().map(Bytes::len).sum();
        let mut body = BytesMut::with_capacity(total);
        for data in self.parts.values() {
            body.extend_from_slice(data);
        }
        self.finished = true;
        Ok(self.store.put_object(&self.bucket, &self.key, body.freeze())?)
    }

    /// Abort: discard staged parts (S3 `AbortMultipartUpload`).
    pub fn abort(mut self) {
        self.parts.clear();
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_netsim::DataSize;

    fn store() -> ObjectStore {
        let s = ObjectStore::with_capacity(DataSize::megabytes(10.0));
        s.create_bucket("registry").unwrap();
        s
    }

    #[test]
    fn parts_assemble_in_number_order() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "layer");
        up.upload_part(2, Bytes::from_static(b"world")).unwrap();
        up.upload_part(1, Bytes::from_static(b"hello ")).unwrap();
        let meta = up.complete(&[1, 2]).unwrap();
        assert_eq!(meta.size, DataSize::bytes(11));
        assert_eq!(s.get_object("registry", "layer").unwrap(), Bytes::from_static(b"hello world"));
    }

    #[test]
    fn replacing_a_part_keeps_latest() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "k");
        up.upload_part(1, Bytes::from_static(b"old")).unwrap();
        up.upload_part(1, Bytes::from_static(b"new")).unwrap();
        assert_eq!(up.staged_parts(), 1);
        up.complete(&[1]).unwrap();
        assert_eq!(s.get_object("registry", "k").unwrap(), Bytes::from_static(b"new"));
    }

    #[test]
    fn staged_checksum_matches_committed_etag() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "layer");
        up.upload_part(2, Bytes::from_static(b"world")).unwrap();
        up.upload_part(1, Bytes::from_static(b"hello ")).unwrap();
        let staged = up.staged_checksum();
        let meta = up.complete(&[1, 2]).unwrap();
        assert_eq!(meta.etag, staged, "streaming checksum equals committed ETag");
    }

    #[test]
    fn missing_part_fails_complete() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "k");
        up.upload_part(1, Bytes::from_static(b"a")).unwrap();
        assert_eq!(up.complete(&[1, 2]).unwrap_err(), MultipartError::MissingPart(2));
    }

    #[test]
    fn part_zero_rejected() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "k");
        assert_eq!(
            up.upload_part(0, Bytes::from_static(b"a")).unwrap_err(),
            MultipartError::BadPartNumber(0)
        );
    }

    #[test]
    fn abort_leaves_store_untouched() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "k");
        up.upload_part(1, Bytes::from_static(b"a")).unwrap();
        up.abort();
        assert!(s.get_object("registry", "k").is_err());
    }

    #[test]
    fn quota_failure_surfaces_as_store_error() {
        let s = ObjectStore::with_capacity(DataSize::bytes(4));
        s.create_bucket("b").unwrap();
        let mut up = MultipartUpload::initiate(&s, "b", "big");
        up.upload_part(1, Bytes::from(vec![0u8; 100])).unwrap();
        assert!(matches!(up.complete(&[1]).unwrap_err(), MultipartError::Store(_)));
    }

    #[test]
    fn upload_after_finish_rejected() {
        let s = store();
        let mut up = MultipartUpload::initiate(&s, "registry", "k");
        up.upload_part(1, Bytes::from_static(b"x")).unwrap();
        // complete consumes; simulate finished via abort path on a fresh one
        let mut up2 = MultipartUpload::initiate(&s, "registry", "k2");
        up2.finished = true;
        assert_eq!(
            up2.upload_part(1, Bytes::from_static(b"x")).unwrap_err(),
            MultipartError::Finished
        );
        up.complete(&[1]).unwrap();
    }
}
