//! Wide 64-bit content checksums for ETags and bitrot detection.
//!
//! The store's original ETag/scrub hash was byte-at-a-time FNV-1a — a
//! strict dependency chain of one XOR and one multiply per *byte*, which
//! caps throughput far below memory bandwidth on multi-megabyte layer
//! blobs. This kernel runs four independent FNV-style lanes over 32-byte
//! blocks (one `u64` word per lane per step), so the four multiplies per
//! step pipeline in parallel, then mixes the lanes and the total length
//! into one 64-bit digest.
//!
//! Not cryptographic — the threat model is bitrot and cache keys, not an
//! adversary (content addressing uses the registry's SHA-256).

const SEED: [u64; 4] = [
    0xcbf29ce484222325, // FNV-1a offset basis
    0x9e3779b97f4a7c15, // golden-ratio increment
    0xa0761d6478bd642f, // wyhash constant
    0x2545f4914f6cdd1d, // xorshift* multiplier
];
const PRIME: u64 = 0x100000001b3;

#[inline]
fn lane_step(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(PRIME)
}

/// Final avalanche (splitmix64 finalizer).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Streaming four-lane checksum. Incremental updates produce the same
/// digest as a one-shot pass over the concatenation, so callers holding an
/// object in parts (multipart uploads) can checksum without assembling it.
#[derive(Debug, Clone)]
pub struct Hash64 {
    lanes: [u64; 4],
    buf: [u8; 32],
    buffered: usize,
    length: u64,
}

impl Default for Hash64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hash64 {
    pub fn new() -> Self {
        Hash64 { lanes: SEED, buf: [0; 32], buffered: 0, length: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (32 - self.buffered).min(data.len());
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 32 {
                let block = self.buf;
                self.absorb_block(&block);
                self.buffered = 0;
            }
            if data.is_empty() {
                // Nothing left: the partial buffer (if any) must survive.
                return;
            }
        }
        let mut blocks = data.chunks_exact(32);
        for block in &mut blocks {
            self.absorb_block(block.try_into().expect("chunks_exact(32)"));
        }
        let tail = blocks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    #[inline]
    fn absorb_block(&mut self, block: &[u8; 32]) {
        // Four independent multiply chains — the CPU overlaps them.
        self.lanes[0] =
            lane_step(self.lanes[0], u64::from_le_bytes(block[0..8].try_into().expect("8")));
        self.lanes[1] =
            lane_step(self.lanes[1], u64::from_le_bytes(block[8..16].try_into().expect("8")));
        self.lanes[2] =
            lane_step(self.lanes[2], u64::from_le_bytes(block[16..24].try_into().expect("8")));
        self.lanes[3] =
            lane_step(self.lanes[3], u64::from_le_bytes(block[24..32].try_into().expect("8")));
    }

    /// Produce the digest (the hasher may keep absorbing afterwards).
    pub fn finish(&self) -> u64 {
        // Tail: zero-pad to a block but bind the true length so trailing
        // zeros and padding are distinguishable.
        let mut lanes = self.lanes;
        if self.buffered > 0 {
            let mut block = [0u8; 32];
            block[..self.buffered].copy_from_slice(&self.buf[..self.buffered]);
            lanes[0] = lane_step(lanes[0], u64::from_le_bytes(block[0..8].try_into().expect("8")));
            lanes[1] = lane_step(lanes[1], u64::from_le_bytes(block[8..16].try_into().expect("8")));
            lanes[2] =
                lane_step(lanes[2], u64::from_le_bytes(block[16..24].try_into().expect("8")));
            lanes[3] =
                lane_step(lanes[3], u64::from_le_bytes(block[24..32].try_into().expect("8")));
        }
        let combined = mix(lanes[0])
            .wrapping_add(mix(lanes[1]).rotate_left(17))
            .wrapping_add(mix(lanes[2]).rotate_left(31))
            .wrapping_add(mix(lanes[3]).rotate_left(47));
        mix(combined ^ self.length)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum64(data: &[u8]) -> u64 {
    let mut h = Hash64::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn deterministic_and_content_sensitive() {
        let a = noise(1000, 1);
        assert_eq!(checksum64(&a), checksum64(&a));
        let mut b = a.clone();
        b[500] ^= 1;
        assert_ne!(checksum64(&a), checksum64(&b));
    }

    #[test]
    fn length_extension_of_zeros_changes_digest() {
        // Zero-padding must not collide with the unpadded content.
        let a = vec![0u8; 31];
        let b = vec![0u8; 32];
        let c = vec![0u8; 33];
        assert_ne!(checksum64(&a), checksum64(&b));
        assert_ne!(checksum64(&b), checksum64(&c));
        assert_ne!(checksum64(&[]), checksum64(&[0]));
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let msg = noise(257, 3);
        let want = checksum64(&msg);
        for split in [0, 1, 31, 32, 33, 64, 100, 255, 256, 257] {
            let mut h = Hash64::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finish(), want, "split {split}");
        }
        // Byte-at-a-time.
        let mut h = Hash64::new();
        for b in &msg {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finish(), want);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut h = Hash64::new();
        h.update(b"part-1");
        let first = h.finish();
        assert_eq!(h.finish(), first);
        h.update(b"part-2");
        assert_ne!(h.finish(), first);
    }

    #[test]
    fn empty_input_has_stable_digest() {
        assert_eq!(checksum64(&[]), Hash64::new().finish());
    }
}
