//! Bitrot scrubbing: checksum-verified shard integrity (MinIO's bitrot
//! protection).
//!
//! MinIO checksums every shard at write time and verifies on read/heal;
//! silent corruption (bitrot) is detected and the shard treated as lost,
//! letting erasure decoding reconstruct it. [`ScrubbedSet`] wraps a
//! [`crate::drives::DriveSet`]-style shard layout with per-shard FNV checksums and a
//! scrubbing pass that quarantines corrupt shards.

use crate::erasure::{ErasureCoder, ErasureError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from the scrubbed store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubError {
    NoSuchObject(String),
    Unrecoverable(ErasureError),
    DriveOutOfRange(usize),
}

impl fmt::Display for ScrubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScrubError::NoSuchObject(k) => write!(f, "no such object {k:?}"),
            ScrubError::Unrecoverable(e) => write!(f, "unrecoverable: {e}"),
            ScrubError::DriveOutOfRange(d) => write!(f, "drive {d} out of range"),
        }
    }
}

impl std::error::Error for ScrubError {}

/// Wide-lane shard checksum (not cryptographic; the threat is bitrot, not
/// an adversary) — see [`crate::hash64`] for the kernel.
fn checksum(data: &[u8]) -> u64 {
    crate::hash64::checksum64(data)
}

struct Stored {
    shards: Vec<Option<Vec<u8>>>,
    sums: Vec<u64>,
    len: usize,
}

/// An erasure-coded object store with per-shard checksums.
pub struct ScrubbedSet {
    coder: ErasureCoder,
    objects: BTreeMap<String, Stored>,
}

/// Result of a scrubbing pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Shards whose checksum failed (quarantined).
    pub corrupt: usize,
    /// Corrupt shards successfully rebuilt from survivors.
    pub healed: usize,
    /// Objects left unrecoverable (too much rot).
    pub lost_objects: usize,
}

impl ScrubbedSet {
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, ErasureError> {
        Ok(ScrubbedSet {
            coder: ErasureCoder::new(data_shards, parity_shards)?,
            objects: BTreeMap::new(),
        })
    }

    /// Store an object with checksummed shards.
    pub fn put(&mut self, key: &str, data: &[u8]) {
        let shards = self.coder.encode(data);
        let sums = shards.iter().map(|s| checksum(s)).collect();
        self.objects.insert(
            key.to_string(),
            Stored { shards: shards.into_iter().map(Some).collect(), sums, len: data.len() },
        );
    }

    /// Read with verification: corrupt shards are masked before decoding,
    /// so bitrot is transparent while ≤ parity shards rot.
    pub fn get(&self, key: &str) -> Result<Vec<u8>, ScrubError> {
        let obj = self.objects.get(key).ok_or_else(|| ScrubError::NoSuchObject(key.to_string()))?;
        // Borrowed-shard decode: corrupt shards are masked without cloning
        // the healthy ones.
        let visible: Vec<Option<&[u8]>> = obj
            .shards
            .iter()
            .zip(&obj.sums)
            .map(|(s, &sum)| match s {
                Some(bytes) if checksum(bytes) == sum => Some(bytes.as_slice()),
                _ => None,
            })
            .collect();
        let mut out = Vec::new();
        self.coder.decode_refs(&visible, obj.len, &mut out).map_err(ScrubError::Unrecoverable)?;
        Ok(out)
    }

    /// Flip bits in one shard of one object (test/failure injection — this
    /// is what a decaying disk does).
    pub fn corrupt_shard(&mut self, key: &str, drive: usize) -> Result<(), ScrubError> {
        let obj =
            self.objects.get_mut(key).ok_or_else(|| ScrubError::NoSuchObject(key.to_string()))?;
        if drive >= obj.shards.len() {
            return Err(ScrubError::DriveOutOfRange(drive));
        }
        if let Some(shard) = obj.shards[drive].as_mut() {
            if let Some(byte) = shard.first_mut() {
                *byte ^= 0xff;
            }
        }
        Ok(())
    }

    /// Scrub everything: verify checksums, rebuild rotted shards from
    /// survivors, recompute checksums for healed shards.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut corrupt = 0;
        let mut healed = 0;
        let mut lost = 0;
        for obj in self.objects.values_mut() {
            // Quarantine rotted shards.
            let mut rotted = Vec::new();
            for (i, (s, &sum)) in obj.shards.iter().zip(&obj.sums).enumerate() {
                if let Some(bytes) = s {
                    if checksum(bytes) != sum {
                        rotted.push(i);
                    }
                }
            }
            corrupt += rotted.len();
            for &i in &rotted {
                obj.shards[i] = None;
            }
            if rotted.is_empty() {
                continue;
            }
            match self.coder.reconstruct_shards(&mut obj.shards, obj.len) {
                Ok(()) => {
                    for &i in &rotted {
                        obj.sums[i] = checksum(obj.shards[i].as_ref().expect("reconstructed"));
                    }
                    healed += rotted.len();
                }
                Err(_) => lost += 1,
            }
        }
        ScrubReport { corrupt, healed, lost_objects: lost }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the set holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 37) % 251) as u8).collect()
    }

    #[test]
    fn clean_store_round_trips() {
        let mut set = ScrubbedSet::new(4, 2).unwrap();
        set.put("a", &body(10_000));
        assert_eq!(set.get("a").unwrap(), body(10_000));
        let report = set.scrub();
        assert_eq!(report, ScrubReport { corrupt: 0, healed: 0, lost_objects: 0 });
    }

    #[test]
    fn bitrot_is_transparent_to_reads() {
        let mut set = ScrubbedSet::new(4, 2).unwrap();
        set.put("a", &body(5_000));
        set.corrupt_shard("a", 0).unwrap();
        set.corrupt_shard("a", 3).unwrap();
        assert_eq!(set.get("a").unwrap(), body(5_000), "checksums mask the rot");
    }

    #[test]
    fn scrub_heals_and_restores_redundancy() {
        let mut set = ScrubbedSet::new(4, 2).unwrap();
        set.put("a", &body(2_000));
        set.corrupt_shard("a", 1).unwrap();
        set.corrupt_shard("a", 4).unwrap();
        let report = set.scrub();
        assert_eq!(report.corrupt, 2);
        assert_eq!(report.healed, 2);
        assert_eq!(report.lost_objects, 0);
        // Full redundancy again: two *more* corruptions survivable.
        set.corrupt_shard("a", 0).unwrap();
        set.corrupt_shard("a", 2).unwrap();
        assert_eq!(set.get("a").unwrap(), body(2_000));
    }

    #[test]
    fn excessive_rot_loses_the_object_but_scrub_reports_it() {
        let mut set = ScrubbedSet::new(2, 1).unwrap();
        set.put("doomed", &body(300));
        for drive in 0..2 {
            set.corrupt_shard("doomed", drive).unwrap();
        }
        assert!(matches!(set.get("doomed").unwrap_err(), ScrubError::Unrecoverable(_)));
        let report = set.scrub();
        assert_eq!(report.corrupt, 2);
        assert_eq!(report.lost_objects, 1);
    }

    #[test]
    fn scrub_is_idempotent_after_healing() {
        let mut set = ScrubbedSet::new(4, 2).unwrap();
        set.put("a", &body(999));
        set.corrupt_shard("a", 5).unwrap();
        assert_eq!(set.scrub().healed, 1);
        let second = set.scrub();
        assert_eq!(second, ScrubReport { corrupt: 0, healed: 0, lost_objects: 0 });
    }

    #[test]
    fn errors_for_unknown_targets() {
        let mut set = ScrubbedSet::new(2, 1).unwrap();
        assert!(matches!(set.get("x").unwrap_err(), ScrubError::NoSuchObject(_)));
        set.put("a", &body(10));
        assert!(matches!(set.corrupt_shard("a", 9).unwrap_err(), ScrubError::DriveOutOfRange(9)));
        assert!(!set.is_empty());
        assert_eq!(set.len(), 1);
    }
}
