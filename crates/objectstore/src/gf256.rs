//! Arithmetic over GF(2^8), the field underlying Reed–Solomon coding.
//!
//! Uses the AES/Rijndael-adjacent primitive polynomial `x^8 + x^4 + x^3 +
//! x^2 + 1` (0x11d), the same one used by most storage erasure coders
//! (including the ISA-L tables MinIO builds on). Scalar multiplication and
//! division are table-driven via discrete logs of the generator `α = 2`.
//!
//! The slice kernels — the inner loops of every RS encode/decode — use
//! per-coefficient *split-nibble* tables instead: for a fixed coefficient
//! `c`, `c·x = LO_c[x & 0xf] ^ HI_c[x >> 4]`, two 16-entry lookups with no
//! zero-test branch and no log-domain addition. A [`MulTable`] is 32 bytes
//! (two cache lines at worst), is built once per matrix coefficient, and is
//! cached per [`crate::erasure::ErasureCoder`] row so steady-state encodes
//! never rebuild tables. The `c == 0`/`c == 1` cases short-circuit to a
//! no-op and a word-wide XOR respectively.

/// Primitive polynomial 0x11d (without the leading x^8 bit: 0x1d).
const POLY: u16 = 0x11d;

/// Log/antilog tables, built once at first use.
struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

#[allow(clippy::needless_range_loop)]
fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate so exp[log a + log b] never needs a mod.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Addition in GF(2^8) is XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtraction equals addition in characteristic 2.
#[inline]
pub fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication via log tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse. Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b`. Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let diff = t.log[a as usize] as i32 - t.log[b as usize] as i32;
    let idx = if diff < 0 { diff + 255 } else { diff } as usize;
    t.exp[idx]
}

/// Exponentiation `a^n` by repeated squaring over the log domain.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let l = t.log[a as usize] as u64 * n as u64 % 255;
    t.exp[l as usize]
}

/// Split-nibble multiplication table for one fixed coefficient:
/// `c·x = lo[x & 0xf] ^ hi[x >> 4]` (GF multiplication distributes over
/// the XOR-decomposition `x = (x & 0xf) ^ (x & 0xf0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulTable {
    lo: [u8; 16],
    hi: [u8; 16],
    c: u8,
}

impl MulTable {
    /// Build the two 16-entry tables for coefficient `c`.
    pub fn new(c: u8) -> Self {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for i in 0..16u8 {
            lo[i as usize] = mul(c, i);
            hi[i as usize] = mul(c, i << 4);
        }
        MulTable { lo, hi, c }
    }

    /// The coefficient this table multiplies by.
    #[inline]
    pub fn coefficient(&self) -> u8 {
        self.c
    }

    /// `c · x` via two table lookups, branch-free.
    #[inline]
    pub fn mul(&self, x: u8) -> u8 {
        self.lo[(x & 0x0f) as usize] ^ self.hi[(x >> 4) as usize]
    }
}

/// `dst[i] ^= src[i]`, eight bytes per step.
#[inline]
pub fn xor_acc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_acc length mismatch");
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let x = u64::from_ne_bytes(dw.try_into().expect("chunks_exact(8)"))
            ^ u64::from_ne_bytes(sw.try_into().expect("chunks_exact(8)"));
        dw.copy_from_slice(&x.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

/// Which slice-kernel implementation this CPU gets. Detected once; the
/// split-nibble tables are exactly the shape `pshufb`-style byte shuffles
/// consume, so x86 cores run 16/32 multiplies per instruction pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Ssse3,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn kernel() -> Kernel {
    use std::sync::OnceLock;
    static KERNEL: OnceLock<Kernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                return Kernel::Ssse3;
            }
        }
        Kernel::Scalar
    })
}

/// `dst[i] ^= c · src[i]` with a prebuilt table — the hot loop of every
/// parity/reconstruction pass. Dispatches to a `pshufb` nibble-shuffle
/// kernel on x86-64 (16/32 lanes per shuffle pair); the portable path is
/// unrolled 8-wide with two L1-hot lookups per byte and no zero test.
pub fn mul_acc_table(dst: &mut [u8], src: &[u8], table: &MulTable) {
    assert_eq!(dst.len(), src.len(), "mul_acc length mismatch");
    match table.c {
        0 => return,
        1 => return xor_acc(dst, src),
        _ => {}
    }
    match kernel() {
        // SAFETY: the corresponding CPU feature was detected at runtime.
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::mul_acc_avx2(dst, src, table) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => unsafe { x86::mul_acc_ssse3(dst, src, table) },
        Kernel::Scalar => mul_acc_table_portable(dst, src, table),
    }
}

fn mul_acc_table_portable(dst: &mut [u8], src: &[u8], table: &MulTable) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        dw[0] ^= table.mul(sw[0]);
        dw[1] ^= table.mul(sw[1]);
        dw[2] ^= table.mul(sw[2]);
        dw[3] ^= table.mul(sw[3]);
        dw[4] ^= table.mul(sw[4]);
        dw[5] ^= table.mul(sw[5]);
        dw[6] ^= table.mul(sw[6]);
        dw[7] ^= table.mul(sw[7]);
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= table.mul(*sb);
    }
}

/// `dst[i] = c · src[i]` with a prebuilt table (overwrite form).
pub fn mul_slice_table(dst: &mut [u8], src: &[u8], table: &MulTable) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    match table.c {
        0 => return dst.fill(0),
        1 => return dst.copy_from_slice(src),
        _ => {}
    }
    match kernel() {
        // SAFETY: the corresponding CPU feature was detected at runtime.
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { x86::mul_slice_avx2(dst, src, table) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Ssse3 => unsafe { x86::mul_slice_ssse3(dst, src, table) },
        Kernel::Scalar => mul_slice_table_portable(dst, src, table),
    }
}

fn mul_slice_table_portable(dst: &mut [u8], src: &[u8], table: &MulTable) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dw, sw) in (&mut d).zip(&mut s) {
        dw[0] = table.mul(sw[0]);
        dw[1] = table.mul(sw[1]);
        dw[2] = table.mul(sw[2]);
        dw[3] = table.mul(sw[3]);
        dw[4] = table.mul(sw[4]);
        dw[5] = table.mul(sw[5]);
        dw[6] = table.mul(sw[6]);
        dw[7] = table.mul(sw[7]);
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db = table.mul(*sb);
    }
}

/// x86-64 `pshufb` kernels: the 16-entry split-nibble tables ARE shuffle
/// control tables, so one shuffle computes 16 (SSSE3) or 32 (AVX2)
/// products at once: `c·x = shuffle(LO, x & 0xf) ^ shuffle(HI, x >> 4)`.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::MulTable;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX2 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr() as *const __m128i));
        let hi_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let whole = dst.len() & !31;
        let mut i = 0;
        while i < whole {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let lo_n = _mm256_and_si256(s, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tbl, lo_n),
                _mm256_shuffle_epi8(hi_tbl, hi_n),
            );
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, _mm256_xor_si256(d, prod));
            i += 32;
        }
        super::mul_acc_table_portable(&mut dst[whole..], &src[whole..], t);
    }

    /// # Safety
    /// Caller must ensure AVX2 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_slice_avx2(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr() as *const __m128i));
        let hi_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let whole = dst.len() & !31;
        let mut i = 0;
        while i < whole {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo_n = _mm256_and_si256(s, mask);
            let hi_n = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tbl, lo_n),
                _mm256_shuffle_epi8(hi_tbl, hi_n),
            );
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, prod);
            i += 32;
        }
        super::mul_slice_table_portable(&mut dst[whole..], &src[whole..], t);
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let lo_tbl = _mm_loadu_si128(t.lo.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(t.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let whole = dst.len() & !15;
        let mut i = 0;
        while i < whole {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let lo_n = _mm_and_si128(s, mask);
            let hi_n = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
            let prod =
                _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo_n), _mm_shuffle_epi8(hi_tbl, hi_n));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, prod));
            i += 16;
        }
        super::mul_acc_table_portable(&mut dst[whole..], &src[whole..], t);
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_slice_ssse3(dst: &mut [u8], src: &[u8], t: &MulTable) {
        let lo_tbl = _mm_loadu_si128(t.lo.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(t.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let whole = dst.len() & !15;
        let mut i = 0;
        while i < whole {
            let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let lo_n = _mm_and_si128(s, mask);
            let hi_n = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
            let prod =
                _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo_n), _mm_shuffle_epi8(hi_tbl, hi_n));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, prod);
            i += 16;
        }
        super::mul_slice_table_portable(&mut dst[whole..], &src[whole..], t);
    }
}

/// `dst[i] ^= c * src[i]` — one-shot form (builds the table internally).
/// Callers multiplying by the same coefficient repeatedly should build a
/// [`MulTable`] once and use [`mul_acc_table`].
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => assert_eq!(dst.len(), src.len(), "mul_acc length mismatch"),
        1 => xor_acc(dst, src),
        _ => mul_acc_table(dst, src, &MulTable::new(c)),
    }
}

/// `dst[i] = c * src[i]` — one-shot form.
pub fn mul_slice(dst: &mut [u8], src: &[u8], c: u8) {
    match c {
        0 => {
            assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
            dst.fill(0);
        }
        1 => dst.copy_from_slice(src),
        _ => mul_slice_table(dst, src, &MulTable::new(c)),
    }
}

/// Byte-at-a-time reference kernels, retained as differential-test oracles
/// for the split-table fast paths above.
#[cfg(test)]
pub mod scalar {
    use super::{mul, tables};

    /// The original log-domain `dst[i] ^= c * src[i]` loop.
    pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "mul_acc length mismatch");
        if c == 0 {
            return;
        }
        if c == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
            return;
        }
        let t = tables();
        let lc = t.log[c as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= t.exp[lc + t.log[*s as usize] as usize];
            }
        }
    }

    /// Scalar `dst[i] = c * src[i]`.
    pub fn mul_slice(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = mul(c, *s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        assert_eq!(add(0x53, 0xca), 0x99);
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(sub(a, a), 0);
        }
    }

    #[test]
    fn known_multiplications() {
        // Classic GF(2^8)/0x11d vectors.
        assert_eq!(mul(0, 7), 0);
        assert_eq!(mul(1, 7), 7);
        assert_eq!(mul(2, 2), 4);
        assert_eq!(mul(0x80, 2), 0x1d); // overflow reduces by POLY
        assert_eq!(mul(0xff, 0xff), 0xe2);
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        for a in [0u8, 1, 2, 3, 5, 87, 254, 255] {
            for b in [0u8, 1, 2, 9, 100, 255] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [1u8, 7, 200] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        for a in [1u8, 2, 77, 255] {
            for b in [0u8, 3, 128] {
                for c in [1u8, 5, 250] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let i = inv(a);
            assert_eq!(mul(a, i), 1, "a={a} inv={i}");
            assert_eq!(div(1, a), i);
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in [1u8, 2, 3, 100, 255] {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 29, 255] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1); // convention
    }

    #[test]
    fn generator_has_full_order() {
        // α = 2 generates the multiplicative group: α^255 = 1 and no
        // smaller positive power is 1.
        assert_eq!(pow(2, 255), 1);
        for n in 1..255 {
            assert_ne!(pow(2, n), 1, "order divides {n}");
        }
    }

    #[test]
    fn split_table_covers_full_multiplication_table() {
        // Exhaustive: every (c, x) pair must agree with the log-table mul.
        for c in 0..=255u8 {
            let table = MulTable::new(c);
            assert_eq!(table.coefficient(), c);
            for x in 0..=255u8 {
                assert_eq!(table.mul(x), mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [10u8, 20, 30, 40];
        let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ mul(7, *s)).collect();
        mul_acc(&mut dst, &src, 7);
        assert_eq!(dst.to_vec(), expect);
        // c = 0 is a no-op, c = 1 is xor.
        let before = dst;
        mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, before);
        mul_acc(&mut dst, &src, 1);
        let expect2: Vec<u8> = before.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        assert_eq!(dst.to_vec(), expect2);
    }

    /// Deterministic pseudo-random bytes without pulling an RNG in.
    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn mul_acc_matches_scalar_oracle_over_random_slices() {
        // Differential test: awkward lengths straddle the 8-wide unroll.
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000, 4096, 4099] {
            for c in [0u8, 1, 2, 3, 0x1d, 87, 254, 255] {
                let src = noise(len, len as u64 ^ (c as u64) << 32);
                let mut fast = noise(len, 0xabcd ^ len as u64);
                let mut slow = fast.clone();
                mul_acc(&mut fast, &src, c);
                scalar::mul_acc(&mut slow, &src, c);
                assert_eq!(fast, slow, "len={len} c={c}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar_oracle_over_random_slices() {
        for len in [0usize, 1, 7, 8, 9, 255, 1024, 1031] {
            for c in [0u8, 1, 5, 0x8e, 255] {
                let src = noise(len, 31 * len as u64 + c as u64);
                let mut fast = vec![0xa5; len];
                let mut slow = vec![0x5a; len];
                mul_slice(&mut fast, &src, c);
                scalar::mul_slice(&mut slow, &src, c);
                assert_eq!(fast, slow, "len={len} c={c}");
            }
        }
    }

    #[test]
    fn dispatched_kernel_matches_portable_kernel() {
        // Whatever SIMD path the CPU dispatches to must agree byte-for-byte
        // with the portable kernel, including misaligned tails.
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 47, 1000, 4096, 4111] {
            for c in [2u8, 3, 0x1d, 0x8e, 255] {
                let table = MulTable::new(c);
                let src = noise(len, 0x5eed ^ len as u64 ^ c as u64);
                let mut fast = noise(len, 0xfeed ^ len as u64);
                let mut portable = fast.clone();
                mul_acc_table(&mut fast, &src, &table);
                mul_acc_table_portable(&mut portable, &src, &table);
                assert_eq!(fast, portable, "mul_acc len={len} c={c}");
                let mut fast2 = vec![0u8; len];
                let mut portable2 = vec![1u8; len];
                mul_slice_table(&mut fast2, &src, &table);
                mul_slice_table_portable(&mut portable2, &src, &table);
                assert_eq!(fast2, portable2, "mul_slice len={len} c={c}");
            }
        }
    }

    #[test]
    fn xor_acc_is_word_exact() {
        for len in [0usize, 1, 8, 15, 16, 17, 100] {
            let src = noise(len, 7);
            let mut dst = noise(len, 9);
            let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            xor_acc(&mut dst, &src);
            assert_eq!(dst, expect, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_acc_length_mismatch_panics() {
        let mut dst = [0u8; 4];
        mul_acc(&mut dst, &[0u8; 5], 3);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        div(3, 0);
    }
}
