//! Arithmetic over GF(2^8), the field underlying Reed–Solomon coding.
//!
//! Uses the AES/Rijndael-adjacent primitive polynomial `x^8 + x^4 + x^3 +
//! x^2 + 1` (0x11d), the same one used by most storage erasure coders
//! (including the ISA-L tables MinIO builds on). Multiplication and
//! division are table-driven via discrete logs of the generator `α = 2`.

/// Primitive polynomial 0x11d (without the leading x^8 bit: 0x1d).
const POLY: u16 = 0x11d;

/// Log/antilog tables, built once at first use.
struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

#[allow(clippy::needless_range_loop)]
fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate so exp[log a + log b] never needs a mod.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Addition in GF(2^8) is XOR.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtraction equals addition in characteristic 2.
#[inline]
pub fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication via log tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse. Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b`. Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    let diff = t.log[a as usize] as i32 - t.log[b as usize] as i32;
    let idx = if diff < 0 { diff + 255 } else { diff } as usize;
    t.exp[idx]
}

/// Exponentiation `a^n` by repeated squaring over the log domain.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    let l = t.log[a as usize] as u64 * n as u64 % 255;
    t.exp[l as usize]
}

/// `dst[i] ^= c * src[i]` — the inner loop of every RS encode/decode.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "mul_acc length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[lc + t.log[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        assert_eq!(add(0x53, 0xca), 0x99);
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(sub(a, a), 0);
        }
    }

    #[test]
    fn known_multiplications() {
        // Classic GF(2^8)/0x11d vectors.
        assert_eq!(mul(0, 7), 0);
        assert_eq!(mul(1, 7), 7);
        assert_eq!(mul(2, 2), 4);
        assert_eq!(mul(0x80, 2), 0x1d); // overflow reduces by POLY
        assert_eq!(mul(0xff, 0xff), 0xe2);
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        for a in [0u8, 1, 2, 3, 5, 87, 254, 255] {
            for b in [0u8, 1, 2, 9, 100, 255] {
                assert_eq!(mul(a, b), mul(b, a));
                for c in [1u8, 7, 200] {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        for a in [1u8, 2, 77, 255] {
            for b in [0u8, 3, 128] {
                for c in [1u8, 5, 250] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let i = inv(a);
            assert_eq!(mul(a, i), 1, "a={a} inv={i}");
            assert_eq!(div(1, a), i);
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in [1u8, 2, 3, 100, 255] {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [0u8, 1, 2, 3, 29, 255] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1); // convention
    }

    #[test]
    fn generator_has_full_order() {
        // α = 2 generates the multiplicative group: α^255 = 1 and no
        // smaller positive power is 1.
        assert_eq!(pow(2, 255), 1);
        for n in 1..255 {
            assert_ne!(pow(2, n), 1, "order divides {n}");
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [10u8, 20, 30, 40];
        let expect: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ mul(7, *s)).collect();
        mul_acc(&mut dst, &src, 7);
        assert_eq!(dst.to_vec(), expect);
        // c = 0 is a no-op, c = 1 is xor.
        let before = dst;
        mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, before);
        mul_acc(&mut dst, &src, 1);
        let expect2: Vec<u8> = before.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        assert_eq!(dst.to_vec(), expect2);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        inv(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        div(3, 0);
    }
}
