//! Buckets and objects: the S3 surface used by the regional registry.
//!
//! The store enforces a capacity quota — the paper notes the regional
//! MinIO registry is "provisioned on a local server with a specific
//! storage capacity according to the user's requirements (e.g., 100 GB)".

use bytes::Bytes;
use deep_netsim::DataSize;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors from bucket/object operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Bucket already exists.
    BucketExists(String),
    /// Bucket not found.
    NoSuchBucket(String),
    /// Object key not found.
    NoSuchKey(String),
    /// The put would exceed the store's provisioned capacity.
    QuotaExceeded { requested: u64, available: u64 },
    /// Bucket still contains objects.
    BucketNotEmpty(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BucketExists(b) => write!(f, "bucket {b:?} already exists"),
            StoreError::NoSuchBucket(b) => write!(f, "no such bucket {b:?}"),
            StoreError::NoSuchKey(k) => write!(f, "no such key {k:?}"),
            StoreError::QuotaExceeded { requested, available } => {
                write!(f, "quota exceeded: requested {requested} B, available {available} B")
            }
            StoreError::BucketNotEmpty(b) => write!(f, "bucket {b:?} is not empty"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Metadata returned by stat/list operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    pub key: String,
    pub size: DataSize,
    /// Content ETag (FNV-1a content hash here; the registry layer uses real
    /// SHA-256 digests for content addressing).
    pub etag: u64,
}

#[derive(Debug, Clone, Default)]
struct ObjectRecord {
    data: Bytes,
    etag: u64,
}

/// One S3 bucket: an ordered key → object map.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    objects: BTreeMap<String, ObjectRecord>,
}

impl Bucket {
    fn used(&self) -> u64 {
        self.objects.values().map(|o| o.data.len() as u64).sum()
    }
}

/// Wide-lane checksum over the object body — cheap deterministic ETag
/// (see [`crate::hash64`] for the kernel).
fn etag_of(data: &[u8]) -> u64 {
    crate::hash64::checksum64(data)
}

/// The MinIO-like store: named buckets under a global capacity quota.
/// Cloning shares the underlying storage (like handles to one server).
#[derive(Debug, Clone)]
pub struct ObjectStore {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug)]
struct Inner {
    buckets: BTreeMap<String, Bucket>,
    capacity: DataSize,
}

impl ObjectStore {
    /// A store provisioned with `capacity` bytes (e.g. the paper's 100 GB).
    pub fn with_capacity(capacity: DataSize) -> Self {
        ObjectStore { inner: Arc::new(RwLock::new(Inner { buckets: BTreeMap::new(), capacity })) }
    }

    /// The paper's example provisioning: 100 GB.
    pub fn paper_default() -> Self {
        Self::with_capacity(DataSize::gigabytes(100.0))
    }

    /// An independent deep copy of the store's current state. Unlike
    /// [`Clone`] — which hands out another handle to the *same* server
    /// — the fork owns its own buckets: mutations on either side are
    /// invisible to the other. Object bodies are refcounted
    /// [`Bytes`], so the copy is proportional to the number of objects,
    /// not their payload bytes. This is what lets a soak harness stamp
    /// out per-replication registries from one built prototype.
    pub fn fork(&self) -> ObjectStore {
        let inner = self.inner.read();
        ObjectStore {
            inner: Arc::new(RwLock::new(Inner {
                buckets: inner.buckets.clone(),
                capacity: inner.capacity,
            })),
        }
    }

    /// Provisioned capacity.
    pub fn capacity(&self) -> DataSize {
        self.inner.read().capacity
    }

    /// Bytes currently stored across all buckets.
    pub fn used(&self) -> DataSize {
        let inner = self.inner.read();
        DataSize::bytes(inner.buckets.values().map(Bucket::used).sum())
    }

    /// Remaining quota.
    pub fn available(&self) -> DataSize {
        self.capacity().saturating_sub(self.used())
    }

    /// Create a bucket.
    pub fn create_bucket(&self, name: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.buckets.contains_key(name) {
            return Err(StoreError::BucketExists(name.to_string()));
        }
        inner.buckets.insert(name.to_string(), Bucket::default());
        Ok(())
    }

    /// Delete an empty bucket.
    pub fn delete_bucket(&self, name: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        match inner.buckets.get(name) {
            None => Err(StoreError::NoSuchBucket(name.to_string())),
            Some(b) if !b.objects.is_empty() => Err(StoreError::BucketNotEmpty(name.to_string())),
            Some(_) => {
                inner.buckets.remove(name);
                Ok(())
            }
        }
    }

    /// List bucket names.
    pub fn list_buckets(&self) -> Vec<String> {
        self.inner.read().buckets.keys().cloned().collect()
    }

    /// Put an object, replacing any existing value under the key. The
    /// quota check accounts for the bytes freed by the replacement.
    pub fn put_object(
        &self,
        bucket: &str,
        key: &str,
        data: Bytes,
    ) -> Result<ObjectMeta, StoreError> {
        let mut inner = self.inner.write();
        let used: u64 = inner.buckets.values().map(Bucket::used).sum();
        let capacity = inner.capacity.as_bytes();
        let b = inner
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        let replaced = b.objects.get(key).map(|o| o.data.len() as u64).unwrap_or(0);
        let new_used = used - replaced + data.len() as u64;
        if new_used > capacity {
            return Err(StoreError::QuotaExceeded {
                requested: data.len() as u64,
                available: capacity.saturating_sub(used - replaced),
            });
        }
        let etag = etag_of(&data);
        let size = DataSize::bytes(data.len() as u64);
        b.objects.insert(key.to_string(), ObjectRecord { data, etag });
        Ok(ObjectMeta { key: key.to_string(), size, etag })
    }

    /// Get an object's bytes.
    pub fn get_object(&self, bucket: &str, key: &str) -> Result<Bytes, StoreError> {
        let inner = self.inner.read();
        let b = inner
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        b.objects
            .get(key)
            .map(|o| o.data.clone())
            .ok_or_else(|| StoreError::NoSuchKey(key.to_string()))
    }

    /// Stat an object.
    pub fn head_object(&self, bucket: &str, key: &str) -> Result<ObjectMeta, StoreError> {
        let inner = self.inner.read();
        let b = inner
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        b.objects
            .get(key)
            .map(|o| ObjectMeta {
                key: key.to_string(),
                size: DataSize::bytes(o.data.len() as u64),
                etag: o.etag,
            })
            .ok_or_else(|| StoreError::NoSuchKey(key.to_string()))
    }

    /// Delete an object.
    pub fn delete_object(&self, bucket: &str, key: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        let b = inner
            .buckets
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        b.objects.remove(key).map(|_| ()).ok_or_else(|| StoreError::NoSuchKey(key.to_string()))
    }

    /// List objects in a bucket with an optional key prefix, in key order.
    pub fn list_objects(&self, bucket: &str, prefix: &str) -> Result<Vec<ObjectMeta>, StoreError> {
        let inner = self.inner.read();
        let b = inner
            .buckets
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        Ok(b.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, o)| ObjectMeta {
                key: k.clone(),
                size: DataSize::bytes(o.data.len() as u64),
                etag: o.etag,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ObjectStore {
        let s = ObjectStore::with_capacity(DataSize::megabytes(1.0));
        s.create_bucket("images").unwrap();
        s
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store();
        let meta = s.put_object("images", "layer/abc", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(meta.size, DataSize::bytes(5));
        assert_eq!(s.get_object("images", "layer/abc").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.head_object("images", "layer/abc").unwrap().etag, meta.etag);
    }

    #[test]
    fn etag_tracks_content() {
        let s = store();
        let a = s.put_object("images", "k", Bytes::from_static(b"v1")).unwrap();
        let b = s.put_object("images", "k", Bytes::from_static(b"v2")).unwrap();
        assert_ne!(a.etag, b.etag);
        let c = s.put_object("images", "k2", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(b.etag, c.etag, "same content, same etag");
    }

    #[test]
    fn quota_enforced_and_replacement_credited() {
        let s = ObjectStore::with_capacity(DataSize::bytes(10));
        s.create_bucket("b").unwrap();
        s.put_object("b", "x", Bytes::from_static(b"12345678")).unwrap();
        // 8 used; a 3-byte new object exceeds capacity 10.
        let err = s.put_object("b", "y", Bytes::from_static(b"abc")).unwrap_err();
        assert!(matches!(err, StoreError::QuotaExceeded { .. }));
        // Replacing x with 10 bytes is fine: 8 freed, 10 used.
        s.put_object("b", "x", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(s.used(), DataSize::bytes(10));
        assert_eq!(s.available(), DataSize::ZERO);
    }

    #[test]
    fn missing_bucket_and_key_errors() {
        let s = store();
        assert_eq!(s.get_object("nope", "k").unwrap_err(), StoreError::NoSuchBucket("nope".into()));
        assert_eq!(s.get_object("images", "k").unwrap_err(), StoreError::NoSuchKey("k".into()));
        assert_eq!(s.delete_object("images", "k").unwrap_err(), StoreError::NoSuchKey("k".into()));
    }

    #[test]
    fn bucket_lifecycle() {
        let s = store();
        assert_eq!(
            s.create_bucket("images").unwrap_err(),
            StoreError::BucketExists("images".into())
        );
        s.put_object("images", "k", Bytes::from_static(b"data")).unwrap();
        assert_eq!(
            s.delete_bucket("images").unwrap_err(),
            StoreError::BucketNotEmpty("images".into())
        );
        s.delete_object("images", "k").unwrap();
        s.delete_bucket("images").unwrap();
        assert!(s.list_buckets().is_empty());
    }

    #[test]
    fn prefix_listing_is_ordered() {
        let s = store();
        for key in ["blobs/sha256/cc", "blobs/sha256/aa", "manifests/v1", "blobs/sha256/bb"] {
            s.put_object("images", key, Bytes::from_static(b"x")).unwrap();
        }
        let listed = s.list_objects("images", "blobs/").unwrap();
        let keys: Vec<&str> = listed.iter().map(|m| m.key.as_str()).collect();
        assert_eq!(keys, vec!["blobs/sha256/aa", "blobs/sha256/bb", "blobs/sha256/cc"]);
        assert_eq!(s.list_objects("images", "zzz").unwrap().len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let s = store();
        let s2 = s.clone();
        s.put_object("images", "shared", Bytes::from_static(b"1")).unwrap();
        assert!(s2.get_object("images", "shared").is_ok());
    }

    #[test]
    fn usage_accounting() {
        let s = store();
        assert_eq!(s.used(), DataSize::ZERO);
        s.put_object("images", "a", Bytes::from(vec![0u8; 1000])).unwrap();
        s.put_object("images", "b", Bytes::from(vec![0u8; 500])).unwrap();
        assert_eq!(s.used(), DataSize::bytes(1500));
        s.delete_object("images", "a").unwrap();
        assert_eq!(s.used(), DataSize::bytes(500));
    }
}
