//! An erasure set of simulated drives with failure and healing.
//!
//! MinIO groups drives into erasure sets: every object's shards are spread
//! one-per-drive; a failed drive loses its shard of every object; `mc admin
//! heal` rebuilds lost shards from survivors. [`DriveSet`] reproduces that
//! lifecycle so the regional registry can be subjected to the durability
//! experiments of DESIGN.md (ablation 4).

use crate::erasure::{ErasureCoder, ErasureError};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from drive-set operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveSetError {
    /// Drive index out of range.
    UnknownDrive(usize),
    /// Object key not present.
    NoSuchObject(String),
    /// Too many failed drives to reconstruct.
    Unrecoverable(ErasureError),
}

impl fmt::Display for DriveSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveSetError::UnknownDrive(i) => write!(f, "unknown drive {i}"),
            DriveSetError::NoSuchObject(k) => write!(f, "no such object {k:?}"),
            DriveSetError::Unrecoverable(e) => write!(f, "unrecoverable: {e}"),
        }
    }
}

impl std::error::Error for DriveSetError {}

#[derive(Debug)]
struct StoredObject {
    /// One shard slot per drive; `None` = lost with a failed drive.
    shards: Vec<Option<Vec<u8>>>,
    len: usize,
}

/// A set of `k + m` drives behind one erasure coder.
pub struct DriveSet {
    coder: ErasureCoder,
    objects: BTreeMap<String, StoredObject>,
    /// `true` = drive online.
    online: Vec<bool>,
}

impl DriveSet {
    /// A drive set with the given code geometry.
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, ErasureError> {
        let coder = ErasureCoder::new(data_shards, parity_shards)?;
        let n = coder.total_shards();
        Ok(DriveSet { coder, objects: BTreeMap::new(), online: vec![true; n] })
    }

    /// Number of drives.
    pub fn drive_count(&self) -> usize {
        self.online.len()
    }

    /// Online drives.
    pub fn online_count(&self) -> usize {
        self.online.iter().filter(|&&b| b).count()
    }

    /// Write an object: encode and spread shards across drives. Shards
    /// destined for offline drives are dropped (as a degraded MinIO write
    /// would).
    pub fn put(&mut self, key: &str, data: &[u8]) {
        let shards = self.coder.encode(data);
        let shards = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| if self.online[i] { Some(s) } else { None })
            .collect();
        self.objects.insert(key.to_string(), StoredObject { shards, len: data.len() });
    }

    /// Read an object, reconstructing from survivors when needed.
    pub fn get(&self, key: &str) -> Result<Vec<u8>, DriveSetError> {
        let obj =
            self.objects.get(key).ok_or_else(|| DriveSetError::NoSuchObject(key.to_string()))?;
        // A drive going offline masks its shards even if data is present;
        // borrowed-shard decode avoids cloning the surviving shards.
        let visible: Vec<Option<&[u8]>> = obj
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| if self.online[i] { s.as_deref() } else { None })
            .collect();
        let mut out = Vec::new();
        self.coder
            .decode_refs(&visible, obj.len, &mut out)
            .map_err(DriveSetError::Unrecoverable)?;
        Ok(out)
    }

    /// Fail a drive: its shard of every object is lost.
    pub fn fail_drive(&mut self, drive: usize) -> Result<(), DriveSetError> {
        if drive >= self.online.len() {
            return Err(DriveSetError::UnknownDrive(drive));
        }
        self.online[drive] = false;
        for obj in self.objects.values_mut() {
            obj.shards[drive] = None;
        }
        Ok(())
    }

    /// Bring a (replaced) drive back online, empty.
    pub fn replace_drive(&mut self, drive: usize) -> Result<(), DriveSetError> {
        if drive >= self.online.len() {
            return Err(DriveSetError::UnknownDrive(drive));
        }
        self.online[drive] = true;
        Ok(())
    }

    /// Heal: rebuild every missing shard on online drives. Returns the
    /// number of shards rebuilt.
    pub fn heal(&mut self) -> Result<usize, DriveSetError> {
        let mut rebuilt = 0;
        for obj in self.objects.values_mut() {
            let missing_online: Vec<usize> = obj
                .shards
                .iter()
                .enumerate()
                .filter(|(i, s)| self.online[*i] && s.is_none())
                .map(|(i, _)| i)
                .collect();
            if missing_online.is_empty() {
                continue;
            }
            self.coder
                .reconstruct_shards(&mut obj.shards, obj.len)
                .map_err(DriveSetError::Unrecoverable)?;
            // Shards rebuilt onto offline drives don't count (and must stay
            // masked).
            for (i, s) in obj.shards.iter_mut().enumerate() {
                if !self.online[i] {
                    *s = None;
                }
            }
            rebuilt += missing_online.len();
        }
        Ok(rebuilt)
    }

    /// Number of objects stored.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn healthy_roundtrip() {
        let mut set = DriveSet::new(4, 2).unwrap();
        set.put("layer", &body(10_000));
        assert_eq!(set.get("layer").unwrap(), body(10_000));
        assert_eq!(set.drive_count(), 6);
        assert_eq!(set.online_count(), 6);
    }

    #[test]
    fn survives_parity_many_failures() {
        let mut set = DriveSet::new(4, 2).unwrap();
        set.put("a", &body(5000));
        set.fail_drive(0).unwrap();
        set.fail_drive(5).unwrap();
        assert_eq!(set.get("a").unwrap(), body(5000));
    }

    #[test]
    fn third_failure_is_fatal_until_heal() {
        let mut set = DriveSet::new(4, 2).unwrap();
        set.put("a", &body(100));
        set.fail_drive(0).unwrap();
        set.fail_drive(1).unwrap();
        // Heal while still recoverable onto remaining online drives... but
        // drives 0/1 are offline, so shards stay lost; a third failure kills
        // the object.
        set.fail_drive(2).unwrap();
        assert!(matches!(set.get("a").unwrap_err(), DriveSetError::Unrecoverable(_)));
    }

    #[test]
    fn heal_after_replacement_restores_redundancy() {
        let mut set = DriveSet::new(4, 2).unwrap();
        set.put("a", &body(3000));
        set.put("b", &body(1234));
        set.fail_drive(1).unwrap();
        set.fail_drive(4).unwrap();
        set.replace_drive(1).unwrap();
        set.replace_drive(4).unwrap();
        let rebuilt = set.heal().unwrap();
        assert_eq!(rebuilt, 4, "two shards per object");
        // Now two *different* drives may fail and data survives.
        set.fail_drive(0).unwrap();
        set.fail_drive(2).unwrap();
        assert_eq!(set.get("a").unwrap(), body(3000));
        assert_eq!(set.get("b").unwrap(), body(1234));
    }

    #[test]
    fn degraded_write_then_heal() {
        let mut set = DriveSet::new(4, 2).unwrap();
        set.fail_drive(3).unwrap();
        set.put("deg", &body(800)); // written without drive 3's shard
        assert_eq!(set.get("deg").unwrap(), body(800));
        set.replace_drive(3).unwrap();
        assert_eq!(set.heal().unwrap(), 1);
        // Full redundancy again: any two failures OK.
        set.fail_drive(0).unwrap();
        set.fail_drive(1).unwrap();
        assert_eq!(set.get("deg").unwrap(), body(800));
    }

    #[test]
    fn heal_without_failures_is_noop() {
        let mut set = DriveSet::new(4, 2).unwrap();
        set.put("x", &body(10));
        assert_eq!(set.heal().unwrap(), 0);
    }

    #[test]
    fn unknown_drive_and_object_errors() {
        let mut set = DriveSet::new(2, 1).unwrap();
        assert_eq!(set.fail_drive(9).unwrap_err(), DriveSetError::UnknownDrive(9));
        assert_eq!(set.replace_drive(9).unwrap_err(), DriveSetError::UnknownDrive(9));
        assert_eq!(set.get("ghost").unwrap_err(), DriveSetError::NoSuchObject("ghost".into()));
        assert_eq!(set.object_count(), 0);
    }
}
