//! S3-style object versioning.
//!
//! A versioned bucket never destroys data on overwrite: each put appends a
//! new version; deletes insert a delete marker; any historic version stays
//! addressable by id. Registries use this to keep old image revisions
//! retrievable after a tag moves.

use bytes::Bytes;
use std::collections::BTreeMap;

/// One stored version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Version {
    /// A concrete object body.
    Data(Bytes),
    /// A delete marker: the key reads as absent at this version.
    DeleteMarker,
}

/// A bucket with full version history per key.
#[derive(Debug, Default)]
pub struct VersionedBucket {
    /// key → append-only version list (index = version id).
    history: BTreeMap<String, Vec<Version>>,
}

impl VersionedBucket {
    pub fn new() -> Self {
        Self::default()
    }

    /// Put a new version; returns its version id.
    pub fn put(&mut self, key: &str, data: Bytes) -> u64 {
        let versions = self.history.entry(key.to_string()).or_default();
        versions.push(Version::Data(data));
        (versions.len() - 1) as u64
    }

    /// Insert a delete marker; returns its version id, or `None` if the key
    /// never existed.
    pub fn delete(&mut self, key: &str) -> Option<u64> {
        let versions = self.history.get_mut(key)?;
        versions.push(Version::DeleteMarker);
        Some((versions.len() - 1) as u64)
    }

    /// Latest readable value: `None` when absent or delete-marked.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        match self.history.get(key)?.last()? {
            Version::Data(d) => Some(d.clone()),
            Version::DeleteMarker => None,
        }
    }

    /// Read a specific historic version id.
    pub fn get_version(&self, key: &str, version: u64) -> Option<Bytes> {
        match self.history.get(key)?.get(version as usize)? {
            Version::Data(d) => Some(d.clone()),
            Version::DeleteMarker => None,
        }
    }

    /// Number of stored versions (including delete markers) for a key.
    pub fn version_count(&self, key: &str) -> usize {
        self.history.get(key).map(Vec::len).unwrap_or(0)
    }

    /// Keys that currently read as present.
    pub fn live_keys(&self) -> Vec<&str> {
        self.history
            .iter()
            .filter(|(_, v)| matches!(v.last(), Some(Version::Data(_))))
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwrite_preserves_history() {
        let mut b = VersionedBucket::new();
        let v0 = b.put("manifest", Bytes::from_static(b"rev1"));
        let v1 = b.put("manifest", Bytes::from_static(b"rev2"));
        assert_eq!((v0, v1), (0, 1));
        assert_eq!(b.get("manifest").unwrap(), Bytes::from_static(b"rev2"));
        assert_eq!(b.get_version("manifest", 0).unwrap(), Bytes::from_static(b"rev1"));
        assert_eq!(b.version_count("manifest"), 2);
    }

    #[test]
    fn delete_marker_hides_but_keeps_data() {
        let mut b = VersionedBucket::new();
        b.put("k", Bytes::from_static(b"v"));
        let marker = b.delete("k").unwrap();
        assert_eq!(marker, 1);
        assert!(b.get("k").is_none());
        assert_eq!(b.get_version("k", 0).unwrap(), Bytes::from_static(b"v"));
        // Putting again resurrects the key.
        b.put("k", Bytes::from_static(b"v2"));
        assert_eq!(b.get("k").unwrap(), Bytes::from_static(b"v2"));
        assert_eq!(b.version_count("k"), 3);
    }

    #[test]
    fn delete_of_missing_key_is_none() {
        let mut b = VersionedBucket::new();
        assert!(b.delete("ghost").is_none());
    }

    #[test]
    fn live_keys_excludes_deleted() {
        let mut b = VersionedBucket::new();
        b.put("a", Bytes::from_static(b"1"));
        b.put("b", Bytes::from_static(b"2"));
        b.delete("a");
        assert_eq!(b.live_keys(), vec!["b"]);
    }

    #[test]
    fn unknown_version_is_none() {
        let mut b = VersionedBucket::new();
        b.put("k", Bytes::from_static(b"v"));
        assert!(b.get_version("k", 5).is_none());
        assert!(b.get_version("zz", 0).is_none());
    }
}
