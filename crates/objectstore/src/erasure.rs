//! Systematic Reed–Solomon erasure coding over GF(2^8).
//!
//! MinIO protects objects by splitting them into `k` data shards and `m`
//! parity shards; any `k` of the `k + m` shards reconstruct the object.
//! We build the standard systematic code: start from an
//! `(k + m) × k` Vandermonde matrix, normalise its top `k × k` block to the
//! identity (so data shards are verbatim slices of the object), and use the
//! remaining `m` rows to produce parity. Decoding inverts the `k × k`
//! submatrix formed by any `k` surviving rows.
//!
//! ## Data-plane fast paths
//!
//! The parity rows' split-nibble [`MulTable`]s are built once at coder
//! construction and cached, so the per-byte encode work is two 16-entry
//! lookups and two XORs with no table rebuilds and no per-byte branches.
//! [`ErasureCoder::encode_into`] / [`ErasureCoder::decode_into`] take
//! caller-owned buffers and perform **zero allocations** once those
//! buffers have warmed up — the shape MinIO's object write path needs when
//! a registry sustains thousands of layer writes per second.

use crate::gf256::{self, MulTable};
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Errors from encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// Fewer than `k` shards survive: the object is unrecoverable.
    TooFewShards { have: usize, need: usize },
    /// Shard lengths disagree.
    ShardLengthMismatch,
    /// Invalid code parameters.
    BadParameters(String),
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::TooFewShards { have, need } => {
                write!(f, "only {have} shards survive, need {need}")
            }
            ErasureError::ShardLengthMismatch => write!(f, "shard lengths differ"),
            ErasureError::BadParameters(s) => write!(f, "bad erasure parameters: {s}"),
        }
    }
}

impl std::error::Error for ErasureError {}

/// A `k + m` systematic Reed–Solomon coder.
#[derive(Debug, Clone)]
pub struct ErasureCoder {
    data_shards: usize,
    parity_shards: usize,
    /// Full `(k+m) × k` systematic encoding matrix, row-major.
    matrix: Vec<Vec<u8>>,
    /// Split-nibble tables for the `m` parity rows (`matrix[k..]`), built
    /// once so steady-state encodes never rebuild them. Derived state —
    /// excluded from serialization and equality.
    parity_tables: Vec<Vec<MulTable>>,
}

fn parity_tables_of(matrix: &[Vec<u8>], data_shards: usize) -> Vec<Vec<MulTable>> {
    matrix[data_shards..]
        .iter()
        .map(|row| row.iter().map(|&c| MulTable::new(c)).collect())
        .collect()
}

impl ErasureCoder {
    /// Create a coder with `k` data and `m` parity shards
    /// (`2 ≤ k + m ≤ 256`, both ≥ 1 except `m = 0` which is allowed for
    /// "no redundancy" sets).
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, ErasureError> {
        if data_shards == 0 {
            return Err(ErasureError::BadParameters("need at least one data shard".into()));
        }
        let n = data_shards + parity_shards;
        if n > 256 {
            return Err(ErasureError::BadParameters(format!(
                "k + m = {n} exceeds GF(256) limit of 256"
            )));
        }
        // Vandermonde rows: row_i = [i^0, i^1, ..., i^(k-1)] for distinct
        // evaluation points i = 0..n. Any k rows are linearly independent.
        let vander: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..data_shards).map(|j| gf256::pow(i as u8, j as u32)).collect())
            .collect();
        // Normalise: multiply by the inverse of the top k×k block so the
        // top becomes the identity (systematic form).
        let top: Vec<Vec<u8>> = vander[..data_shards].to_vec();
        let top_inv = invert(top).ok_or_else(|| {
            ErasureError::BadParameters("vandermonde top block not invertible".into())
        })?;
        let matrix: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..data_shards)
                    .map(|j| {
                        let mut acc = 0u8;
                        for (l, inv_row) in top_inv.iter().enumerate() {
                            acc = gf256::add(acc, gf256::mul(vander[i][l], inv_row[j]));
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        let parity_tables = parity_tables_of(&matrix, data_shards);
        Ok(ErasureCoder { data_shards, parity_shards, matrix, parity_tables })
    }

    /// MinIO's common default: 4 data + 2 parity.
    pub fn minio_default() -> Self {
        ErasureCoder::new(4, 2).expect("4+2 is a valid RS code")
    }

    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// Shard size for an object of `len` bytes (ceil division).
    pub fn shard_len(&self, len: usize) -> usize {
        len.div_ceil(self.data_shards)
    }

    /// Storage overhead factor `(k + m) / k` — the read/write amplification
    /// the regional registry pays for durability.
    pub fn overhead(&self) -> f64 {
        self.total_shards() as f64 / self.data_shards as f64
    }

    /// Split `data` into `k` padded data shards and compute `m` parity
    /// shards. Returns `k + m` shards of equal length.
    pub fn encode(&self, data: &[u8]) -> Vec<Vec<u8>> {
        let mut shards = Vec::with_capacity(self.total_shards());
        self.encode_into(data, &mut shards);
        shards
    }

    /// [`ErasureCoder::encode`] into caller-owned shard buffers. The
    /// buffers are resized/reused, so a steady-state caller (same object
    /// size every call) pays **zero allocations** per encode.
    pub fn encode_into(&self, data: &[u8], shards: &mut Vec<Vec<u8>>) {
        let shard_len = self.shard_len(data.len().max(1));
        shards.resize_with(self.total_shards(), Vec::new);
        // Data shards: verbatim systematic slices, zero-padded.
        for (i, shard) in shards[..self.data_shards].iter_mut().enumerate() {
            let start = (i * shard_len).min(data.len());
            let end = (start + shard_len).min(data.len());
            shard.clear();
            shard.extend_from_slice(&data[start..end]);
            shard.resize(shard_len, 0);
        }
        // Parity shards from the bottom m rows, via the cached tables.
        let (data_shards, parity_shards) = shards.split_at_mut(self.data_shards);
        for (parity, row_tables) in parity_shards.iter_mut().zip(&self.parity_tables) {
            parity.clear();
            parity.resize(shard_len, 0);
            for (shard, table) in data_shards.iter().zip(row_tables) {
                gf256::mul_acc_table(parity, shard, table);
            }
        }
    }

    /// Reconstruct the original `len`-byte object from surviving shards
    /// (`None` marks a lost shard). Any `k` survivors suffice.
    pub fn decode(&self, shards: &[Option<Vec<u8>>], len: usize) -> Result<Vec<u8>, ErasureError> {
        let mut out = Vec::new();
        self.decode_into(shards, len, &mut out)?;
        Ok(out)
    }

    /// [`ErasureCoder::decode`] into a caller-owned output buffer.
    pub fn decode_into(
        &self,
        shards: &[Option<Vec<u8>>],
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), ErasureError> {
        let refs: Vec<Option<&[u8]>> = shards.iter().map(|s| s.as_deref()).collect();
        self.decode_refs(&refs, len, out)
    }

    /// Core decode over borrowed shards — lets callers that already hold
    /// shard storage (scrub sets, drive sets) decode without cloning every
    /// surviving shard first.
    pub fn decode_refs(
        &self,
        shards: &[Option<&[u8]>],
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), ErasureError> {
        if shards.len() != self.total_shards() {
            return Err(ErasureError::BadParameters(format!(
                "expected {} shard slots, got {}",
                self.total_shards(),
                shards.len()
            )));
        }
        let shard_len = self.shard_len(len.max(1));
        for s in shards.iter().flatten() {
            if s.len() != shard_len {
                return Err(ErasureError::ShardLengthMismatch);
            }
        }
        out.clear();
        // Fast path: all data shards intact — a straight widening copy.
        if shards[..self.data_shards].iter().all(Option::is_some) {
            out.reserve(shard_len * self.data_shards);
            for s in shards[..self.data_shards].iter() {
                out.extend_from_slice(s.expect("checked is_some"));
            }
            out.truncate(len);
            return Ok(());
        }
        let survivors: Vec<usize> =
            shards.iter().enumerate().filter_map(|(i, s)| s.map(|_| i)).collect();
        if survivors.len() < self.data_shards {
            return Err(ErasureError::TooFewShards {
                have: survivors.len(),
                need: self.data_shards,
            });
        }
        // General path: invert the submatrix of the first k surviving rows.
        let rows: Vec<usize> = survivors[..self.data_shards].to_vec();
        let sub: Vec<Vec<u8>> = rows.iter().map(|&r| self.matrix[r].clone()).collect();
        let sub_inv =
            invert(sub).expect("any k rows of a Vandermonde-derived matrix are independent");
        // data_j = Σ_i inv[j][i] * shard[rows[i]] — tables are built once
        // per (j, i) cell and stream whole shards, not per byte.
        out.resize(shard_len * self.data_shards, 0);
        for (j, inv_row) in sub_inv.iter().enumerate() {
            let dst = &mut out[j * shard_len..(j + 1) * shard_len];
            for (&c, &r) in inv_row.iter().zip(&rows) {
                gf256::mul_acc_table(dst, shards[r].expect("survivor"), &MulTable::new(c));
            }
        }
        out.truncate(len);
        Ok(())
    }

    /// Rebuild every missing shard in place (MinIO healing). Requires ≥ k
    /// survivors.
    pub fn reconstruct_shards(
        &self,
        shards: &mut [Option<Vec<u8>>],
        len: usize,
    ) -> Result<(), ErasureError> {
        let padded = self.shard_len(len.max(1)) * self.data_shards;
        let mut data = Vec::new();
        self.decode_into(shards, padded, &mut data)?;
        let mut rebuilt = Vec::new();
        self.encode_into(&data, &mut rebuilt);
        for (slot, shard) in shards.iter_mut().zip(rebuilt) {
            if slot.is_none() {
                *slot = Some(shard);
            }
        }
        Ok(())
    }
}

// The cached tables are derived state: equality and serialization cover
// only the code geometry, and deserialization rebuilds the tables.
impl PartialEq for ErasureCoder {
    fn eq(&self, other: &Self) -> bool {
        self.data_shards == other.data_shards
            && self.parity_shards == other.parity_shards
            && self.matrix == other.matrix
    }
}

impl Eq for ErasureCoder {}

impl Serialize for ErasureCoder {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("data_shards".to_string(), self.data_shards.to_value()),
            ("parity_shards".to_string(), self.parity_shards.to_value()),
            ("matrix".to_string(), self.matrix.to_value()),
        ])
    }
}

impl Deserialize for ErasureCoder {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let data_shards = usize::from_value(v.field("data_shards")?)?;
        let parity_shards = usize::from_value(v.field("parity_shards")?)?;
        let matrix = Vec::<Vec<u8>>::from_value(v.field("matrix")?)?;
        if matrix.len() != data_shards + parity_shards
            || matrix.iter().any(|row| row.len() != data_shards)
        {
            return Err(serde::Error::msg("erasure matrix shape mismatch"));
        }
        let parity_tables = parity_tables_of(&matrix, data_shards);
        Ok(ErasureCoder { data_shards, parity_shards, matrix, parity_tables })
    }
}

/// Gauss–Jordan inversion over GF(2^8). Returns `None` for singular input.
fn invert(mut m: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = m.len();
    for row in &m {
        if row.len() != n {
            return None;
        }
    }
    let mut inv: Vec<Vec<u8>> =
        (0..n).map(|i| (0..n).map(|j| u8::from(i == j)).collect()).collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| m[r][col] != 0)?;
        m.swap(col, pivot);
        inv.swap(col, pivot);
        // Scale pivot row to 1.
        let p = m[col][col];
        let p_inv = gf256::inv(p);
        for j in 0..n {
            m[col][j] = gf256::mul(m[col][j], p_inv);
            inv[col][j] = gf256::mul(inv[col][j], p_inv);
        }
        // Eliminate other rows.
        for r in 0..n {
            if r != col && m[r][col] != 0 {
                let f = m[r][col];
                for j in 0..n {
                    m[r][j] = gf256::add(m[r][j], gf256::mul(f, m[col][j]));
                    inv[r][j] = gf256::add(inv[r][j], gf256::mul(f, inv[col][j]));
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    /// Encode with the retained scalar oracle: the original per-call
    /// allocation pattern and byte-at-a-time kernels.
    fn encode_scalar(coder: &ErasureCoder, data: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = coder.shard_len(data.len().max(1));
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(coder.total_shards());
        for i in 0..coder.data_shards() {
            let start = i * shard_len;
            let end = (start + shard_len).min(data.len());
            let mut shard = if start < data.len() { data[start..end].to_vec() } else { Vec::new() };
            shard.resize(shard_len, 0);
            shards.push(shard);
        }
        for p in 0..coder.parity_shards() {
            let row = &coder.matrix[coder.data_shards() + p];
            let mut parity = vec![0u8; shard_len];
            for (j, shard) in shards[..coder.data_shards()].iter().enumerate() {
                crate::gf256::scalar::mul_acc(&mut parity, shard, row[j]);
            }
            shards.push(parity);
        }
        shards
    }

    #[test]
    fn encode_is_systematic() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let data = sample(1000, 1);
        let shards = coder.encode(&data);
        assert_eq!(shards.len(), 6);
        let shard_len = coder.shard_len(1000);
        // Data shards are verbatim slices (with padding on the last).
        for (i, shard) in shards.iter().enumerate().take(4) {
            let start = i * shard_len;
            let end = (start + shard_len).min(data.len());
            assert_eq!(&shard[..end - start], &data[start..end], "shard {i}");
        }
    }

    #[test]
    fn fast_encode_matches_scalar_oracle() {
        // Differential test across geometries and awkward sizes, including
        // sizes that don't fill the last shard and sub-word tails.
        for (k, m) in [(1usize, 0usize), (1, 3), (2, 1), (4, 2), (8, 4), (12, 4)] {
            let coder = ErasureCoder::new(k, m).unwrap();
            for len in [0usize, 1, 7, k, k * 8 + 3, 1000, 4096] {
                let data = sample(len, (k * 1000 + m * 10 + len) as u64);
                assert_eq!(
                    coder.encode(&data),
                    encode_scalar(&coder, &data),
                    "k={k} m={m} len={len}"
                );
            }
        }
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches_encode() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let mut shards = Vec::new();
        // First call warms the buffers; subsequent calls must not change
        // capacity (zero-allocation steady state).
        coder.encode_into(&sample(4096, 1), &mut shards);
        let caps: Vec<usize> = shards.iter().map(Vec::capacity).collect();
        let ptrs: Vec<*const u8> = shards.iter().map(|s| s.as_ptr()).collect();
        let data = sample(4096, 2);
        coder.encode_into(&data, &mut shards);
        assert_eq!(shards, coder.encode(&data));
        assert_eq!(caps, shards.iter().map(Vec::capacity).collect::<Vec<_>>());
        assert_eq!(ptrs, shards.iter().map(|s| s.as_ptr()).collect::<Vec<_>>());
    }

    #[test]
    fn roundtrip_with_no_loss() {
        let coder = ErasureCoder::minio_default();
        let data = sample(4096, 2);
        let shards: Vec<Option<Vec<u8>>> = coder.encode(&data).into_iter().map(Some).collect();
        assert_eq!(coder.decode(&shards, data.len()).unwrap(), data);
    }

    #[test]
    fn recovers_from_any_m_losses() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let data = sample(777, 3);
        let encoded = coder.encode(&data);
        // Every pair of lost shards must be recoverable.
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                let got = coder.decode(&shards, data.len()).unwrap();
                assert_eq!(got, data, "lost shards {a},{b}");
            }
        }
    }

    #[test]
    fn decode_refs_avoids_owning_shards() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let data = sample(900, 8);
        let encoded = coder.encode(&data);
        let mut refs: Vec<Option<&[u8]>> = encoded.iter().map(|s| Some(s.as_slice())).collect();
        refs[1] = None;
        refs[4] = None;
        let mut out = Vec::new();
        coder.decode_refs(&refs, data.len(), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn fails_beyond_parity_budget() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let data = sample(100, 4);
        let mut shards: Vec<Option<Vec<u8>>> = coder.encode(&data).into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(
            coder.decode(&shards, data.len()).unwrap_err(),
            ErasureError::TooFewShards { have: 3, need: 4 }
        );
    }

    #[test]
    fn healing_rebuilds_missing_shards_bit_exact() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let data = sample(5000, 5);
        let encoded = coder.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        shards[1] = None;
        shards[5] = None;
        coder.reconstruct_shards(&mut shards, data.len()).unwrap();
        for (i, (got, want)) in shards.iter().zip(&encoded).enumerate() {
            assert_eq!(got.as_ref().unwrap(), want, "shard {i}");
        }
    }

    #[test]
    fn various_code_geometries_roundtrip() {
        for (k, m) in [(1, 0), (1, 3), (2, 1), (3, 3), (8, 4), (10, 2)] {
            let coder = ErasureCoder::new(k, m).unwrap();
            let data = sample(k * 37 + 11, (k * 10 + m) as u64);
            let mut shards: Vec<Option<Vec<u8>>> =
                coder.encode(&data).into_iter().map(Some).collect();
            // Drop the last min(m, k+m-k) shards.
            for i in 0..m.min(shards.len() - k) {
                let idx = shards.len() - 1 - i;
                shards[idx] = None;
            }
            assert_eq!(coder.decode(&shards, data.len()).unwrap(), data, "k={k} m={m}");
        }
    }

    #[test]
    fn tiny_and_empty_objects() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        for data in [vec![], vec![0x42], sample(3, 6)] {
            let shards: Vec<Option<Vec<u8>>> = coder.encode(&data).into_iter().map(Some).collect();
            assert_eq!(coder.decode(&shards, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn shard_length_mismatch_detected() {
        let coder = ErasureCoder::new(2, 1).unwrap();
        let data = sample(10, 7);
        let mut shards: Vec<Option<Vec<u8>>> = coder.encode(&data).into_iter().map(Some).collect();
        shards[0].as_mut().unwrap().push(0);
        assert_eq!(
            coder.decode(&shards, data.len()).unwrap_err(),
            ErasureError::ShardLengthMismatch
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(matches!(ErasureCoder::new(0, 2), Err(ErasureError::BadParameters(_))));
        assert!(matches!(ErasureCoder::new(200, 100), Err(ErasureError::BadParameters(_))));
        assert!(ErasureCoder::new(128, 128).is_ok());
    }

    #[test]
    fn overhead_reports_amplification() {
        assert!((ErasureCoder::new(4, 2).unwrap().overhead() - 1.5).abs() < 1e-12);
        assert!((ErasureCoder::new(8, 4).unwrap().overhead() - 1.5).abs() < 1e-12);
        assert!((ErasureCoder::new(1, 3).unwrap().overhead() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_rebuilds_cached_tables() {
        let coder = ErasureCoder::new(4, 2).unwrap();
        let json = serde_json::to_string(&coder).unwrap();
        let back: ErasureCoder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, coder);
        // The deserialized coder must encode identically (tables rebuilt).
        let data = sample(500, 11);
        assert_eq!(back.encode(&data), coder.encode(&data));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // triple-index matrix math reads best as ranges
    fn matrix_inversion_round_trips() {
        let m = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 10]];
        let inv = invert(m.clone()).unwrap();
        // m * inv = I over GF(256).
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0u8;
                for l in 0..3 {
                    acc = gf256::add(acc, gf256::mul(m[i][l], inv[l][j]));
                }
                assert_eq!(acc, u8::from(i == j), "({i},{j})");
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let m = vec![vec![1, 2], vec![1, 2]];
        assert!(invert(m).is_none());
    }
}
