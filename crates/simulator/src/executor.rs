//! Execute an application under a schedule on the simulated testbed.
//!
//! Faithful to the paper's execution model:
//!
//! * **Staged deployment waves** — each stage's images are pulled when the
//!   stage is reached; pulls within a wave are concurrent and contend on
//!   shared registry→device routes (the prisoner's-dilemma mechanism of
//!   the deployment game). Layer-cache state carries across waves and
//!   applications, so sibling images dedup.
//! * **Barrier-ordered, non-concurrent execution** — the paper measures
//!   `EC(m_i, d_j)` "during each microservice (non-concurrently)
//!   execution"; stage members execute sequentially in id order.
//! * **Instrumented energy** — the Intel device is metered through the
//!   emulated RAPL counter bank (pyRAPL's flow), the ARM device through
//!   the sampling wall meter (Ketotek's flow). Analytic and instrumented
//!   energies are both reported; they agree to instrument quantisation.

use crate::chaos::{ChaosEvent, ChaosKind};
use crate::engine::Engine;
use crate::jitter::Jitter;
use crate::metrics::{MicroserviceMetrics, RunReport};
use crate::schedule::{RegistryChoice, Schedule};
use crate::testbed::{peer_holder, route_key, Testbed};
use crate::trace::{Trace, TraceKind};
use deep_dataflow::{stages, Application, MicroserviceId};
use deep_energy::{Joules, PowerMeter, RaplBank, RaplMeasurement, Watts};
use deep_netsim::{DeviceId, RegistryId, Seconds};
use deep_registry::{
    FaultPlan, PeerCacheSource, PlannedFaults, Platform, PullSession, Registry, RegistryMesh,
    SourceParams,
};
use std::collections::HashMap;
use std::fmt;

/// How pulls discover which fleet peers hold which layers (only
/// consulted when [`ExecutorConfig::peer_sharing`] is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeerDiscovery {
    /// The omniscient catalog (paper-era behaviour): every wave barrier
    /// snapshots every *other* device's current cache via
    /// [`crate::PeerPlane::snapshot`]. The regression oracle for the
    /// gossip plane.
    #[default]
    Snapshot,
    /// Decentralized epidemic discovery ([`crate::GossipPlane`]): each
    /// device advertises its cache under an epoch, `rounds_per_wave`
    /// seeded push/pull rounds (at `fanout` partners per device) run at
    /// every wave barrier, and a pull's mesh carries at most
    /// `view_size` holder sources from the *puller's partial view*.
    /// Layers gossip hasn't propagated are simply absent (and priced as
    /// absent by the estimator); stale advertisements fail over
    /// mid-pull. With `fanout >= devices - 1`, one round per wave and
    /// an unbounded view this reproduces [`PeerDiscovery::Snapshot`]
    /// byte for byte.
    Gossip {
        /// Exchange partners per device per round (clamped to
        /// `devices - 1`).
        fanout: u32,
        /// Max holder sources one pull's mesh may carry.
        view_size: u32,
        /// Epidemic rounds per wave barrier.
        rounds_per_wave: u32,
    },
    /// The PR 9 clone-based gossip exchange, kept alive solely as the
    /// differential oracle for [`PeerDiscovery::Gossip`]'s epoch-vector
    /// delta engine: same partner schedule, same merge semantics, same
    /// views — the test planes run the full scheduler/executor pipeline
    /// under both and pin the serialized Schedules and RunReports byte
    /// for byte. Not part of the supported API.
    #[doc(hidden)]
    GossipOracle {
        /// Exchange partners per device per round (clamped to
        /// `devices - 1`).
        fanout: u32,
        /// Max holder sources one pull's mesh may carry.
        view_size: u32,
        /// Epidemic rounds per wave barrier.
        rounds_per_wave: u32,
    },
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorConfig {
    /// Seed for the run's jitter stream.
    pub seed: u64,
    /// Relative jitter amplitude on every phase duration (0 = exact).
    pub jitter: f64,
    /// `true` (paper behaviour): pull images per stage wave. `false`
    /// (ablation): pull everything in a single wave at t = 0.
    pub staged_deployment: bool,
    /// Meter energy through the RAPL/wall-meter instruments as well as the
    /// analytic power model.
    pub instruments: bool,
    /// Register the testbed's peer plane in each pull's mesh,
    /// snapshotting the *other* devices' layer caches at the wave
    /// barrier: layers a fleet peer already holds are fetched over the
    /// peer links instead of the registry route. Under the default
    /// [`crate::PeerPlane::PerPair`] plane each serving device becomes
    /// its own blob source (mesh ids [`crate::REGISTRY_PEER_BASE`]`+ j`)
    /// at its per-pair link rate, and concurrent same-wave pulls it
    /// serves contend on *its* uplink ([`crate::route_key`]); the
    /// retained [`crate::PeerPlane::Aggregate`] oracle registers the
    /// single anonymous [`crate::REGISTRY_PEER`] source of the scalar
    /// model. `false` (paper behaviour) keeps every pull on its
    /// placement's single registry.
    pub peer_sharing: bool,
    /// How peers are discovered when `peer_sharing` is on: the
    /// omniscient snapshot catalog (default) or seeded epidemic gossip
    /// with bounded views. Ignored without `peer_sharing`.
    pub peer_discovery: PeerDiscovery,
    /// Inject seeded faults sampled from the testbed's
    /// [`Testbed::fault_model`]: every pull's primary source is drawn
    /// dead with its per-pull fatal probability (the session fails the
    /// remaining layers over to survivors — every other full registry
    /// rides along as a standby source), and each blob fetch draws
    /// transient failures retried under the model's policy. Pulls are
    /// numbered in execution order (wave order, then member order), so
    /// [`deep_registry::FaultPlan`] queries predict a run's faults
    /// exactly. With a zero fault model this path is byte-identical to
    /// the uninjected one (regression-tested).
    pub fault_injection: bool,
    /// Seed of the injected [`deep_registry::FaultPlan`] — sweep it for
    /// Monte-Carlo realisations of the same model.
    pub fault_seed: u64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            seed: 0,
            jitter: 0.0,
            staged_deployment: true,
            instruments: true,
            peer_sharing: false,
            peer_discovery: PeerDiscovery::Snapshot,
            fault_injection: false,
            fault_seed: 0,
        }
    }
}

/// Executor failures.
#[derive(Debug)]
pub enum ExecError {
    /// Schedule length doesn't match the application.
    ScheduleMismatch { app: usize, schedule: usize },
    /// A microservice's requirements don't fit its assigned device.
    Inadmissible { microservice: String, device: DeviceId },
    /// Image missing from the chosen registry.
    Registry(deep_registry::RegistryError),
    /// No catalog entry for a microservice (publish the app first).
    UnknownImage { application: String, microservice: String },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ScheduleMismatch { app, schedule } => {
                write!(f, "schedule covers {schedule} microservices, app has {app}")
            }
            ExecError::Inadmissible { microservice, device } => {
                write!(f, "{microservice} does not fit on {device}")
            }
            ExecError::Registry(e) => write!(f, "registry: {e}"),
            ExecError::UnknownImage { application, microservice } => {
                write!(f, "no published image for {application}/{microservice}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<deep_registry::RegistryError> for ExecError {
    fn from(e: deep_registry::RegistryError) -> Self {
        ExecError::Registry(e)
    }
}

/// Per-device energy instruments for one run.
struct Instruments {
    rapl: HashMap<usize, RaplBank>,
    meters: HashMap<usize, PowerMeter>,
}

impl Instruments {
    fn for_testbed(testbed: &Testbed) -> Self {
        let mut rapl = HashMap::new();
        let mut meters = HashMap::new();
        for d in &testbed.devices {
            match d.arch {
                Platform::Amd64 => {
                    rapl.insert(d.id.0, RaplBank::new());
                }
                Platform::Arm64 => {
                    meters.insert(d.id.0, PowerMeter::ketotek());
                }
            }
        }
        Instruments { rapl, meters }
    }

    /// Meter `power` over `dt` on `device` and return nothing; reads are
    /// taken via [`Instruments::begin`]/[`Instruments::energy_since`].
    fn observe(&mut self, device: DeviceId, power: Watts, dt: Seconds) {
        if let Some(bank) = self.rapl.get_mut(&device.0) {
            bank.advance_package(power, dt);
        } else if let Some(meter) = self.meters.get_mut(&device.0) {
            meter.observe(power, dt);
        }
    }

    /// Snapshot for a measurement window on `device`.
    fn begin(&self, device: DeviceId) -> InstrumentSnapshot {
        if let Some(bank) = self.rapl.get(&device.0) {
            InstrumentSnapshot::Rapl(RaplMeasurement::begin(bank))
        } else if let Some(meter) = self.meters.get(&device.0) {
            InstrumentSnapshot::Meter(meter.energy())
        } else {
            InstrumentSnapshot::None
        }
    }

    /// Energy accumulated on `device` since `snapshot`.
    fn energy_since(&self, device: DeviceId, snapshot: &InstrumentSnapshot) -> Joules {
        match snapshot {
            InstrumentSnapshot::Rapl(m) => {
                m.package_energy(self.rapl.get(&device.0).expect("rapl device"))
            }
            InstrumentSnapshot::Meter(start) => {
                let now = self.meters.get(&device.0).expect("meter device").energy();
                now - *start
            }
            InstrumentSnapshot::None => Joules::ZERO,
        }
    }
}

enum InstrumentSnapshot {
    Rapl(RaplMeasurement),
    Meter(Joules),
    None,
}

/// Run `app` under `schedule` on `testbed`. Mutates device caches (images
/// stay cached across runs unless [`Testbed::reset_caches`] is called) and
/// returns the run report plus the monitoring trace.
pub fn execute(
    testbed: &mut Testbed,
    app: &Application,
    schedule: &Schedule,
    cfg: &ExecutorConfig,
) -> Result<(RunReport, Trace), ExecError> {
    execute_with_events(testbed, app, schedule, cfg, &[])
}

/// [`execute`], replaying a scripted [`ChaosEvent`] timeline alongside
/// the run: every event whose time has been reached fires at the next
/// wave barrier, after the wave's peer gossip round (see the
/// [`crate::chaos`] module docs for the semantics). An empty timeline
/// is byte-identical to [`execute`]. The testbed fault model's
/// [`deep_registry::OutageWindow`]s are also gated here, on the same
/// clock — they require `cfg.fault_injection` (windows ride the fault
/// plan's injection wrappers).
pub fn execute_with_events(
    testbed: &mut Testbed,
    app: &Application,
    schedule: &Schedule,
    cfg: &ExecutorConfig,
    events: &[ChaosEvent],
) -> Result<(RunReport, Trace), ExecError> {
    validate_schedule(testbed, app, schedule)?;
    let mut exec = OnlineExecutor::new(testbed, cfg, events);
    let waves = plan_waves(app, cfg.staged_deployment);
    let mut run = exec.begin_job(app);
    for (wave_idx, wave) in waves.iter().enumerate() {
        exec.run_wave(testbed, app, schedule, wave, wave_idx, &mut run)?;
    }
    let report = run.into_report(app, schedule, exec.clock());
    Ok((report, exec.into_trace()))
}

/// Check that `schedule` covers `app` and that every placement's device
/// admits its microservice — the up-front validation [`execute`] runs
/// before touching any state, exposed so the arrival plane can vet each
/// admission the same way.
pub fn validate_schedule(
    testbed: &Testbed,
    app: &Application,
    schedule: &Schedule,
) -> Result<(), ExecError> {
    if schedule.len() != app.len() {
        return Err(ExecError::ScheduleMismatch { app: app.len(), schedule: schedule.len() });
    }
    for id in app.ids() {
        let ms = app.microservice(id);
        let placement = schedule.placement(id);
        if !testbed.device(placement.device).admits(&ms.requirements) {
            return Err(ExecError::Inadmissible {
                microservice: ms.name.clone(),
                device: placement.device,
            });
        }
    }
    Ok(())
}

/// The deployment waves of `app`: the stage member lists under staged
/// deployment (paper behaviour), one flat wave otherwise.
pub fn plan_waves(app: &Application, staged: bool) -> Vec<Vec<MicroserviceId>> {
    if staged {
        stages(app).iter().map(|s| s.members.clone()).collect()
    } else {
        vec![app.ids().collect()]
    }
}

/// Per-job measurement accumulator for one application run on an
/// [`OnlineExecutor`] timeline. Created at admission via
/// [`OnlineExecutor::begin_job`], filled wave by wave, and folded into a
/// [`RunReport`] whose makespan is measured relative to the job's own
/// start — so a job admitted mid-soak reports the same spans it would
/// report alone.
#[derive(Debug)]
pub struct JobRun {
    started: Seconds,
    instruments: bool,
    td: Vec<Seconds>,
    tc: Vec<Seconds>,
    tp: Vec<Seconds>,
    downloaded_mb: Vec<f64>,
    sources: Vec<Vec<deep_registry::SourcePull>>,
    failed_sources: Vec<Vec<RegistryId>>,
    backoff: Vec<Seconds>,
    analytic: Vec<Joules>,
    metered: Vec<Joules>,
}

impl JobRun {
    fn new(len: usize, started: Seconds, instruments: bool) -> JobRun {
        JobRun {
            started,
            instruments,
            td: vec![Seconds::ZERO; len],
            tc: vec![Seconds::ZERO; len],
            tp: vec![Seconds::ZERO; len],
            downloaded_mb: vec![0.0; len],
            sources: vec![Vec::new(); len],
            failed_sources: vec![Vec::new(); len],
            backoff: vec![Seconds::ZERO; len],
            analytic: vec![Joules::ZERO; len],
            metered: vec![Joules::ZERO; len],
        }
    }

    /// Executor clock when the job began.
    pub fn started(&self) -> Seconds {
        self.started
    }

    /// Fold the accumulated measurements into a [`RunReport`]; `end` is
    /// the executor clock after the job's last wave.
    pub fn into_report(
        mut self,
        app: &Application,
        schedule: &Schedule,
        end: Seconds,
    ) -> RunReport {
        let microservices = app
            .ids()
            .map(|id| {
                let ms = app.microservice(id);
                MicroserviceMetrics {
                    name: ms.name.clone(),
                    placement: schedule.placement(id),
                    td: self.td[id.0],
                    tc: self.tc[id.0],
                    tp: self.tp[id.0],
                    downloaded_mb: self.downloaded_mb[id.0],
                    sources: std::mem::take(&mut self.sources[id.0]),
                    failed_sources: std::mem::take(&mut self.failed_sources[id.0]),
                    backoff_total: self.backoff[id.0],
                    energy: self.analytic[id.0],
                    metered_energy: if self.instruments {
                        self.metered[id.0]
                    } else {
                        self.analytic[id.0]
                    },
                }
            })
            .collect();
        RunReport {
            application: app.name().to_string(),
            microservices,
            makespan: end - self.started,
        }
    }
}

/// The executor's persistent cross-wave state, split out of
/// [`execute_with_events`] so the arrival plane (the `deep-arrival`
/// crate) can interleave *multiple* jobs on one continuous timeline:
/// jitter stream, monitoring trace, energy instruments, the wave clock,
/// the execution-order pull counter the fault plan indexes, and the
/// scripted chaos timeline all survive across [`OnlineExecutor::run_wave`]
/// calls. The fault plan is sampled **once** at session start, so
/// mutating `testbed.fault_model` between waves (e.g. feeding inferred
/// outage windows back to the scheduler) never changes what the session
/// injects. Driving one job's waves straight through reproduces
/// [`execute_with_events`] byte for byte — the static-parity contract
/// the arrival plane's regression tests pin.
pub struct OnlineExecutor {
    cfg: ExecutorConfig,
    jitter: Jitter,
    trace: Trace,
    instruments: Instruments,
    clock: Seconds,
    pull_counter: u64,
    fault_plan: Option<FaultPlan>,
    timeline: Vec<ChaosEvent>,
    next_event: usize,
    /// The epidemic discovery plane, present iff `cfg.peer_sharing` with
    /// [`PeerDiscovery::Gossip`]. Session-scoped, like the fault plan:
    /// views persist across waves (and across jobs in an online
    /// session), so discovery lag carries over exactly as it would in a
    /// long-lived fleet.
    gossip: Option<crate::gossip::GossipPlane>,
}

/// Fire every scripted event due at or before `clock` against the
/// split-borrowed testbed state. `peer_snapshots` holds the in-flight
/// wave's gossip snapshots (an eviction retracts the holder's own stale
/// advertisements); callers firing between waves pass an empty map.
#[allow(clippy::too_many_arguments)]
fn fire_scripted_events(
    timeline: &[ChaosEvent],
    next_event: &mut usize,
    clock: Seconds,
    devices: &mut [crate::device::SimDevice],
    regional: &mut deep_registry::RegionalRegistry,
    peer_snapshots: &mut HashMap<usize, Vec<(RegistryId, PeerCacheSource)>>,
    mut gossip: Option<&mut crate::gossip::GossipPlane>,
    trace: &mut Trace,
) -> Result<(), ExecError> {
    while *next_event < timeline.len() && timeline[*next_event].at.as_f64() <= clock.as_f64() {
        let event = &timeline[*next_event];
        *next_event += 1;
        let label = match &event.kind {
            ChaosKind::CachePressure { device, keep } => {
                let evicted = devices[device.0].cache.evict_to(*keep);
                for victim in &evicted {
                    for sources in peer_snapshots.values_mut() {
                        for (id, src) in sources.iter_mut() {
                            match peer_holder(*id) {
                                // The holder's own source: the layer is gone.
                                Some(holder) if holder == *device => {
                                    src.retract(victim);
                                }
                                Some(_) => {}
                                // Aggregate plane: anonymous fleet source —
                                // retract only when no other device still
                                // holds the layer.
                                None => {
                                    let held_elsewhere = devices
                                        .iter()
                                        .any(|d| d.id != *device && d.cache.contains(victim));
                                    if !held_elsewhere {
                                        src.retract(victim);
                                    }
                                }
                            }
                        }
                    }
                }
                // Gossip discovery: the holder re-advertises its shrunk
                // cache *now* (epoch bump), so the stale advertisement
                // ages out of remote views as later rounds spread the
                // fresh epoch. The in-flight snapshots above stay stale
                // on purpose — those pulls pay a failover, never a wrong
                // estimate.
                if !evicted.is_empty() {
                    if let Some(plane) = gossip.as_mut() {
                        plane.readvertise(*device, &devices[device.0].cache);
                    }
                }
                format!(
                    "cache-pressure d{} evicted {} layer(s) (scripted t={})",
                    device.0,
                    evicted.len(),
                    event.at
                )
            }
            ChaosKind::DeleteTag { repository, tag } => {
                regional.delete_manifest(repository, tag)?;
                format!("delete-tag {repository}:{tag} (scripted t={})", event.at)
            }
            ChaosKind::RegistryGc => {
                let report = deep_registry::gc_collect(regional)?;
                format!(
                    "registry-gc marked {} swept {} released {} B (scripted t={})",
                    report.marked, report.swept, report.declared_bytes_released, event.at
                )
            }
        };
        trace.record(clock, TraceKind::ChaosEventFired, event.device(), &label);
    }
    Ok(())
}

impl OnlineExecutor {
    /// Open a session on `testbed`. Samples the fault plan from the
    /// *current* `testbed.fault_model` (when `cfg.fault_injection` is
    /// on) and sorts the chaos timeline; neither is re-read later.
    pub fn new(testbed: &Testbed, cfg: &ExecutorConfig, events: &[ChaosEvent]) -> OnlineExecutor {
        let fault_plan: Option<FaultPlan> =
            if cfg.fault_injection { Some(testbed.fault_model.plan(cfg.fault_seed)) } else { None };
        let mut timeline: Vec<ChaosEvent> = events.to_vec();
        timeline.sort_by(|a, b| a.at.as_f64().total_cmp(&b.at.as_f64()));
        let gossip = match (cfg.peer_sharing, cfg.peer_discovery) {
            (true, PeerDiscovery::Gossip { fanout, view_size, rounds_per_wave }) => {
                Some(crate::gossip::GossipPlane::new(
                    testbed.devices.len(),
                    fanout,
                    view_size,
                    rounds_per_wave,
                    cfg.seed,
                ))
            }
            (true, PeerDiscovery::GossipOracle { fanout, view_size, rounds_per_wave }) => {
                Some(crate::gossip::GossipPlane::new_oracle(
                    testbed.devices.len(),
                    fanout,
                    view_size,
                    rounds_per_wave,
                    cfg.seed,
                ))
            }
            _ => None,
        };
        OnlineExecutor {
            cfg: *cfg,
            jitter: Jitter::new(cfg.seed, cfg.jitter),
            trace: Trace::new(),
            instruments: Instruments::for_testbed(testbed),
            clock: Seconds::ZERO,
            pull_counter: 0,
            fault_plan,
            timeline,
            next_event: 0,
            gossip,
        }
    }

    /// The session clock (advanced by each wave's pull span and
    /// execution phases, and by [`OnlineExecutor::advance_to`]).
    pub fn clock(&self) -> Seconds {
        self.clock
    }

    /// Pulls committed so far, in execution order — the index the fault
    /// plan (and an online [`crate::Schedule`] estimator) continues from.
    pub fn pulls(&self) -> u64 {
        self.pull_counter
    }

    /// Idle fast-forward: advance the clock to `t` (never backwards).
    /// Chaos events falling in the gap fire at the next wave barrier,
    /// exactly as they would inside a long wave — or earlier, if the
    /// caller makes the gap an explicit barrier with
    /// [`OnlineExecutor::fire_due_events`].
    pub fn advance_to(&mut self, t: Seconds) {
        self.clock = self.clock.max(t);
    }

    /// Fire every scripted chaos event due at or before the current
    /// clock, outside any wave — an explicit barrier. The arrival plane
    /// calls this after an idle fast-forward so gap chaos (cache
    /// evictions, tag deletes, GC) is visible to the next admission's
    /// scheduling pass instead of landing one wave barrier late.
    /// Within-wave semantics (gossip-then-fire, stale peer
    /// advertisements) are unchanged: with no wave in flight there are
    /// no snapshots to go stale.
    pub fn fire_due_events(&mut self, testbed: &mut Testbed) -> Result<(), ExecError> {
        let mut no_snapshots = HashMap::new();
        fire_scripted_events(
            &self.timeline,
            &mut self.next_event,
            self.clock,
            &mut testbed.devices,
            &mut testbed.regional,
            &mut no_snapshots,
            self.gossip.as_mut(),
            &mut self.trace,
        )
    }

    /// Start a measurement accumulator for a job admitted *now*.
    pub fn begin_job(&self, app: &Application) -> JobRun {
        JobRun::new(app.len(), self.clock, self.cfg.instruments)
    }

    /// Consume the session, returning its monitoring trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Run one deployment wave of `app` under `schedule` and then its
    /// members' barrier-ordered execution phases, accumulating
    /// measurements into `run`. `wave_idx` labels the stage-barrier
    /// trace record. Callers interleave scheduling between calls — the
    /// testbed is only borrowed for the duration of the wave.
    pub fn run_wave(
        &mut self,
        testbed: &mut Testbed,
        app: &Application,
        schedule: &Schedule,
        wave: &[MicroserviceId],
        wave_idx: usize,
        run: &mut JobRun,
    ) -> Result<(), ExecError> {
        // The standby strategy space, taken before the split borrows
        // below (owned Copy handles): the executor must register exactly
        // the sources the scheduler enumerates, or fault-pricing parity
        // breaks.
        let registry_choices: Vec<RegistryChoice> = testbed.registry_choices();

        // Split borrows on both structs: devices and the regional
        // registry mutably (caches; chaos events delete tags and
        // garbage-collect), the session's sampled plan immutably while
        // its clock, trace, and counters advance.
        let OnlineExecutor {
            ref cfg,
            ref mut jitter,
            ref mut trace,
            ref mut instruments,
            ref mut clock,
            ref mut pull_counter,
            ref fault_plan,
            ref timeline,
            ref mut next_event,
            ref mut gossip,
        } = *self;
        let Testbed {
            ref mut devices,
            ref hub,
            ref mut regional,
            ref mirrors,
            ref params,
            ref peer_plane,
            ref fault_model,
            ref entries,
            ref topology,
        } = *testbed;

        // Route parameters for any mesh source (paper registries, peer
        // sources, mirrors) — `Testbed::source_params` over the split
        // borrows.
        let source_params = |choice: RegistryChoice,
                             device: DeviceId,
                             slowdown: f64|
         -> SourceParams {
            crate::testbed::source_params_for(mirrors, peer_plane, params, choice, device, slowdown)
        };

        // ---- Deployment wave: concurrent contended pulls. --------------
        // Same-wave contention is charged per *contention resource*
        // (`route_key`): a split pull loads every route its bytes
        // actually traverse — registry routes per (source, pulling
        // device), peer traffic on the serving device's uplink.
        let mut route_load: HashMap<(RegistryId, usize), usize> = HashMap::new();
        // Peer-cache snapshots, one per target device, taken at the wave
        // barrier: peers advertise what they held when the wave began (a
        // gossip round per barrier), decoupling the snapshot from the
        // mutable per-pull cache borrows below. Under the per-pair plane
        // each advertising holder is its own source; the aggregate
        // oracle folds them into one.
        // Snapshots are built only for devices this wave actually deploys
        // to — a fleet wave touching a handful of devices must not pay
        // O(devices²) digest clones.
        let mut peer_snapshots: HashMap<usize, Vec<(RegistryId, PeerCacheSource)>> = if cfg
            .peer_sharing
        {
            let mut targets: Vec<usize> =
                wave.iter().map(|&id| schedule.placement(id).device.0).collect();
            targets.sort_unstable();
            targets.dedup();
            let caches: Vec<&deep_registry::LayerCache> =
                devices.iter().map(|d| &d.cache).collect();
            match gossip.as_mut() {
                // Gossip discovery: advertise-and-spread at the
                // barrier, then assemble each target's mesh from its
                // own (bounded, possibly lagging) view.
                Some(plane) => {
                    plane.barrier_round(&caches);
                    targets.into_iter().map(|j| (j, plane.mesh_view(&caches, j))).collect()
                }
                // Omniscient snapshot catalog.
                None => targets.into_iter().map(|j| (j, peer_plane.snapshot(&caches, j))).collect(),
            }
        } else {
            HashMap::new()
        };
        // ---- Scripted chaos: fire every event whose time has come. -----
        // Events fire *after* the gossip round above, so an eviction
        // leaves the wave's snapshots advertising layers the holder no
        // longer has — the stale-advertisement incident sessions must
        // fail over from mid-pull.
        fire_scripted_events(
            timeline,
            next_event,
            *clock,
            devices,
            regional,
            &mut peer_snapshots,
            gossip.as_mut(),
            trace,
        )?;
        // Full-registry backend for a strategy handle. Reborrows the
        // regional registry immutably for the rest of the wave (chaos
        // events above hold the mutable borrow).
        let regional: &deep_registry::RegionalRegistry = regional;
        let backend = |choice: RegistryChoice| -> &dyn Registry {
            match choice.registry_id().0 {
                0 => hub,
                1 => regional,
                n => mirrors
                    .iter()
                    .find(|m| m.choice == choice)
                    .map(|m| &m.registry as &dyn Registry)
                    .unwrap_or_else(|| {
                        panic!("schedule names mesh id r{n}, testbed has no such registry")
                    }),
            }
        };
        // Completion events for the wave, popped in time order from a
        // heap preallocated to the wave width (no realloc churn when a
        // fleet deploys hundreds of microservices per wave).
        let mut completions: Engine<MicroserviceId> = Engine::with_capacity(wave.len());
        for &id in wave {
            let ms = app.microservice(id);
            let placement = schedule.placement(id);
            let entry =
                entries.get(&(app.name().to_string(), ms.name.clone())).ok_or_else(|| {
                    ExecError::UnknownImage {
                        application: app.name().to_string(),
                        microservice: ms.name.clone(),
                    }
                })?;
            let device = &mut devices[placement.device.0];
            let primary = placement.registry.registry_id();
            let registry: &dyn Registry = backend(placement.registry);
            let reference = match primary.0 {
                0 => entry.hub_reference(device.arch),
                _ => entry.regional_reference(device.arch),
            };
            // Each mesh source's contention resource is slowed by the
            // load *it* carries from earlier same-wave pulls: the
            // download route for registries, the serving device's uplink
            // for peer sources.
            // ...and, under a scripted degradation window, by the
            // window's residual-capacity factor (×1.0 outside windows —
            // bit-exact identity).
            let load = |id: RegistryId| {
                let contention = params.contention_factor(
                    *route_load.get(&route_key(id, placement.device)).unwrap_or(&0),
                );
                match fault_plan {
                    Some(plan) => contention * plan.slowdown_at(id, *clock),
                    None => contention,
                }
            };
            let pull_idx = *pull_counter;
            *pull_counter += 1;
            // Fault wrappers, declared before the mesh that borrows them:
            // the primary draws its per-pull death from the plan, every
            // other full registry rides along as a transient-only
            // survivor (the failover targets the model assumes alive),
            // and the wave's peer snapshot is wrapped the same way.
            let primary_faults: Option<PlannedFaults<'_, &dyn Registry>> = fault_plan
                .as_ref()
                .map(|plan| PlannedFaults::primary(registry, plan, primary, pull_idx).at(*clock));
            let standby_faults: Vec<(RegistryChoice, PlannedFaults<'_, &dyn Registry>)> =
                match fault_plan {
                    Some(plan) => registry_choices
                        .iter()
                        .filter(|&&c| c != placement.registry)
                        .map(|&c| {
                            // Clock-gated too: a scripted incident takes
                            // standby targets down as well.
                            let wrapped = PlannedFaults::survivor(
                                backend(c),
                                plan,
                                c.registry_id(),
                                pull_idx,
                            )
                            .at(*clock);
                            (c, wrapped)
                        })
                        .collect(),
                    None => Vec::new(),
                };
            let peer_entries: &[(RegistryId, PeerCacheSource)] =
                if cfg.peer_sharing { &peer_snapshots[&placement.device.0] } else { &[] };
            // Per-peer fault wrappers: per-holder sources draw their own
            // per-pull fatal churn (a dead holder fails over alone — the
            // rest of the peer plane and the registries keep serving)
            // and their own transient streams; the aggregate oracle's
            // anonymous source keeps the PR 4 survivor (transient-only)
            // semantics.
            let peer_faults: Vec<(RegistryId, PlannedFaults<'_, &PeerCacheSource>)> =
                match fault_plan {
                    Some(plan) => peer_entries
                        .iter()
                        .map(|(id, src)| {
                            let wrapped = match peer_holder(*id) {
                                Some(_) => PlannedFaults::holder(src, plan, *id, pull_idx),
                                None => PlannedFaults::survivor(src, plan, *id, pull_idx),
                            };
                            // Peer-uplink kills are scripted as dark
                            // windows on the peer's mesh id.
                            (*id, wrapped.at(*clock))
                        })
                        .collect(),
                    None => Vec::new(),
                };
            // The pull's mesh: the placement's registry as primary, the
            // peer sources when fleet sharing is on, plus (under fault
            // injection) every other full registry as a standby failover
            // target — planned only once the primary is dead, so the
            // fault-free mesh stays byte-identical.
            let mut mesh = RegistryMesh::new();
            let primary_params = source_params(placement.registry, placement.device, load(primary));
            match &primary_faults {
                Some(wrapped) => mesh.add_registry(primary, wrapped, primary_params),
                None => mesh.add_registry(primary, registry, primary_params),
            };
            if fault_plan.is_some() {
                for (id, wrapped) in &peer_faults {
                    let peer_params =
                        source_params(RegistryChoice::mesh(*id), placement.device, load(*id));
                    mesh.add_blob_source(*id, wrapped, peer_params);
                }
            } else {
                for (id, src) in peer_entries {
                    let peer_params =
                        source_params(RegistryChoice::mesh(*id), placement.device, load(*id));
                    mesh.add_blob_source(*id, src, peer_params);
                }
            }
            for (choice, wrapped) in &standby_faults {
                let id = choice.registry_id();
                mesh.add_standby_blobs(
                    id,
                    wrapped,
                    source_params(*choice, placement.device, load(id)),
                );
            }
            let mut session = PullSession::new(&mesh, primary).extract_bw(device.extract_bw);
            if fault_plan.is_some() {
                // Injected transients are retried under the model's
                // policy; with no injections attached retries change
                // nothing (first attempts succeed, zero backoff).
                session = session.with_retry(fault_model.retry);
            }
            trace.record(*clock, TraceKind::DeploymentStarted, placement.device, &ms.name);
            let outcome = session.pull(&reference, device.arch, &mut device.cache)?;
            // Charge each contention resource the bytes it actually
            // served: a split pull no longer over-penalizes its primary
            // route, and peer buckets land on the serving device's
            // uplink rather than the puller's download route.
            for bucket in &outcome.per_source {
                if bucket.downloaded >= params.contention_threshold {
                    *route_load.entry(route_key(bucket.source, placement.device)).or_insert(0) += 1;
                }
            }
            let t = jitter.apply(outcome.deployment_time());
            run.td[id.0] = t;
            run.downloaded_mb[id.0] = outcome.downloaded.as_megabytes();
            run.sources[id.0] = outcome.per_source;
            run.failed_sources[id.0] = outcome.failed_sources;
            run.backoff[id.0] = outcome.backoff_total;
            completions.schedule_at(t, id);
            // Instrument the deployment phase (deploy + static draw).
            if cfg.instruments {
                let power = device.power.deploy_watts + device.power.static_watts;
                instruments.observe(placement.device, power, t);
            }
        }
        // Deployment is concurrent: drain the completion events in time
        // order (each finish stamped when its pull actually ends), then
        // advance the clock by the wave's longest pull.
        let wave_start = *clock;
        let mut wave_span = Seconds::ZERO;
        while let Some((t, id)) = completions.next() {
            wave_span = wave_span.max(t);
            let ms = app.microservice(id);
            trace.record(
                wave_start + t,
                TraceKind::DeploymentFinished,
                schedule.placement(id).device,
                &ms.name,
            );
        }
        *clock += wave_span;

        // ---- Execution: stage members sequential (non-concurrent). -----
        for &id in wave {
            let ms = app.microservice(id);
            let placement = schedule.placement(id);
            let device = &devices[placement.device.0];

            // Tc: receive every incoming dataflow; co-located producers
            // transfer over loopback (free).
            let mut transfer = Seconds::ZERO;
            for flow in app.incoming(id) {
                let from_dev = schedule.placement(flow.from).device;
                let t = topology
                    .device_transfer_time(from_dev, placement.device, flow.size)
                    .expect("testbed topology covers all devices");
                transfer += t;
            }
            let transfer = jitter.apply(transfer);
            trace.record(*clock, TraceKind::TransferStarted, placement.device, &ms.name);
            *clock += transfer;
            trace.record(*clock, TraceKind::TransferFinished, placement.device, &ms.name);

            // Tp. Device parameters are scoped by application because the
            // case studies share microservice names.
            let scoped = format!("{}/{}", app.name(), ms.name);
            let proc = jitter.apply(device.processing_time(&scoped, ms.requirements.cpu));
            trace.record(*clock, TraceKind::ProcessingStarted, placement.device, &ms.name);
            *clock += proc;
            trace.record(*clock, TraceKind::ProcessingFinished, placement.device, &ms.name);

            run.tc[id.0] = transfer;
            run.tp[id.0] = proc;

            // Analytic energy over all three phases of this microservice.
            run.analytic[id.0] = device.energy(&scoped, run.td[id.0], transfer, proc);

            // Instrumented energy: meter transfer + processing here (the
            // deployment slice was metered during the wave); read the
            // instrument across a window covering this microservice's
            // share. For per-microservice attribution we open the window
            // now and charge deployment separately below.
            if cfg.instruments {
                let snap = instruments.begin(placement.device);
                instruments.observe(
                    placement.device,
                    device.power.transfer_watts + device.power.static_watts,
                    transfer,
                );
                instruments.observe(
                    placement.device,
                    device.process_watts(&scoped) + device.power.static_watts,
                    proc,
                );
                let exec_energy = instruments.energy_since(placement.device, &snap);
                // Deployment slice, analytic reconstruction of the metered
                // wave share: (deploy + static) × td.
                let deploy_energy =
                    (device.power.deploy_watts + device.power.static_watts) * run.td[id.0];
                run.metered[id.0] = exec_energy + deploy_energy;
            }
        }
        trace.record(
            *clock,
            TraceKind::StageBarrierReleased,
            DeviceId(0),
            &format!("stage-{wave_idx}"),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Placement;
    use crate::testbed::{DEVICE_MEDIUM, DEVICE_SMALL};
    use deep_dataflow::apps;

    fn all_hub_medium(app: &Application) -> Schedule {
        Schedule::uniform(app.len(), RegistryChoice::Hub, DEVICE_MEDIUM)
    }

    #[test]
    fn video_runs_end_to_end() {
        let mut tb = Testbed::paper();
        let app = apps::video_processing();
        let (report, trace) =
            execute(&mut tb, &app, &all_hub_medium(&app), &ExecutorConfig::default()).unwrap();
        assert_eq!(report.microservices.len(), 6);
        assert!(report.total_energy().as_f64() > 0.0);
        assert!(report.makespan.as_f64() > 0.0);
        // Every microservice was deployed and processed.
        assert_eq!(trace.of_kind(TraceKind::DeploymentFinished).count(), 6);
        assert_eq!(trace.of_kind(TraceKind::ProcessingFinished).count(), 6);
    }

    #[test]
    fn tp_matches_calibrated_medium_values() {
        let mut tb = Testbed::paper();
        let app = apps::text_processing();
        let (report, _) =
            execute(&mut tb, &app, &all_hub_medium(&app), &ExecutorConfig::default()).unwrap();
        // No jitter: Tp on medium = Table II midpoints exactly.
        let m = report.metrics("ha-train").unwrap();
        assert!((m.tp.as_f64() - 141.5).abs() < 1e-9, "{}", m.tp);
        let m = report.metrics("retrieve").unwrap();
        assert!((m.tp.as_f64() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_flows_are_free_cross_device_cost() {
        let mut tb = Testbed::paper();
        let app = apps::video_processing();
        // transcode on small, rest on medium: frame pays a LAN transfer.
        let mut placements =
            vec![Placement { registry: RegistryChoice::Hub, device: DEVICE_MEDIUM }; app.len()];
        placements[app.by_name("transcode").unwrap().0] =
            Placement { registry: RegistryChoice::Regional, device: DEVICE_SMALL };
        let schedule = Schedule::new(placements);
        let (report, _) = execute(&mut tb, &app, &schedule, &ExecutorConfig::default()).unwrap();
        // 300 MB at 100 MB/s LAN = 3 s.
        let frame = report.metrics("frame").unwrap();
        assert!((frame.tc.as_f64() - 3.0).abs() < 1e-9, "{}", frame.tc);
        // ha-train receives from co-located frame: free.
        let ha = report.metrics("ha-train").unwrap();
        assert_eq!(ha.tc, Seconds::ZERO);
    }

    #[test]
    fn sibling_dedup_shrinks_second_pull() {
        let mut tb = Testbed::paper();
        let app = apps::video_processing();
        let (report, _) =
            execute(&mut tb, &app, &all_hub_medium(&app), &ExecutorConfig::default()).unwrap();
        let ha = report.metrics("ha-train").unwrap();
        let la = report.metrics("la-train").unwrap();
        // ha-train (lower id) pulls the full 5.78 GB; la-train only its
        // unique 580 MB.
        assert!((ha.downloaded_mb - 5780.0).abs() < 1.0);
        assert!((la.downloaded_mb - 580.0).abs() < 1.0);
        assert!(la.td < ha.td);
    }

    #[test]
    fn contention_slows_same_route_wave_peers() {
        let mut tb = Testbed::paper();
        let app = apps::video_processing();
        // Staged: trains share a wave and the hub→medium route.
        let (staged, _) =
            execute(&mut tb, &app, &all_hub_medium(&app), &ExecutorConfig::default()).unwrap();
        tb.reset_caches();
        // Compare the same pull without contention by putting la-train on
        // the regional route.
        let mut placements =
            vec![Placement { registry: RegistryChoice::Hub, device: DEVICE_MEDIUM }; app.len()];
        placements[app.by_name("la-train").unwrap().0] =
            Placement { registry: RegistryChoice::Regional, device: DEVICE_MEDIUM };
        let (split, _) =
            execute(&mut tb, &app, &Schedule::new(placements), &ExecutorConfig::default()).unwrap();
        let contended = staged.metrics("la-train").unwrap().td;
        let hub_uncontended_dl = 580.0 / 13.0;
        let contended_dl = 580.0 * 1.1 / 13.0;
        assert!(
            (contended.as_f64() - (contended_dl + 580.0 / 12.6 + 25.0)).abs() < 1e-6,
            "contended td = {contended}, expected {}",
            contended_dl + 580.0 / 12.6 + 25.0
        );
        let _ = (split, hub_uncontended_dl);
    }

    #[test]
    fn instruments_agree_with_analytic_energy() {
        let mut tb = Testbed::paper();
        let app = apps::text_processing();
        let sched = Schedule::uniform(app.len(), RegistryChoice::Regional, DEVICE_SMALL);
        let (report, _) = execute(&mut tb, &app, &sched, &ExecutorConfig::default()).unwrap();
        for m in &report.microservices {
            let a = m.energy.as_f64();
            let i = m.metered_energy.as_f64();
            // The 1 Hz wall meter quantises: allow a few joules of drift.
            assert!(
                (a - i).abs() < a.max(10.0) * 0.05 + 10.0,
                "{}: analytic {a} vs metered {i}",
                m.name
            );
        }
    }

    #[test]
    fn jitter_produces_ranges_deterministically() {
        let app = apps::video_processing();
        let cfg = ExecutorConfig { seed: 42, jitter: 0.02, ..Default::default() };
        let mut tb1 = Testbed::paper();
        let (a, _) = execute(&mut tb1, &app, &all_hub_medium(&app), &cfg).unwrap();
        let mut tb2 = Testbed::paper();
        let (b, _) = execute(&mut tb2, &app, &all_hub_medium(&app), &cfg).unwrap();
        assert_eq!(a, b, "same seed, same run");
        let cfg2 = ExecutorConfig { seed: 43, ..cfg };
        let mut tb3 = Testbed::paper();
        let (c, _) = execute(&mut tb3, &app, &all_hub_medium(&app), &cfg2).unwrap();
        assert_ne!(a, c, "different seed, different run");
    }

    #[test]
    fn warm_cache_second_run_is_much_faster() {
        let mut tb = Testbed::paper();
        let app = apps::text_processing();
        let sched = all_hub_medium(&app);
        let cfg = ExecutorConfig::default();
        let (cold, _) = execute(&mut tb, &app, &sched, &cfg).unwrap();
        let (warm, _) = execute(&mut tb, &app, &sched, &cfg).unwrap();
        for (c, w) in cold.microservices.iter().zip(&warm.microservices) {
            assert!(w.td <= c.td, "{}", c.name);
        }
        let warm_dl: f64 = warm.microservices.iter().map(|m| m.downloaded_mb).sum();
        assert_eq!(warm_dl, 0.0, "everything cached");
    }

    #[test]
    fn schedule_mismatch_rejected() {
        let mut tb = Testbed::paper();
        let app = apps::video_processing();
        let bad = Schedule::uniform(3, RegistryChoice::Hub, DEVICE_MEDIUM);
        assert!(matches!(
            execute(&mut tb, &app, &bad, &ExecutorConfig::default()),
            Err(ExecError::ScheduleMismatch { .. })
        ));
    }

    #[test]
    fn peer_sharing_splits_pulls_across_the_fleet() {
        // The continuum testbed has two amd64 devices (medium, cloud).
        // After the medium device deploys the video app, a cloud
        // deployment with peer sharing fetches the already-fleet-resident
        // layers from the medium peer's link (80 MB/s, 1 s overhead)
        // instead of the hub route (60 MB/s) — strictly faster, and
        // attributed to the medium device in the per-holder breakdown.
        let app = apps::video_processing();
        let all_hub = |device| Schedule::uniform(app.len(), RegistryChoice::Hub, device);
        let run = |peer_sharing: bool| {
            let mut tb = Testbed::continuum();
            let cfg = ExecutorConfig::default();
            execute(&mut tb, &app, &all_hub(DEVICE_MEDIUM), &cfg).unwrap();
            let cloud_cfg = ExecutorConfig { peer_sharing, ..cfg };
            let (report, _) =
                execute(&mut tb, &app, &all_hub(crate::testbed::DEVICE_CLOUD), &cloud_cfg).unwrap();
            report
        };
        let without = run(false);
        let with = run(true);
        let by_peer = with.downloaded_by_peer();
        assert_eq!(by_peer.len(), 1, "exactly one holder served: {by_peer:?}");
        assert_eq!(by_peer[0].0, DEVICE_MEDIUM, "the warm medium device is the holder");
        assert!(by_peer[0].1 > 1_000.0, "fleet-resident layers served by the peer: {by_peer:?}");
        assert_eq!(with.peer_downloaded_mb(), by_peer[0].1);
        // The raw breakdown names the holder's own mesh id.
        assert!(with
            .downloaded_by_source()
            .iter()
            .any(|(id, _)| *id == crate::testbed::peer_source_id(DEVICE_MEDIUM)));
        assert!(without.downloaded_by_peer().is_empty(), "no peer source without the flag");
        let td_with: f64 = with.microservices.iter().map(|m| m.td.as_f64()).sum();
        let td_without: f64 = without.microservices.iter().map(|m| m.td.as_f64()).sum();
        assert!(td_with < td_without, "peer-served pulls are faster: {td_with} vs {td_without}");
        // Bytes moved are identical — only the source changed.
        let dl = |r: &RunReport| -> f64 { r.microservices.iter().map(|m| m.downloaded_mb).sum() };
        assert!((dl(&with) - dl(&without)).abs() < 1e-6);
    }

    #[test]
    fn same_wave_pulls_to_different_devices_contend_on_the_holders_uplink() {
        // One warm holder (cloud), two cold devices pulling in the same
        // wave: under the per-pair plane both pulls ride the cloud's
        // uplink, so the second one (in execution order) sees the uplink
        // already loaded and slows by the contention factor. Under the
        // aggregate oracle the pulls contend on separate
        // (REGISTRY_PEER, puller) routes — pulling onto different
        // devices hides the shared NIC entirely, the blindness this PR
        // removes.
        let app = apps::video_processing();
        let run = |aggregate: bool| {
            let mut tb = Testbed::continuum();
            if aggregate {
                tb.peer_plane = crate::testbed::PeerPlane::Aggregate;
            }
            // Warm the cloud holder with everything — both platforms, a
            // fleet cache able to serve the amd64 medium AND the arm64
            // small device (layer digests are arch-specific).
            let warm =
                Schedule::uniform(app.len(), RegistryChoice::Hub, crate::testbed::DEVICE_CLOUD);
            execute(&mut tb, &app, &warm, &ExecutorConfig::default()).unwrap();
            let mut cache = tb.device(crate::testbed::DEVICE_CLOUD).cache.clone();
            for id in app.ids() {
                let ms = app.microservice(id);
                let entry = tb.entry(app.name(), &ms.name).unwrap().clone();
                let reference = entry.hub_reference(Platform::Arm64);
                tb.pull_mesh(RegistryChoice::Hub, crate::testbed::DEVICE_CLOUD, 1.0)
                    .session(RegistryChoice::Hub.registry_id())
                    .pull(&reference, Platform::Arm64, &mut cache)
                    .unwrap();
            }
            tb.device_mut(crate::testbed::DEVICE_CLOUD).cache = cache;
            // ha-train and la-train share the training wave but land on
            // different devices; both images are served entirely by the
            // cloud holder, so both pulls load the same uplink.
            let mut placements =
                vec![Placement { registry: RegistryChoice::Hub, device: DEVICE_MEDIUM }; app.len()];
            placements[app.by_name("la-train").unwrap().0] =
                Placement { registry: RegistryChoice::Hub, device: DEVICE_SMALL };
            let cfg = ExecutorConfig { peer_sharing: true, ..Default::default() };
            execute(&mut tb, &app, &Schedule::new(placements), &cfg).unwrap().0
        };
        let per_pair = run(false);
        let aggregate = run(true);
        // ha-train (lower id) pulls first: uplink unloaded, identical td
        // in both models. la-train on the small device pulls its full
        // 5.78 GB (nothing cached there) over the same uplink, which
        // already carries ha-train's bytes: slowed by 1 + alpha under
        // the per-pair plane only.
        let ha = |r: &RunReport| r.metrics("ha-train").unwrap().td.as_f64();
        let la = |r: &RunReport| r.metrics("la-train").unwrap().td.as_f64();
        assert!((ha(&per_pair) - ha(&aggregate)).abs() < 1e-12, "first pull sees no load");
        let slowed = 5780.0 * 1.1 / 80.0 + 5780.0 / 11.0 + 26.0;
        let blind = 5780.0 / 80.0 + 5780.0 / 11.0 + 26.0;
        assert!(
            (la(&per_pair) - slowed).abs() < 1e-9,
            "uplink-contended la-train: {} vs {slowed}",
            la(&per_pair)
        );
        assert!(
            (la(&aggregate) - blind).abs() < 1e-9,
            "aggregate-blind la-train: {} vs {blind}",
            la(&aggregate)
        );
    }

    #[test]
    fn cache_pressure_mid_soak_triggers_mid_pull_failover_not_a_panic() {
        // Warm the medium device, then redeploy onto the cloud with peer
        // sharing while a scripted cache-pressure event wipes the medium
        // cache *after* the gossip round: the wave's pulls planned onto
        // the now-stale peer advertisement must fail over mid-pull to
        // the registry and still land every layer.
        let app = apps::video_processing();
        let all_hub = |device| Schedule::uniform(app.len(), RegistryChoice::Hub, device);
        let run = |events: &[ChaosEvent]| {
            let mut tb = Testbed::continuum();
            execute(&mut tb, &app, &all_hub(DEVICE_MEDIUM), &ExecutorConfig::default()).unwrap();
            let cfg = ExecutorConfig { peer_sharing: true, ..Default::default() };
            let out = execute_with_events(
                &mut tb,
                &app,
                &all_hub(crate::testbed::DEVICE_CLOUD),
                &cfg,
                events,
            )
            .unwrap();
            (out, tb)
        };
        // Baseline: the peer serves the fleet-resident training stack;
        // its trace locates the training wave's start on the clock.
        let ((baseline, trace), _) = run(&[]);
        assert!(!baseline.downloaded_by_peer().is_empty(), "baseline rides the peer");
        let train_wave = trace
            .of_kind(TraceKind::DeploymentStarted)
            .find(|e| e.label == "ha-train")
            .expect("training wave traced")
            .at;
        // Chaos: wipe the holder at that exact barrier — after the
        // gossip round, so the wave pulls against a stale advertisement.
        let events =
            [ChaosEvent::cache_pressure(train_wave, DEVICE_MEDIUM, deep_netsim::DataSize::ZERO)];
        let ((report, chaos_trace), tb) = run(&events);
        let peer_id = crate::testbed::peer_source_id(DEVICE_MEDIUM);
        assert!(
            report.microservices.iter().any(|m| m.failed_sources.contains(&peer_id)),
            "some pull hit the stale advertisement and failed over"
        );
        // The training wave itself got nothing from the evicted peer
        // (waves before the event rode it legitimately).
        let ha = report.metrics("ha-train").unwrap();
        assert!(ha.failed_sources.contains(&peer_id), "{:?}", ha.failed_sources);
        assert!(ha.sources.iter().all(|b| b.source != peer_id), "{:?}", ha.sources);
        let dl = |r: &RunReport| -> f64 { r.microservices.iter().map(|m| m.downloaded_mb).sum() };
        assert!((dl(&report) - dl(&baseline)).abs() < 1e-6, "every layer still landed");
        let td = |r: &RunReport| -> f64 { r.microservices.iter().map(|m| m.td.as_f64()).sum() };
        assert!(td(&report) > td(&baseline), "failover cost is visible in Td");
        assert_eq!(chaos_trace.of_kind(TraceKind::ChaosEventFired).count(), 1);
        assert!(tb.device(DEVICE_MEDIUM).cache.is_empty(), "the eviction really happened");
    }

    #[test]
    fn registry_gc_event_sweeps_orphans_mid_run() {
        // An operator un-publishes vp-transcode mid-soak, then the
        // scripted GC pass sweeps its orphaned layers — while an
        // unrelated deployment keeps running against the same registry.
        let mut tb = Testbed::paper();
        let app = apps::text_processing();
        let events = [
            ChaosEvent::delete_tag(Seconds::ZERO, "aau/vp-transcode", "amd64"),
            ChaosEvent::delete_tag(Seconds::ZERO, "aau/vp-transcode", "arm64"),
            ChaosEvent::registry_gc(Seconds::ZERO),
        ];
        let (report, trace) = execute_with_events(
            &mut tb,
            &app,
            &all_hub_medium(&app),
            &ExecutorConfig::default(),
            &events,
        )
        .unwrap();
        assert_eq!(report.microservices.len(), app.len());
        let gc = trace
            .of_kind(TraceKind::ChaosEventFired)
            .find(|e| e.label.starts_with("registry-gc"))
            .expect("gc event traced");
        assert!(gc.label.contains("swept 6"), "vp-transcode's six unique layers: {}", gc.label);
    }

    #[test]
    fn dark_window_reroutes_wave_pulls_to_survivors() {
        // The regional registry is scripted dark across the whole run:
        // every regional-primary pull fails over to the hub standby.
        let mut tb = Testbed::paper();
        tb.fault_model = tb.fault_model.clone().with_window(deep_registry::OutageWindow::dark(
            RegistryChoice::Regional.registry_id(),
            Seconds::ZERO,
            Seconds::new(1e9),
        ));
        let app = apps::text_processing();
        let sched = Schedule::uniform(app.len(), RegistryChoice::Regional, DEVICE_MEDIUM);
        let cfg = ExecutorConfig { fault_injection: true, ..Default::default() };
        let (report, _) = execute(&mut tb, &app, &sched, &cfg).unwrap();
        for m in &report.microservices {
            assert_eq!(
                m.failed_sources,
                vec![RegistryChoice::Regional.registry_id()],
                "{} failed over",
                m.name
            );
            assert!(m.sources.iter().all(|b| b.source == RegistryChoice::Hub.registry_id()));
        }
    }

    #[test]
    fn window_clears_on_the_executor_clock() {
        // A short dark window covers only the first deployment wave: the
        // later waves' regional pulls go through untouched.
        let app = apps::text_processing();
        let sched = |app: &Application| {
            Schedule::uniform(app.len(), RegistryChoice::Regional, DEVICE_MEDIUM)
        };
        let cfg = ExecutorConfig { fault_injection: true, ..Default::default() };
        let run = |duration: f64| {
            let mut tb = Testbed::paper();
            tb.fault_model = tb.fault_model.clone().with_window(deep_registry::OutageWindow::dark(
                RegistryChoice::Regional.registry_id(),
                Seconds::ZERO,
                Seconds::new(duration),
            ));
            execute(&mut tb, &app, &sched(&app), &cfg).unwrap().0
        };
        let brief = run(1.0);
        let failed: Vec<&str> = brief
            .microservices
            .iter()
            .filter(|m| !m.failed_sources.is_empty())
            .map(|m| m.name.as_str())
            .collect();
        assert!(!failed.is_empty(), "the first wave hits the window");
        assert!(
            failed.len() < brief.microservices.len(),
            "later waves are past the window: {failed:?}"
        );
        // A window that opens after the run ends changes nothing.
        let mut baseline_tb = Testbed::paper();
        let (baseline, _) = execute(&mut baseline_tb, &app, &sched(&app), &cfg).unwrap();
        let late = run(0.0); // zero-duration: never active
        assert_eq!(baseline, late, "inactive windows are byte-identical");
    }

    #[test]
    fn online_executor_stepwise_matches_execute_byte_for_byte() {
        // Driving one job's waves by hand through the session API is the
        // same computation `execute` runs — reports, traces, and final
        // clock all agree exactly.
        let app = apps::video_processing();
        let sched = all_hub_medium(&app);
        let cfg = ExecutorConfig { seed: 7, jitter: 0.01, ..Default::default() };
        let mut tb1 = Testbed::paper();
        let (reference, ref_trace) = execute(&mut tb1, &app, &sched, &cfg).unwrap();
        let mut tb2 = Testbed::paper();
        validate_schedule(&tb2, &app, &sched).unwrap();
        let mut exec = OnlineExecutor::new(&tb2, &cfg, &[]);
        let mut run = exec.begin_job(&app);
        for (i, wave) in plan_waves(&app, true).iter().enumerate() {
            exec.run_wave(&mut tb2, &app, &sched, wave, i, &mut run).unwrap();
        }
        assert_eq!(exec.clock(), reference.makespan);
        assert_eq!(exec.pulls(), app.len() as u64);
        let report = run.into_report(&app, &sched, exec.clock());
        assert_eq!(reference, report);
        let trace = exec.into_trace();
        assert_eq!(
            ref_trace.of_kind(TraceKind::DeploymentFinished).count(),
            trace.of_kind(TraceKind::DeploymentFinished).count()
        );
    }

    #[test]
    fn idle_advance_shifts_the_clock_but_not_job_metrics() {
        // A job admitted after an idle gap reports the same relative
        // spans it would report at t = 0: JobRun measures makespan from
        // its own start, and nothing in a window-free run reads the
        // absolute clock.
        let app = apps::text_processing();
        let sched = all_hub_medium(&app);
        let cfg = ExecutorConfig::default();
        let mut tb1 = Testbed::paper();
        let (reference, _) = execute(&mut tb1, &app, &sched, &cfg).unwrap();
        let mut tb2 = Testbed::paper();
        let mut exec = OnlineExecutor::new(&tb2, &cfg, &[]);
        exec.advance_to(Seconds::new(500.0));
        assert_eq!(exec.clock(), Seconds::new(500.0));
        exec.advance_to(Seconds::new(10.0));
        assert_eq!(exec.clock(), Seconds::new(500.0), "the clock never runs backwards");
        let mut run = exec.begin_job(&app);
        assert_eq!(run.started(), Seconds::new(500.0));
        for (i, wave) in plan_waves(&app, true).iter().enumerate() {
            exec.run_wave(&mut tb2, &app, &sched, wave, i, &mut run).unwrap();
        }
        let report = run.into_report(&app, &sched, exec.clock());
        assert_eq!(reference, report);
    }

    #[test]
    fn fault_plan_is_snapshotted_at_session_start() {
        // Stripping the scripted window from the testbed's model *after*
        // the session opened changes nothing about injection: the plan
        // was sampled at `OnlineExecutor::new`. This is the mechanism the
        // arrival plane's outage inference relies on — the scheduler's
        // view of `fault_model` can be edited mid-soak without touching
        // the incident being injected.
        let app = apps::text_processing();
        let sched = Schedule::uniform(app.len(), RegistryChoice::Regional, DEVICE_MEDIUM);
        let cfg = ExecutorConfig { fault_injection: true, ..Default::default() };
        let window = deep_registry::OutageWindow::dark(
            RegistryChoice::Regional.registry_id(),
            Seconds::ZERO,
            Seconds::new(1e9),
        );
        let mut reference_tb = Testbed::paper();
        reference_tb.fault_model = reference_tb.fault_model.clone().with_window(window);
        let (reference, _) = execute(&mut reference_tb, &app, &sched, &cfg).unwrap();
        let mut tb = Testbed::paper();
        tb.fault_model = tb.fault_model.clone().with_window(window);
        let mut exec = OnlineExecutor::new(&tb, &cfg, &[]);
        tb.fault_model = tb.fault_model.without_windows();
        let mut run = exec.begin_job(&app);
        for (i, wave) in plan_waves(&app, true).iter().enumerate() {
            exec.run_wave(&mut tb, &app, &sched, wave, i, &mut run).unwrap();
        }
        let report = run.into_report(&app, &sched, exec.clock());
        assert_eq!(reference, report, "injection rides the session's snapshot, not the model");
        assert!(report.microservices.iter().all(|m| !m.failed_sources.is_empty()));
    }

    #[test]
    fn unstaged_deployment_is_single_wave() {
        let mut tb = Testbed::paper();
        let app = apps::text_processing();
        let cfg = ExecutorConfig { staged_deployment: false, ..Default::default() };
        let (_, trace) = execute(&mut tb, &app, &all_hub_medium(&app), &cfg).unwrap();
        assert_eq!(trace.of_kind(TraceKind::StageBarrierReleased).count(), 1);
    }
}
