//! A minimal discrete-event simulation engine.
//!
//! Time-ordered event heap with deterministic FIFO tie-breaking (events
//! scheduled at equal times pop in scheduling order). The executor uses it
//! for deployment waves; benches stress it directly.

use deep_netsim::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then lowest
        // sequence number first for equal times.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event engine over event payloads `E`.
pub struct Engine<E> {
    heap: BinaryHeap<Entry<E>>,
    now: Seconds,
    seq: u64,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine { heap: BinaryHeap::new(), now: Seconds::ZERO, seq: 0, processed: 0 }
    }

    /// An engine whose event heap is preallocated for `capacity` pending
    /// events — large fleets schedule whole deployment waves up front, and
    /// a right-sized heap avoids the realloc/copy churn of growing through
    /// every power of two.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            heap: BinaryHeap::with_capacity(capacity),
            now: Seconds::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Pending-event capacity currently reserved.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulated time.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at` (must not precede the clock).
    pub fn schedule_at(&mut self, at: Seconds, event: E) {
        assert!(
            at.as_f64() >= self.now.as_f64(),
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.heap.push(Entry { at: at.as_f64(), seq: self.seq, event });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: Seconds, event: E) {
        assert!(delay.as_f64() >= 0.0, "negative delay");
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Seconds, E)> {
        let entry = self.heap.pop()?;
        self.now = Seconds::new(entry.at);
        self.processed += 1;
        Some((self.now, entry.event))
    }

    /// Drain all events through a handler (the handler may schedule more).
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, Seconds, E)) {
        while let Some((t, e)) = self.next() {
            handler(self, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_preallocates_and_behaves_identically() {
        let mut eng = Engine::with_capacity(64);
        assert!(eng.capacity() >= 64);
        for i in 0..64 {
            eng.schedule_at(Seconds::new(64.0 - i as f64), i);
        }
        assert!(eng.capacity() >= 64, "no growth while within capacity");
        let popped: Vec<i32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(Seconds::new(3.0), "c");
        eng.schedule_at(Seconds::new(1.0), "a");
        eng.schedule_at(Seconds::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng = Engine::new();
        for label in ["first", "second", "third"] {
            eng.schedule_at(Seconds::new(5.0), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut eng = Engine::new();
        eng.schedule_at(Seconds::new(2.5), ());
        assert_eq!(eng.now(), Seconds::ZERO);
        eng.next();
        assert_eq!(eng.now(), Seconds::new(2.5));
        assert_eq!(eng.processed(), 1);
    }

    #[test]
    fn handler_can_cascade_events() {
        let mut eng = Engine::new();
        eng.schedule_at(Seconds::new(1.0), 3u32);
        let mut seen = Vec::new();
        eng.run(|eng, t, n| {
            seen.push((t.as_f64(), n));
            if n > 1 {
                eng.schedule_in(Seconds::new(1.0), n - 1);
            }
        });
        assert_eq!(seen, vec![(1.0, 3), (2.0, 2), (3.0, 1)]);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut eng = Engine::new();
        eng.schedule_at(Seconds::new(10.0), "base");
        eng.next();
        eng.schedule_in(Seconds::new(5.0), "later");
        let (t, _) = eng.next().unwrap();
        assert_eq!(t, Seconds::new(15.0));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_rejected() {
        let mut eng = Engine::new();
        eng.schedule_at(Seconds::new(5.0), ());
        eng.next();
        eng.schedule_at(Seconds::new(1.0), ());
    }
}
