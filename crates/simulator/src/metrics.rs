//! Per-microservice measurements and run reports.

use crate::schedule::Placement;
use deep_energy::Joules;
use deep_netsim::{RegistryId, Seconds};
use deep_registry::SourcePull;
use serde::{Deserialize, Serialize};

/// What the testbed measured for one microservice — one Table II row's
/// worth of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroserviceMetrics {
    pub name: String,
    pub placement: Placement,
    /// Deployment time `Td` (pull + extract + overhead).
    pub td: Seconds,
    /// Dataflow transmission time `Tc`.
    pub tc: Seconds,
    /// Processing time `Tp`.
    pub tp: Seconds,
    /// Bytes actually downloaded (after cache dedup).
    pub downloaded_mb: f64,
    /// Which mesh sources served the pull (bytes/layers per source, in
    /// order of first use; empty when everything was cached).
    pub sources: Vec<SourcePull>,
    /// Sources that died fatally during the pull (failover re-planned
    /// the remaining layers onto survivors). Empty on the happy path.
    pub failed_sources: Vec<RegistryId>,
    /// Retry backoff charged into `td` by injected transient failures
    /// (zero without fault injection).
    pub backoff_total: Seconds,
    /// Analytic energy from the device power model.
    pub energy: Joules,
    /// Energy as read by the device's instrument (RAPL or wall meter).
    pub metered_energy: Joules,
}

impl MicroserviceMetrics {
    /// Completion time `CT = Td + Tc + Tp`.
    pub fn ct(&self) -> Seconds {
        self.td + self.tc + self.tp
    }
}

/// A full application run under one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    pub application: String,
    pub microservices: Vec<MicroserviceMetrics>,
    /// Simulated wall-clock length of the run.
    pub makespan: Seconds,
}

impl RunReport {
    /// `EC_total(A, R, D)`: sum of per-microservice energies.
    pub fn total_energy(&self) -> Joules {
        self.microservices.iter().map(|m| m.energy).sum()
    }

    /// Total energy as seen by the instruments.
    pub fn total_metered_energy(&self) -> Joules {
        self.microservices.iter().map(|m| m.metered_energy).sum()
    }

    /// Metrics for one microservice by name.
    pub fn metrics(&self, name: &str) -> Option<&MicroserviceMetrics> {
        self.microservices.iter().find(|m| m.name == name)
    }

    /// The microservice consuming the most energy (Figure 3a's headline).
    pub fn max_energy_microservice(&self) -> Option<&MicroserviceMetrics> {
        self.microservices
            .iter()
            .max_by(|a, b| a.energy.partial_cmp(&b.energy).expect("energy is never NaN"))
    }

    /// Total megabytes fetched per mesh source across the run, sorted by
    /// source id — where the run's bytes actually came from.
    pub fn downloaded_by_source(&self) -> Vec<(RegistryId, f64)> {
        let mut totals: std::collections::BTreeMap<RegistryId, f64> =
            std::collections::BTreeMap::new();
        for m in &self.microservices {
            for s in &m.sources {
                *totals.entry(s.source).or_insert(0.0) += s.downloaded.as_megabytes();
            }
        }
        totals.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RegistryChoice;
    use deep_netsim::DeviceId;

    fn metric(name: &str, td: f64, tc: f64, tp: f64, e: f64) -> MicroserviceMetrics {
        MicroserviceMetrics {
            name: name.to_string(),
            placement: Placement { registry: RegistryChoice::Hub, device: DeviceId(0) },
            td: Seconds::new(td),
            tc: Seconds::new(tc),
            tp: Seconds::new(tp),
            downloaded_mb: 0.0,
            sources: Vec::new(),
            failed_sources: Vec::new(),
            backoff_total: Seconds::ZERO,
            energy: Joules::new(e),
            metered_energy: Joules::new(e),
        }
    }

    #[test]
    fn ct_is_phase_sum() {
        let m = metric("x", 10.0, 2.0, 30.0, 100.0);
        assert!((m.ct().as_f64() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn report_totals_and_lookup() {
        let r = RunReport {
            application: "demo".into(),
            microservices: vec![metric("a", 1.0, 0.0, 1.0, 10.0), metric("b", 1.0, 0.0, 1.0, 30.0)],
            makespan: Seconds::new(4.0),
        };
        assert!((r.total_energy().as_f64() - 40.0).abs() < 1e-12);
        assert!(r.metrics("a").is_some());
        assert!(r.metrics("zzz").is_none());
        assert_eq!(r.max_energy_microservice().unwrap().name, "b");
    }
}
