//! Per-microservice measurements and run reports.

use crate::schedule::Placement;
use crate::testbed::{peer_holder, REGISTRY_PEER};
use deep_energy::Joules;
use deep_netsim::{DeviceId, RegistryId, Seconds};
use deep_registry::SourcePull;
use serde::{Deserialize, Serialize};

/// What the testbed measured for one microservice — one Table II row's
/// worth of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroserviceMetrics {
    pub name: String,
    pub placement: Placement,
    /// Deployment time `Td` (pull + extract + overhead).
    pub td: Seconds,
    /// Dataflow transmission time `Tc`.
    pub tc: Seconds,
    /// Processing time `Tp`.
    pub tp: Seconds,
    /// Bytes actually downloaded (after cache dedup).
    pub downloaded_mb: f64,
    /// Which mesh sources served the pull (bytes/layers per source, in
    /// order of first use; empty when everything was cached).
    pub sources: Vec<SourcePull>,
    /// Sources that died fatally during the pull (failover re-planned
    /// the remaining layers onto survivors). Empty on the happy path.
    pub failed_sources: Vec<RegistryId>,
    /// Retry backoff charged into `td` by injected transient failures
    /// (zero without fault injection).
    pub backoff_total: Seconds,
    /// Analytic energy from the device power model.
    pub energy: Joules,
    /// Energy as read by the device's instrument (RAPL or wall meter).
    pub metered_energy: Joules,
}

impl MicroserviceMetrics {
    /// Completion time `CT = Td + Tc + Tp`.
    pub fn ct(&self) -> Seconds {
        self.td + self.tc + self.tp
    }

    /// Megabytes of this pull served by each peer device, in order of
    /// first use — the per-holder breakdown of the topology-backed peer
    /// plane (empty when nothing rode a peer link, or under the
    /// anonymous aggregate plane).
    pub fn peer_downloads(&self) -> Vec<(DeviceId, f64)> {
        self.sources
            .iter()
            .filter_map(|s| peer_holder(s.source).map(|h| (h, s.downloaded.as_megabytes())))
            .collect()
    }

    /// Megabytes of this pull that rode the peer plane, under either
    /// plane (per-holder sources or the aggregate [`REGISTRY_PEER`]).
    pub fn peer_downloaded_mb(&self) -> f64 {
        self.sources
            .iter()
            .filter(|s| s.source == REGISTRY_PEER || peer_holder(s.source).is_some())
            .map(|s| s.downloaded.as_megabytes())
            .sum()
    }
}

/// A full application run under one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    pub application: String,
    pub microservices: Vec<MicroserviceMetrics>,
    /// Simulated wall-clock length of the run.
    pub makespan: Seconds,
}

impl RunReport {
    /// `EC_total(A, R, D)`: sum of per-microservice energies.
    pub fn total_energy(&self) -> Joules {
        self.microservices.iter().map(|m| m.energy).sum()
    }

    /// Total energy as seen by the instruments.
    pub fn total_metered_energy(&self) -> Joules {
        self.microservices.iter().map(|m| m.metered_energy).sum()
    }

    /// Metrics for one microservice by name.
    pub fn metrics(&self, name: &str) -> Option<&MicroserviceMetrics> {
        self.microservices.iter().find(|m| m.name == name)
    }

    /// The microservice consuming the most energy (Figure 3a's headline).
    pub fn max_energy_microservice(&self) -> Option<&MicroserviceMetrics> {
        self.microservices
            .iter()
            .max_by(|a, b| a.energy.partial_cmp(&b.energy).expect("energy is never NaN"))
    }

    /// Total megabytes fetched per mesh source across the run, sorted by
    /// source id — where the run's bytes actually came from.
    pub fn downloaded_by_source(&self) -> Vec<(RegistryId, f64)> {
        let mut totals: std::collections::BTreeMap<RegistryId, f64> =
            std::collections::BTreeMap::new();
        for m in &self.microservices {
            for s in &m.sources {
                *totals.entry(s.source).or_insert(0.0) += s.downloaded.as_megabytes();
            }
        }
        totals.into_iter().collect()
    }

    /// Total megabytes each *peer device* served across the run, sorted
    /// by device — which holders carried the fleet's peer traffic.
    pub fn downloaded_by_peer(&self) -> Vec<(DeviceId, f64)> {
        let mut totals: std::collections::BTreeMap<DeviceId, f64> =
            std::collections::BTreeMap::new();
        for m in &self.microservices {
            for (holder, mb) in m.peer_downloads() {
                *totals.entry(holder).or_insert(0.0) += mb;
            }
        }
        totals.into_iter().collect()
    }

    /// Total megabytes the peer plane served across the run, under
    /// either plane representation.
    pub fn peer_downloaded_mb(&self) -> f64 {
        self.microservices.iter().map(|m| m.peer_downloaded_mb()).sum()
    }

    /// The report with every per-holder peer bucket folded under the
    /// aggregate [`REGISTRY_PEER`] id (merged at the position of first
    /// peer use; dead per-holder sources fold likewise) — the scalar
    /// view of a per-pair run. The peer-plane parity regression uses
    /// this to compare the topology-backed plane against the retained
    /// [`crate::PeerPlane::Aggregate`] oracle byte for byte: holder ids
    /// are labels, every measured quantity (times, bytes, energies,
    /// bucket order) must match bitwise.
    pub fn with_aggregated_peer_sources(&self) -> RunReport {
        let mut out = self.clone();
        for m in &mut out.microservices {
            let mut folded: Vec<SourcePull> = Vec::with_capacity(m.sources.len());
            for s in &m.sources {
                if peer_holder(s.source).is_none() {
                    folded.push(s.clone());
                    continue;
                }
                match folded.iter_mut().find(|f| f.source == REGISTRY_PEER) {
                    Some(f) => {
                        f.downloaded += s.downloaded;
                        f.layers += s.layers;
                    }
                    None => folded.push(SourcePull {
                        source: REGISTRY_PEER,
                        downloaded: s.downloaded,
                        layers: s.layers,
                    }),
                }
            }
            m.sources = folded;
            let mut failed: Vec<RegistryId> = Vec::with_capacity(m.failed_sources.len());
            for &f in &m.failed_sources {
                let id = if peer_holder(f).is_some() { REGISTRY_PEER } else { f };
                if !failed.contains(&id) {
                    failed.push(id);
                }
            }
            m.failed_sources = failed;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RegistryChoice;
    use deep_netsim::DeviceId;

    fn metric(name: &str, td: f64, tc: f64, tp: f64, e: f64) -> MicroserviceMetrics {
        MicroserviceMetrics {
            name: name.to_string(),
            placement: Placement { registry: RegistryChoice::Hub, device: DeviceId(0) },
            td: Seconds::new(td),
            tc: Seconds::new(tc),
            tp: Seconds::new(tp),
            downloaded_mb: 0.0,
            sources: Vec::new(),
            failed_sources: Vec::new(),
            backoff_total: Seconds::ZERO,
            energy: Joules::new(e),
            metered_energy: Joules::new(e),
        }
    }

    #[test]
    fn ct_is_phase_sum() {
        let m = metric("x", 10.0, 2.0, 30.0, 100.0);
        assert!((m.ct().as_f64() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn report_totals_and_lookup() {
        let r = RunReport {
            application: "demo".into(),
            microservices: vec![metric("a", 1.0, 0.0, 1.0, 10.0), metric("b", 1.0, 0.0, 1.0, 30.0)],
            makespan: Seconds::new(4.0),
        };
        assert!((r.total_energy().as_f64() - 40.0).abs() < 1e-12);
        assert!(r.metrics("a").is_some());
        assert!(r.metrics("zzz").is_none());
        assert_eq!(r.max_energy_microservice().unwrap().name, "b");
    }
}
