//! The two-device, two-registry testbed of Section IV.
//!
//! Link parameters are calibrated so simulated deployment times land in the
//! neighbourhood of Table II's residual `Td ≈ CT − Tp` (see deep-core's
//! calibration module and EXPERIMENTS.md for the paper-vs-measured
//! accounting):
//!
//! * Effective docker-pull rates are far below nominal NIC speed — Docker
//!   Hub throttles per-client sessions and layer extraction is
//!   CPU/disk-bound. The hub pays a larger fixed negotiation overhead but
//!   sustains a higher stream rate to the well-connected medium device; the
//!   regional registry wins on overhead and on the small device (LAN
//!   locality, no throttling).
//! * The small device's SD-card extraction is slower than the medium's
//!   NVMe.

use crate::device::SimDevice;
use crate::schedule::RegistryChoice;
use deep_dataflow::{Application, Mips};
use deep_energy::{DevicePowerModel, Watts};
use deep_netsim::{Bandwidth, DataSize, DeviceId, RegistryId, Seconds, Topology, TopologyBuilder};
use deep_registry::{
    CatalogEntry, FaultModel, HubRegistry, Platform, Reference, RegionalRegistry, Registry,
    RegistryMesh, SourceParams,
};
use std::collections::HashMap;

/// Device id of the Intel i7-7700 "medium" device.
pub const DEVICE_MEDIUM: DeviceId = DeviceId(0);
/// Device id of the Raspberry Pi 4 "small" device.
pub const DEVICE_SMALL: DeviceId = DeviceId(1);
/// Device id of the cloud server in the continuum testbed
/// ([`Testbed::continuum`] only — the paper testbed has two devices).
pub const DEVICE_CLOUD: DeviceId = DeviceId(2);

/// Mesh id under which the executor registers the peer-cache blob source
/// (ids 0 and 1 are the paper registries).
pub const REGISTRY_PEER: RegistryId = RegistryId(2);

/// First mesh id handed out to additional regional registries
/// ([`Testbed::add_regional_mirror`]); the k-th mirror gets id `3 + k`.
pub const REGISTRY_MIRROR_BASE: RegistryId = RegistryId(3);

/// Calibrated link and overhead parameters.
#[derive(Debug, Clone, Copy)]
pub struct TestbedParams {
    /// Effective pull bandwidth hub → medium (MB/s).
    pub hub_to_medium: Bandwidth,
    /// Effective pull bandwidth hub → small.
    pub hub_to_small: Bandwidth,
    /// Effective pull bandwidth regional → medium.
    pub regional_to_medium: Bandwidth,
    /// Effective pull bandwidth regional → small.
    pub regional_to_small: Bandwidth,
    /// Device-to-device LAN bandwidth (dataflow transfers).
    pub lan: Bandwidth,
    /// Effective pull bandwidth hub → cloud (hub's CDN peers with cloud
    /// datacenters; continuum testbed only).
    pub hub_to_cloud: Bandwidth,
    /// Effective pull bandwidth regional → cloud (traverses the lab's WAN
    /// uplink; continuum testbed only).
    pub regional_to_cloud: Bandwidth,
    /// Edge ↔ cloud WAN bandwidth (dataflow transfers; continuum only).
    pub wan: Bandwidth,
    /// Fixed pull overhead per registry.
    pub hub_overhead: Seconds,
    pub regional_overhead: Seconds,
    /// Effective bandwidth of a peer device serving cached layers over the
    /// LAN (below the raw LAN rate: the peer reads from its own disk).
    pub peer_bw: Bandwidth,
    /// Fixed overhead of the first peer-served layer of a pull (peer
    /// discovery + connection; no auth, no manifest round-trips).
    pub peer_overhead: Seconds,
    /// Route-contention coefficient: a pull sharing its registry→device
    /// route with `k` earlier same-wave pulls sees its download slowed by
    /// `1 + alpha·k`. Small because in-flight layer dedup absorbs most
    /// contention.
    pub contention_alpha: f64,
    /// Pulls below this size don't count as route load (they finish too
    /// fast to matter).
    pub contention_threshold: DataSize,
}

impl Default for TestbedParams {
    fn default() -> Self {
        TestbedParams {
            hub_to_medium: Bandwidth::megabytes_per_sec(13.0),
            hub_to_small: Bandwidth::megabytes_per_sec(8.0),
            regional_to_medium: Bandwidth::megabytes_per_sec(8.0),
            regional_to_small: Bandwidth::megabytes_per_sec(9.5),
            lan: Bandwidth::megabytes_per_sec(100.0),
            hub_to_cloud: Bandwidth::megabytes_per_sec(60.0),
            regional_to_cloud: Bandwidth::megabytes_per_sec(4.0),
            wan: Bandwidth::megabytes_per_sec(20.0),
            hub_overhead: Seconds::new(25.0),
            regional_overhead: Seconds::new(5.0),
            peer_bw: Bandwidth::megabytes_per_sec(80.0),
            peer_overhead: Seconds::new(1.0),
            contention_alpha: 0.1,
            contention_threshold: DataSize::megabytes(100.0),
        }
    }
}

impl TestbedParams {
    /// Pull bandwidth for a `(source, device)` route. Covers the paper
    /// registries (ids 0/1) and the peer-cache route ([`REGISTRY_PEER`],
    /// LAN-bound and device-independent) ONLY — regional mirrors carry
    /// their own parameters and must be priced through
    /// [`Testbed::source_params`], never through this struct.
    pub fn route_bandwidth(&self, registry: RegistryChoice, device: DeviceId) -> Bandwidth {
        debug_assert!(
            registry.registry_id().0 <= REGISTRY_PEER.0,
            "mirror route {registry} is priced by Testbed::source_params, not TestbedParams"
        );
        match (registry.registry_id().0, device) {
            (0, DEVICE_MEDIUM) => self.hub_to_medium,
            (0, DEVICE_CLOUD) => self.hub_to_cloud,
            (0, _) => self.hub_to_small,
            (1, DEVICE_MEDIUM) => self.regional_to_medium,
            (1, DEVICE_CLOUD) => self.regional_to_cloud,
            (1, _) => self.regional_to_small,
            (_, _) => self.peer_bw,
        }
    }

    /// Fixed overhead for a mesh source (paper registries + peer route
    /// only; mirrors go through [`Testbed::source_params`]).
    pub fn overhead(&self, registry: RegistryChoice) -> Seconds {
        debug_assert!(
            registry.registry_id().0 <= REGISTRY_PEER.0,
            "mirror route {registry} is priced by Testbed::source_params, not TestbedParams"
        );
        match registry.registry_id().0 {
            0 => self.hub_overhead,
            1 => self.regional_overhead,
            _ => self.peer_overhead,
        }
    }

    /// [`SourceParams`] for one source→device route, with the route slowed
    /// by `slowdown` (contention factor ≥ 1).
    pub fn source_params(
        &self,
        registry: RegistryChoice,
        device: DeviceId,
        slowdown: f64,
    ) -> SourceParams {
        SourceParams {
            download_bw: self.route_bandwidth(registry, device).scale(1.0 / slowdown),
            overhead: self.overhead(registry),
        }
    }

    /// Download slowdown under `load` prior same-wave pulls on the route.
    pub fn contention_factor(&self, load: usize) -> f64 {
        1.0 + self.contention_alpha * load as f64
    }
}

/// An additional regional registry in the mesh: a mirror of the regional
/// namespace at another site, registered under a fresh mesh id.
///
/// N regionals are *data*, not API variants: schedulers discover mirrors
/// through [`Testbed::registry_choices`] and the stage game's strategy
/// space widens automatically.
pub struct RegionalMirror {
    /// The mirror's strategy handle (`RegistryChoice::mesh(id)`).
    pub choice: RegistryChoice,
    /// The mirror's registry backend (serves the regional namespace).
    pub registry: RegionalRegistry,
    /// Effective pull bandwidth mirror → any device (the mirror sits at
    /// another site; its route is device-independent).
    pub download_bw: Bandwidth,
    /// Fixed per-pull overhead of the mirror.
    pub overhead: Seconds,
}

/// Route parameters for any mesh source, over split borrows: the executor
/// destructures the testbed (devices mutably, the rest shared), so this
/// logic lives where both it and [`Testbed::source_params`] can call it —
/// the estimator/executor bit-for-bit parity contract depends on there
/// being exactly one copy.
pub(crate) fn source_params_for(
    mirrors: &[RegionalMirror],
    params: &TestbedParams,
    choice: RegistryChoice,
    device: DeviceId,
    slowdown: f64,
) -> SourceParams {
    match mirrors.iter().find(|m| m.choice == choice) {
        Some(m) => {
            SourceParams { download_bw: m.download_bw.scale(1.0 / slowdown), overhead: m.overhead }
        }
        None => params.source_params(choice, device, slowdown),
    }
}

/// The simulated testbed: devices, network, registries.
pub struct Testbed {
    pub devices: Vec<SimDevice>,
    pub topology: Topology,
    pub hub: HubRegistry,
    pub regional: RegionalRegistry,
    /// Additional regional registries under mesh ids
    /// [`REGISTRY_MIRROR_BASE`]`+ k` (empty on the paper testbed).
    pub mirrors: Vec<RegionalMirror>,
    pub params: TestbedParams,
    /// Per-source failure probabilities (per-pull fatal + per-fetch
    /// transient rates) and the retry policy absorbing the transients.
    /// Defaults to the fault-free model; the executor injects seeded
    /// samples of it when [`crate::ExecutorConfig::fault_injection`] is
    /// on, and fault-aware schedulers price expected deployment time
    /// under it.
    pub fault_model: FaultModel,
    /// `(application, microservice)` → catalog entry, for reference lookup
    /// by the executor.
    pub(crate) entries: HashMap<(String, String), CatalogEntry>,
}

impl Testbed {
    /// The paper's testbed with default calibrated parameters and the
    /// Table I catalog published to both registries.
    ///
    /// Power models (see DESIGN.md): the medium device's figures are
    /// RAPL-package-domain (pyRAPL measures only the processor package, so
    /// its idle floor is low and network-bound phases draw little); the
    /// small device's figures are wall-meter whole-board (PSU overhead
    /// raises the static floor).
    pub fn paper() -> Self {
        Self::with_params(TestbedParams::default())
    }

    /// The paper testbed with custom link parameters (for sweeps).
    pub fn with_params(params: TestbedParams) -> Self {
        let medium = SimDevice::new(
            DEVICE_MEDIUM,
            "medium",
            deep_registry::Platform::Amd64,
            8,
            Mips::new(40_000.0),
            DataSize::gigabytes(16.0),
            DataSize::gigabytes(64.0),
            DevicePowerModel::per_phase(
                Watts::new(0.3), // RAPL package idle floor
                Watts::new(0.1), // NIC+NVMe during pull (package view)
                Watts::new(0.1), // NIC during dataflow receive
                Watts::new(8.0), // default package draw under load
            ),
            Bandwidth::megabytes_per_sec(12.6),
        );
        let small = SimDevice::new(
            DEVICE_SMALL,
            "small",
            deep_registry::Platform::Arm64,
            4,
            Mips::new(40_000.0),
            DataSize::gigabytes(8.0),
            DataSize::gigabytes(32.0),
            DevicePowerModel::per_phase(
                Watts::new(1.8), // idle board + PSU at the wall
                Watts::new(0.6), // NIC+SD during pull
                Watts::new(0.4), // NIC during dataflow receive
                Watts::new(2.0), // default whole-board delta under load
            ),
            Bandwidth::megabytes_per_sec(11.0),
        )
        .with_base_speed_factor(3.0);

        let topology = TopologyBuilder::new(2, 2)
            .symmetric_device_link(DEVICE_MEDIUM, DEVICE_SMALL, params.lan)
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_MEDIUM, params.hub_to_medium)
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_SMALL, params.hub_to_small)
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_MEDIUM,
                params.regional_to_medium,
            )
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_SMALL,
                params.regional_to_small,
            )
            .build()
            .expect("testbed topology is complete");

        let entries = deep_registry::paper_catalog()
            .into_iter()
            .map(|e| ((e.application.clone(), e.microservice.clone()), e))
            .collect();
        Testbed {
            devices: vec![medium, small],
            topology,
            hub: HubRegistry::with_paper_catalog(),
            regional: RegionalRegistry::with_paper_catalog(),
            mirrors: Vec::new(),
            params,
            fault_model: FaultModel::default(),
            entries,
        }
    }

    /// The cloud–edge continuum testbed: the paper's two edge devices plus
    /// a cloud server — the extension the paper's conclusion announces
    /// ("schedule the computation between cloud and edge").
    ///
    /// The cloud device: 32 amd64 cores at twice the medium device's MI/s,
    /// abundant memory/storage, NVMe-fast extraction, and power figures
    /// that model the *billed/amortised* datacenter draw (PUE-adjusted):
    /// a high static share and a processing draw that beats the medium
    /// device per instruction, but every dataflow to/from the edge pays
    /// the WAN.
    pub fn continuum() -> Self {
        Self::continuum_with_params(TestbedParams::default())
    }

    /// [`Testbed::continuum`] with custom parameters.
    pub fn continuum_with_params(params: TestbedParams) -> Self {
        let mut tb = Self::with_params(params);
        let cloud = SimDevice::new(
            DEVICE_CLOUD,
            "cloud",
            deep_registry::Platform::Amd64,
            32,
            Mips::new(80_000.0),
            DataSize::gigabytes(128.0),
            DataSize::gigabytes(1000.0),
            DevicePowerModel::per_phase(
                Watts::new(4.0),  // amortised idle share of the server
                Watts::new(1.0),  // NIC+NVMe during pull
                Watts::new(1.5),  // NIC during dataflow receive
                Watts::new(10.0), // PUE-adjusted package under load
            ),
            Bandwidth::megabytes_per_sec(400.0),
        )
        .with_class(deep_dataflow::DeviceClass::Cloud);
        tb.devices.push(cloud);
        // Rebuild the topology with the cloud's WAN links.
        tb.topology = TopologyBuilder::new(3, 2)
            .symmetric_device_link(DEVICE_MEDIUM, DEVICE_SMALL, tb.params.lan)
            .symmetric_device_link(DEVICE_MEDIUM, DEVICE_CLOUD, tb.params.wan)
            .symmetric_device_link(DEVICE_SMALL, DEVICE_CLOUD, tb.params.wan)
            .registry_link(
                RegistryChoice::Hub.registry_id(),
                DEVICE_MEDIUM,
                tb.params.hub_to_medium,
            )
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_SMALL, tb.params.hub_to_small)
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_CLOUD, tb.params.hub_to_cloud)
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_MEDIUM,
                tb.params.regional_to_medium,
            )
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_SMALL,
                tb.params.regional_to_small,
            )
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_CLOUD,
                tb.params.regional_to_cloud,
            )
            .build()
            .expect("continuum topology is complete");
        tb
    }

    /// Catalog entry for `(application, microservice)`, if published.
    pub fn entry(&self, application: &str, microservice: &str) -> Option<&CatalogEntry> {
        self.entries.get(&(application.to_string(), microservice.to_string()))
    }

    /// Replace (or insert) the catalog entry used for reference lookup —
    /// ablation hooks re-publish variant images under the same keys.
    pub fn replace_entry(&mut self, entry: CatalogEntry) {
        self.entries.insert((entry.application.clone(), entry.microservice.clone()), entry);
    }

    /// Publish single-layer images for every microservice of a non-catalog
    /// application (generated workloads) to every full registry in the
    /// mesh (both paper registries plus any mirrors).
    pub fn publish_application(&mut self, app: &Application) {
        for id in app.ids() {
            let ms = app.microservice(id);
            let key = (app.name().to_string(), ms.name.clone());
            if self.entries.contains_key(&key) {
                continue;
            }
            let entry = CatalogEntry::single_layer(app.name(), &ms.name, ms.image_size);
            self.hub.publish(&entry);
            self.regional.publish(&entry).expect("synthetic publish fits capacity");
            for mirror in &mut self.mirrors {
                mirror.registry.publish(&entry).expect("synthetic publish fits mirror capacity");
            }
            self.entries.insert(key, entry);
        }
    }

    /// Register an additional regional registry (a mirror of the regional
    /// namespace, pre-loaded with everything published so far) under the
    /// next mirror mesh id, and return its strategy handle.
    pub fn add_regional_mirror(
        &mut self,
        download_bw: Bandwidth,
        overhead: Seconds,
    ) -> RegistryChoice {
        let id = RegistryId(REGISTRY_MIRROR_BASE.0 + self.mirrors.len());
        let mut registry = RegionalRegistry::with_paper_catalog();
        for entry in self.entries.values() {
            registry.publish(entry).expect("mirror capacity fits the published catalog");
        }
        let choice = RegistryChoice::mesh(id);
        self.mirrors.push(RegionalMirror { choice, registry, download_bw, overhead });
        choice
    }

    /// The strategy space of the registry side of the game: every mesh
    /// source a scheduler may name as a pull's primary (full registries
    /// only — the paper pair plus any mirrors; peer caches cannot resolve
    /// manifests and ride along via `peer_sharing` instead).
    pub fn registry_choices(&self) -> Vec<RegistryChoice> {
        let mut out = vec![RegistryChoice::Hub, RegistryChoice::Regional];
        out.extend(self.mirrors.iter().map(|m| m.choice));
        out
    }

    /// The mirror registered under `choice`, if any.
    pub fn mirror(&self, choice: RegistryChoice) -> Option<&RegionalMirror> {
        self.mirrors.iter().find(|m| m.choice == choice)
    }

    /// [`SourceParams`] for one source→device route (paper registries,
    /// peer, or mirrors), with the route slowed by `slowdown` (contention
    /// factor ≥ 1). The mesh-wide generalization of
    /// [`TestbedParams::source_params`].
    pub fn source_params(
        &self,
        choice: RegistryChoice,
        device: DeviceId,
        slowdown: f64,
    ) -> SourceParams {
        source_params_for(&self.mirrors, &self.params, choice, device, slowdown)
    }

    /// The full-registry backend for a choice. Panics for handles that
    /// name no full registry — blob-only sources (peers) have no backend
    /// here.
    pub fn registry(&self, choice: RegistryChoice) -> &dyn Registry {
        match choice.registry_id().0 {
            0 => &self.hub,
            1 => &self.regional,
            n => self
                .mirror(choice)
                .map(|m| &m.registry as &dyn Registry)
                .unwrap_or_else(|| panic!("testbed has no full registry under mesh id r{n}")),
        }
    }

    /// The reference `entry` is published under on `choice`'s registry.
    /// Mirrors serve the regional namespace.
    pub fn reference(
        &self,
        entry: &CatalogEntry,
        choice: RegistryChoice,
        platform: Platform,
    ) -> Reference {
        match choice.registry_id().0 {
            0 => entry.hub_reference(platform),
            1 => entry.regional_reference(platform),
            _ if self.mirror(choice).is_some() => entry.regional_reference(platform),
            n => panic!("no reference namespace for mesh id r{n}"),
        }
    }

    /// A single-source mesh for pulling from `registry` onto `device`,
    /// with the route slowed by `slowdown` (contention factor ≥ 1). This
    /// is the seed pull path expressed through the mesh API — schedulers
    /// estimate against it and the executor realises it, so predictions
    /// and measurements agree bit for bit.
    pub fn pull_mesh(
        &self,
        registry: RegistryChoice,
        device: DeviceId,
        slowdown: f64,
    ) -> RegistryMesh<'_> {
        let mut mesh = RegistryMesh::new();
        mesh.add_registry(
            registry.registry_id(),
            self.registry(registry),
            self.source_params(registry, device, slowdown),
        );
        mesh
    }

    /// The full registry mesh as seen from `device`: every full registry
    /// (paper pair + mirrors) at its calibrated route parameters (no
    /// contention). Split-pull experiments add peer sources on top.
    pub fn mesh(&self, device: DeviceId) -> RegistryMesh<'_> {
        let mut mesh = RegistryMesh::new();
        for choice in self.registry_choices() {
            mesh.add_registry(
                choice.registry_id(),
                self.registry(choice),
                self.source_params(choice, device, 1.0),
            );
        }
        mesh
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &SimDevice {
        &self.devices[id.0]
    }

    /// Mutable device by id.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut SimDevice {
        &mut self.devices[id.0]
    }

    /// Reset all device caches (fresh testbed between trials).
    pub fn reset_caches(&mut self) {
        for d in &mut self.devices {
            d.cache.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_registry::ManifestSource;

    #[test]
    fn paper_testbed_shape() {
        let t = Testbed::paper();
        assert_eq!(t.devices.len(), 2);
        assert_eq!(t.device(DEVICE_MEDIUM).cores, 8);
        assert_eq!(t.device(DEVICE_SMALL).cores, 4);
        assert_eq!(t.device(DEVICE_MEDIUM).memory, DataSize::gigabytes(16.0));
        assert_eq!(t.device(DEVICE_SMALL).memory, DataSize::gigabytes(8.0));
        assert_eq!(t.topology.device_count(), 2);
        assert_eq!(t.topology.registry_count(), 2);
    }

    #[test]
    fn registries_serve_the_catalog() {
        let t = Testbed::paper();
        assert_eq!(t.hub.repositories().len(), 12);
        assert_eq!(t.regional.repositories().len(), 12);
        assert_eq!(t.registry(RegistryChoice::Hub).host(), "docker.io");
        assert_eq!(t.registry(RegistryChoice::Regional).host(), "dcloud2.itec.aau.at");
    }

    #[test]
    fn route_bandwidths_favor_hub_on_medium_and_regional_on_small() {
        let p = TestbedParams::default();
        assert!(
            p.route_bandwidth(RegistryChoice::Hub, DEVICE_MEDIUM)
                > p.route_bandwidth(RegistryChoice::Regional, DEVICE_MEDIUM)
        );
        assert!(
            p.route_bandwidth(RegistryChoice::Regional, DEVICE_SMALL)
                > p.route_bandwidth(RegistryChoice::Hub, DEVICE_SMALL)
        );
    }

    #[test]
    fn regional_overhead_is_lower() {
        let p = TestbedParams::default();
        assert!(p.overhead(RegistryChoice::Regional) < p.overhead(RegistryChoice::Hub));
    }

    #[test]
    fn contention_factor_grows_linearly() {
        let p = TestbedParams::default();
        assert_eq!(p.contention_factor(0), 1.0);
        assert!((p.contention_factor(2) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn small_device_is_slower_by_default() {
        let t = Testbed::paper();
        let cpu = deep_dataflow::Mi::new(4_000_000.0);
        let tp_med = t.device(DEVICE_MEDIUM).processing_time("x", cpu);
        let tp_small = t.device(DEVICE_SMALL).processing_time("x", cpu);
        assert!((tp_small.as_f64() / tp_med.as_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn regional_mirrors_widen_the_strategy_space() {
        let mut t = Testbed::paper();
        assert_eq!(t.registry_choices().len(), 2, "paper testbed: hub + regional");
        let mirror = t.add_regional_mirror(Bandwidth::megabytes_per_sec(11.0), Seconds::new(4.0));
        assert_eq!(mirror.registry_id(), REGISTRY_MIRROR_BASE);
        let choices = t.registry_choices();
        assert_eq!(choices, vec![RegistryChoice::Hub, RegistryChoice::Regional, mirror]);
        // The mirror serves the regional namespace through the mesh.
        let mesh = t.pull_mesh(mirror, DEVICE_MEDIUM, 1.0);
        let mut cache = deep_registry::LayerCache::new(DataSize::gigabytes(64.0));
        let r = Reference::new("dcloud2.itec.aau.at", "aau/tp-retrieve", "amd64");
        let out = mesh
            .session(mirror.registry_id())
            .pull(&r, Platform::Amd64, &mut cache)
            .expect("mirror serves the catalog");
        assert!(out.downloaded > DataSize::ZERO);
        assert_eq!(out.per_source[0].source, REGISTRY_MIRROR_BASE);
        // Mirror route parameters are its own, not the regional route's.
        let p = t.source_params(mirror, DEVICE_MEDIUM, 1.0);
        assert_eq!(p.download_bw, Bandwidth::megabytes_per_sec(11.0));
        assert_eq!(p.overhead, Seconds::new(4.0));
        // Contention slows the mirror route like any other.
        let slowed = t.source_params(mirror, DEVICE_MEDIUM, 1.1);
        assert!(slowed.download_bw.as_bytes_per_sec() < p.download_bw.as_bytes_per_sec());
    }

    #[test]
    fn published_applications_reach_mirrors() {
        let mut t = Testbed::paper();
        let mirror = t.add_regional_mirror(Bandwidth::megabytes_per_sec(9.5), Seconds::new(5.0));
        let gen = deep_dataflow::DagGenerator::default();
        let app = gen.generate(7);
        t.publish_application(&app);
        let ms = &app.microservice(deep_dataflow::MicroserviceId(0)).name;
        let entry = t.entry(app.name(), ms).unwrap().clone();
        let reference = t.reference(&entry, mirror, Platform::Amd64);
        let mut cache = deep_registry::LayerCache::new(DataSize::gigabytes(64.0));
        let out = t
            .pull_mesh(mirror, DEVICE_MEDIUM, 1.0)
            .session(mirror.registry_id())
            .pull(&reference, Platform::Amd64, &mut cache)
            .expect("mirror serves generated workloads");
        assert!(out.downloaded > DataSize::ZERO);
    }

    #[test]
    fn full_mesh_includes_mirrors() {
        let mut t = Testbed::paper();
        t.add_regional_mirror(Bandwidth::megabytes_per_sec(9.5), Seconds::new(5.0));
        t.add_regional_mirror(Bandwidth::megabytes_per_sec(7.0), Seconds::new(6.0));
        assert_eq!(t.mesh(DEVICE_MEDIUM).len(), 4, "hub + regional + 2 mirrors");
    }

    #[test]
    fn cache_reset() {
        let mut t = Testbed::paper();
        t.device_mut(DEVICE_MEDIUM)
            .cache
            .insert(deep_registry::Digest::of(b"x"), DataSize::megabytes(1.0));
        t.reset_caches();
        assert!(t.device(DEVICE_MEDIUM).cache.is_empty());
    }
}

#[cfg(test)]
mod continuum_tests {
    use super::*;
    use deep_dataflow::DeviceClass;

    #[test]
    fn continuum_adds_a_cloud_device() {
        let t = Testbed::continuum();
        assert_eq!(t.devices.len(), 3);
        let cloud = t.device(DEVICE_CLOUD);
        assert_eq!(cloud.class, DeviceClass::Cloud);
        assert_eq!(cloud.cores, 32);
        assert_eq!(t.topology.device_count(), 3);
    }

    #[test]
    fn cloud_routes_resolve() {
        let p = TestbedParams::default();
        assert_eq!(p.route_bandwidth(RegistryChoice::Hub, DEVICE_CLOUD), p.hub_to_cloud);
        assert_eq!(p.route_bandwidth(RegistryChoice::Regional, DEVICE_CLOUD), p.regional_to_cloud);
    }

    #[test]
    fn wan_links_are_slower_than_lan() {
        let t = Testbed::continuum();
        let lan = t.topology.device_bandwidth(DEVICE_MEDIUM, DEVICE_SMALL).unwrap();
        let wan = t.topology.device_bandwidth(DEVICE_MEDIUM, DEVICE_CLOUD).unwrap();
        assert!(wan.as_bytes_per_sec() < lan.as_bytes_per_sec());
    }

    #[test]
    fn edge_pinned_requirements_rejected_by_cloud() {
        let t = Testbed::continuum();
        let req = deep_dataflow::Requirements::minimal(deep_dataflow::Mi::new(1.0))
            .pinned_to(DeviceClass::Edge);
        assert!(t.device(DEVICE_MEDIUM).admits(&req));
        assert!(!t.device(DEVICE_CLOUD).admits(&req));
    }

    #[test]
    fn cloud_is_faster_per_instruction() {
        let t = Testbed::continuum();
        let cpu = deep_dataflow::Mi::new(4_000_000.0);
        let tp_cloud = t.device(DEVICE_CLOUD).processing_time("x", cpu);
        let tp_medium = t.device(DEVICE_MEDIUM).processing_time("x", cpu);
        assert!(tp_cloud.as_f64() < tp_medium.as_f64());
    }
}
