//! The two-device, two-registry testbed of Section IV.
//!
//! Link parameters are calibrated so simulated deployment times land in the
//! neighbourhood of Table II's residual `Td ≈ CT − Tp` (see deep-core's
//! calibration module and EXPERIMENTS.md for the paper-vs-measured
//! accounting):
//!
//! * Effective docker-pull rates are far below nominal NIC speed — Docker
//!   Hub throttles per-client sessions and layer extraction is
//!   CPU/disk-bound. The hub pays a larger fixed negotiation overhead but
//!   sustains a higher stream rate to the well-connected medium device; the
//!   regional registry wins on overhead and on the small device (LAN
//!   locality, no throttling).
//! * The small device's SD-card extraction is slower than the medium's
//!   NVMe.
//!
//! Besides the registry routes, the testbed carries a [`PeerPlane`]: the
//! topology of device-to-device *peer serving* links (what rate each
//! device streams already-cached layers to each other device, and what a
//! connection to it costs). It defaults to the uniform
//! `peer_bw`/`peer_overhead` mesh — the scalar model of earlier
//! revisions, reproduced exactly — and individual pairs or whole uplinks
//! can be dented for hot-peer scenarios. Per-holder peer sources get
//! mesh ids from [`REGISTRY_PEER_BASE`] and contend on the serving
//! device's uplink (see [`route_key`]).

use crate::device::SimDevice;
use crate::schedule::RegistryChoice;
use deep_dataflow::{Application, Mips};
use deep_energy::{DevicePowerModel, Watts};
use deep_netsim::{Bandwidth, DataSize, DeviceId, RegistryId, Seconds, Topology, TopologyBuilder};
use deep_registry::{
    CatalogEntry, FaultModel, HubRegistry, LayerCache, PeerCacheSource, Platform, Reference,
    RegionalRegistry, Registry, RegistryMesh, SourceParams,
};
use std::collections::HashMap;

/// Device id of the Intel i7-7700 "medium" device.
pub const DEVICE_MEDIUM: DeviceId = DeviceId(0);
/// Device id of the Raspberry Pi 4 "small" device.
pub const DEVICE_SMALL: DeviceId = DeviceId(1);
/// Device id of the cloud server in the continuum testbed
/// ([`Testbed::continuum`] only — the paper testbed has two devices).
pub const DEVICE_CLOUD: DeviceId = DeviceId(2);

/// Mesh id under which the executor registers the *aggregated* peer-cache
/// blob source — [`PeerPlane::Aggregate`] only (ids 0 and 1 are the paper
/// registries). The topology-backed plane registers one source per
/// serving device instead (see [`REGISTRY_PEER_BASE`]); this id survives
/// as the canonical "the peer plane" handle reports fold per-holder
/// buckets under ([`crate::RunReport::with_aggregated_peer_sources`]).
pub const REGISTRY_PEER: RegistryId = RegistryId(2);

/// First mesh id handed out to additional regional registries
/// ([`Testbed::add_regional_mirror`]); the k-th mirror gets id `3 + k`.
pub const REGISTRY_MIRROR_BASE: RegistryId = RegistryId(3);

/// First mesh id of the per-holder peer sources: serving device `j`'s
/// cache is registered under `REGISTRY_PEER_BASE + j`. Far above the
/// mirror range so the two open-ended id families never collide.
pub const REGISTRY_PEER_BASE: RegistryId = RegistryId(4096);

/// The mesh id under which serving device `holder` advertises its layer
/// cache on the topology-backed peer plane.
pub fn peer_source_id(holder: DeviceId) -> RegistryId {
    RegistryId(REGISTRY_PEER_BASE.0 + holder.0)
}

/// The serving device behind a per-holder peer mesh id, if `source` is
/// one ([`REGISTRY_PEER`], registries and mirrors return `None`).
pub fn peer_holder(source: RegistryId) -> Option<DeviceId> {
    (source.0 >= REGISTRY_PEER_BASE.0).then(|| DeviceId(source.0 - REGISTRY_PEER_BASE.0))
}

/// The contention resource a pull's bytes from `source` onto `pulling`
/// actually occupy — the key of the executor's and estimator's shared
/// `route_load` map:
///
/// * registry/mirror sources contend per `(source, pulling device)`
///   download route (the PR 3 scheme);
/// * per-holder peer sources contend on the *serving* device's uplink
///   NIC, `(source, holder)` — one resource regardless of who pulls, so
///   a hot peer serving several same-wave devices divides its uplink
///   among them instead of serving everyone at full rate.
pub fn route_key(source: RegistryId, pulling: DeviceId) -> (RegistryId, usize) {
    match peer_holder(source) {
        Some(holder) => (source, holder.0),
        None => (source, pulling.0),
    }
}

/// Calibrated link and overhead parameters.
#[derive(Debug, Clone, Copy)]
pub struct TestbedParams {
    /// Effective pull bandwidth hub → medium (MB/s).
    pub hub_to_medium: Bandwidth,
    /// Effective pull bandwidth hub → small.
    pub hub_to_small: Bandwidth,
    /// Effective pull bandwidth regional → medium.
    pub regional_to_medium: Bandwidth,
    /// Effective pull bandwidth regional → small.
    pub regional_to_small: Bandwidth,
    /// Device-to-device LAN bandwidth (dataflow transfers).
    pub lan: Bandwidth,
    /// Effective pull bandwidth hub → cloud (hub's CDN peers with cloud
    /// datacenters; continuum testbed only).
    pub hub_to_cloud: Bandwidth,
    /// Effective pull bandwidth regional → cloud (traverses the lab's WAN
    /// uplink; continuum testbed only).
    pub regional_to_cloud: Bandwidth,
    /// Edge ↔ cloud WAN bandwidth (dataflow transfers; continuum only).
    pub wan: Bandwidth,
    /// Fixed pull overhead per registry.
    pub hub_overhead: Seconds,
    pub regional_overhead: Seconds,
    /// Effective bandwidth of a peer device serving cached layers over the
    /// LAN (below the raw LAN rate: the peer reads from its own disk).
    ///
    /// This is the *construction-time default* the uniform
    /// [`PeerPlane::PerPair`] mesh is built from (and the live rate of
    /// the [`PeerPlane::Aggregate`] oracle). Mutating it on a built
    /// testbed does not reshape the per-pair plane — throttle links
    /// through [`Testbed::set_peer_link`] / [`Testbed::set_peer_uplink`]
    /// instead.
    pub peer_bw: Bandwidth,
    /// Fixed overhead of the first peer-served layer of a pull (peer
    /// discovery + connection; no auth, no manifest round-trips). Like
    /// `peer_bw`, a construction-time default for the per-pair plane's
    /// per-holder overheads.
    pub peer_overhead: Seconds,
    /// Route-contention coefficient: a pull sharing its registry→device
    /// route with `k` earlier same-wave pulls sees its download slowed by
    /// `1 + alpha·k`. Small because in-flight layer dedup absorbs most
    /// contention.
    pub contention_alpha: f64,
    /// Pulls below this size don't count as route load (they finish too
    /// fast to matter).
    pub contention_threshold: DataSize,
}

impl Default for TestbedParams {
    fn default() -> Self {
        TestbedParams {
            hub_to_medium: Bandwidth::megabytes_per_sec(13.0),
            hub_to_small: Bandwidth::megabytes_per_sec(8.0),
            regional_to_medium: Bandwidth::megabytes_per_sec(8.0),
            regional_to_small: Bandwidth::megabytes_per_sec(9.5),
            lan: Bandwidth::megabytes_per_sec(100.0),
            hub_to_cloud: Bandwidth::megabytes_per_sec(60.0),
            regional_to_cloud: Bandwidth::megabytes_per_sec(4.0),
            wan: Bandwidth::megabytes_per_sec(20.0),
            hub_overhead: Seconds::new(25.0),
            regional_overhead: Seconds::new(5.0),
            peer_bw: Bandwidth::megabytes_per_sec(80.0),
            peer_overhead: Seconds::new(1.0),
            contention_alpha: 0.1,
            contention_threshold: DataSize::megabytes(100.0),
        }
    }
}

impl TestbedParams {
    /// Pull bandwidth for a `(source, device)` route. Covers the paper
    /// registries (ids 0/1) and the *aggregated* peer route
    /// ([`REGISTRY_PEER`], LAN-bound and device-independent) ONLY —
    /// regional mirrors carry their own parameters and per-holder peer
    /// routes are per-pair links of the [`PeerPlane`]; both must be
    /// priced through [`Testbed::source_params`], never through this
    /// struct. Unknown ids are a pricing bug (debug assertion), not a
    /// peer; release builds fall back to the legacy `peer_bw` value.
    pub fn route_bandwidth(&self, registry: RegistryChoice, device: DeviceId) -> Bandwidth {
        match (registry.registry_id().0, device) {
            (0, DEVICE_MEDIUM) => self.hub_to_medium,
            (0, DEVICE_CLOUD) => self.hub_to_cloud,
            (0, _) => self.hub_to_small,
            (1, DEVICE_MEDIUM) => self.regional_to_medium,
            (1, DEVICE_CLOUD) => self.regional_to_cloud,
            (1, _) => self.regional_to_small,
            (2, _) => self.peer_bw,
            (n, _) => {
                debug_assert!(
                    false,
                    "route r{n} → {device} is not a TestbedParams route: mirrors are priced by \
                     Testbed::source_params, per-holder peer pairs by the PeerPlane"
                );
                self.peer_bw
            }
        }
    }

    /// Fixed overhead for a mesh source (paper registries + aggregated
    /// peer route only; mirrors and per-holder peers go through
    /// [`Testbed::source_params`] — unknown ids are a debug assertion).
    pub fn overhead(&self, registry: RegistryChoice) -> Seconds {
        match registry.registry_id().0 {
            0 => self.hub_overhead,
            1 => self.regional_overhead,
            2 => self.peer_overhead,
            n => {
                debug_assert!(
                    false,
                    "source r{n} carries no TestbedParams overhead: mirrors are priced by \
                     Testbed::source_params, per-holder peer pairs by the PeerPlane"
                );
                self.peer_overhead
            }
        }
    }

    /// [`SourceParams`] for one source→device route, with the route slowed
    /// by `slowdown` (contention factor ≥ 1).
    pub fn source_params(
        &self,
        registry: RegistryChoice,
        device: DeviceId,
        slowdown: f64,
    ) -> SourceParams {
        SourceParams {
            download_bw: self.route_bandwidth(registry, device).scale(1.0 / slowdown),
            overhead: self.overhead(registry),
        }
    }

    /// Download slowdown under `load` prior same-wave pulls on the route.
    pub fn contention_factor(&self, load: usize) -> f64 {
        1.0 + self.contention_alpha * load as f64
    }
}

/// The fleet's peer data plane: who can serve cached image layers to
/// whom, and how fast.
///
/// The default is the topology-backed [`PeerPlane::PerPair`] plane:
/// device-to-device links of a registry-free [`Topology`] are the source
/// of truth for peer bandwidth, one blob source per serving device (mesh
/// ids [`peer_source_id`]) is registered in every peer-sharing pull's
/// mesh, and upload contention is charged on the serving device's uplink
/// ([`route_key`]). Built uniform from `peer_bw`/`peer_overhead`, it
/// reproduces the scalar plane of earlier revisions exactly (single
/// holder: byte for byte; see `tests/peer_plane.rs`) while letting
/// sweeps dent individual pairs ([`Testbed::set_peer_link`]) or a whole
/// uplink ([`Testbed::set_peer_uplink`]) — a hot peer saturates like a
/// real NIC instead of serving the whole fleet at full rate.
///
/// [`PeerPlane::Aggregate`] retains the scalar plane — one anonymous
/// fleet-wide source ([`REGISTRY_PEER`]) at `peer_bw`, contended per
/// *pulling* device — as the regression oracle the parity tests compare
/// against.
#[derive(Debug, Clone)]
pub enum PeerPlane {
    /// The scalar plane: one aggregated fleet-wide source at
    /// `TestbedParams::peer_bw`/`peer_overhead`.
    Aggregate,
    /// Topology-backed per-pair links and per-holder sources.
    PerPair {
        /// `links.device_bandwidth(serving, pulling)` = the effective
        /// rate at which `serving` streams cached layers to `pulling`
        /// (disk-read-bound below the raw LAN rate; no registries).
        links: Topology,
        /// Per-serving-device connection overhead, charged the first
        /// time a pull uses that holder (index = device id).
        overheads: Vec<Seconds>,
    },
}

impl PeerPlane {
    /// The uniform per-pair plane over `devices` devices: every pair at
    /// `bw`, every holder at `overhead` — the topology expression of the
    /// scalar `peer_bw` model.
    pub fn uniform(devices: usize, bw: Bandwidth, overhead: Seconds) -> Self {
        PeerPlane::PerPair {
            links: Topology::uniform_mesh(devices, bw),
            overheads: vec![overhead; devices],
        }
    }

    /// Whether this is the scalar aggregate plane.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, PeerPlane::Aggregate)
    }

    /// The serving bandwidth of the `(serving, pulling)` pair.
    pub fn bandwidth(
        &self,
        params: &TestbedParams,
        serving: DeviceId,
        pulling: DeviceId,
    ) -> Bandwidth {
        match self {
            PeerPlane::Aggregate => params.peer_bw,
            PeerPlane::PerPair { links, .. } => links
                .device_bandwidth(serving, pulling)
                .expect("peer plane covers every device pair"),
        }
    }

    /// The first-use connection overhead of `serving` as a peer.
    pub fn holder_overhead(&self, params: &TestbedParams, serving: DeviceId) -> Seconds {
        match self {
            PeerPlane::Aggregate => params.peer_overhead,
            PeerPlane::PerPair { overheads, .. } => overheads[serving.0],
        }
    }

    /// The peer sources a wave barrier advertises to `target`, from the
    /// per-device layer caches (index = device id): the aggregate plane
    /// folds every other device into one [`REGISTRY_PEER`] source; the
    /// per-pair plane yields one [`peer_source_id`] source per other
    /// device with a non-empty cache. The executor calls this with the
    /// real device caches, the estimator with its estimated clones — the
    /// single rule both sides share is what keeps them bit-for-bit.
    pub fn snapshot(
        &self,
        caches: &[&LayerCache],
        target: usize,
    ) -> Vec<(RegistryId, PeerCacheSource)> {
        match self {
            PeerPlane::Aggregate => vec![(
                REGISTRY_PEER,
                PeerCacheSource::from_caches(
                    "peer-cache",
                    caches.iter().enumerate().filter(|(k, _)| *k != target).map(|(_, c)| *c),
                ),
            )],
            PeerPlane::PerPair { .. } => caches
                .iter()
                .enumerate()
                .filter(|(k, c)| *k != target && !c.is_empty())
                .map(|(k, c)| {
                    (peer_source_id(DeviceId(k)), PeerCacheSource::for_holder(DeviceId(k), c))
                })
                .collect(),
        }
    }
}

/// An additional regional registry in the mesh: a mirror of the regional
/// namespace at another site, registered under a fresh mesh id.
///
/// N regionals are *data*, not API variants: schedulers discover mirrors
/// through [`Testbed::registry_choices`] and the stage game's strategy
/// space widens automatically.
pub struct RegionalMirror {
    /// The mirror's strategy handle (`RegistryChoice::mesh(id)`).
    pub choice: RegistryChoice,
    /// The mirror's registry backend (serves the regional namespace).
    pub registry: RegionalRegistry,
    /// Effective pull bandwidth mirror → any device (the mirror sits at
    /// another site; its route is device-independent).
    pub download_bw: Bandwidth,
    /// Fixed per-pull overhead of the mirror.
    pub overhead: Seconds,
}

impl RegionalMirror {
    /// An independent deep copy (registry storage forked, not shared).
    pub fn fork(&self) -> RegionalMirror {
        RegionalMirror {
            choice: self.choice,
            registry: self.registry.fork(),
            download_bw: self.download_bw,
            overhead: self.overhead,
        }
    }
}

/// Route parameters for any mesh source, over split borrows: the executor
/// destructures the testbed (devices mutably, the rest shared), so this
/// logic lives where both it and [`Testbed::source_params`] can call it —
/// the estimator/executor bit-for-bit parity contract depends on there
/// being exactly one copy.
pub(crate) fn source_params_for(
    mirrors: &[RegionalMirror],
    peer_plane: &PeerPlane,
    params: &TestbedParams,
    choice: RegistryChoice,
    device: DeviceId,
    slowdown: f64,
) -> SourceParams {
    if let Some(holder) = peer_holder(choice.registry_id()) {
        return SourceParams {
            download_bw: peer_plane.bandwidth(params, holder, device).scale(1.0 / slowdown),
            overhead: peer_plane.holder_overhead(params, holder),
        };
    }
    match mirrors.iter().find(|m| m.choice == choice) {
        Some(m) => {
            SourceParams { download_bw: m.download_bw.scale(1.0 / slowdown), overhead: m.overhead }
        }
        None => params.source_params(choice, device, slowdown),
    }
}

/// The simulated testbed: devices, network, registries.
pub struct Testbed {
    pub devices: Vec<SimDevice>,
    pub topology: Topology,
    pub hub: HubRegistry,
    pub regional: RegionalRegistry,
    /// Additional regional registries under mesh ids
    /// [`REGISTRY_MIRROR_BASE`]`+ k` (empty on the paper testbed).
    pub mirrors: Vec<RegionalMirror>,
    pub params: TestbedParams,
    /// The peer data plane: per-pair serving links and per-holder
    /// sources by default (built uniform from `peer_bw`/`peer_overhead`),
    /// or the retained scalar [`PeerPlane::Aggregate`] oracle.
    pub peer_plane: PeerPlane,
    /// Per-source failure probabilities (per-pull fatal + per-fetch
    /// transient rates) and the retry policy absorbing the transients.
    /// Defaults to the fault-free model; the executor injects seeded
    /// samples of it when [`crate::ExecutorConfig::fault_injection`] is
    /// on, and fault-aware schedulers price expected deployment time
    /// under it.
    pub fault_model: FaultModel,
    /// `(application, microservice)` → catalog entry, for reference lookup
    /// by the executor.
    pub(crate) entries: HashMap<(String, String), CatalogEntry>,
}

impl Testbed {
    /// The paper's testbed with default calibrated parameters and the
    /// Table I catalog published to both registries.
    ///
    /// Power models (see DESIGN.md): the medium device's figures are
    /// RAPL-package-domain (pyRAPL measures only the processor package, so
    /// its idle floor is low and network-bound phases draw little); the
    /// small device's figures are wall-meter whole-board (PSU overhead
    /// raises the static floor).
    pub fn paper() -> Self {
        Self::with_params(TestbedParams::default())
    }

    /// The paper testbed with custom link parameters (for sweeps).
    pub fn with_params(params: TestbedParams) -> Self {
        let medium = SimDevice::new(
            DEVICE_MEDIUM,
            "medium",
            deep_registry::Platform::Amd64,
            8,
            Mips::new(40_000.0),
            DataSize::gigabytes(16.0),
            DataSize::gigabytes(64.0),
            DevicePowerModel::per_phase(
                Watts::new(0.3), // RAPL package idle floor
                Watts::new(0.1), // NIC+NVMe during pull (package view)
                Watts::new(0.1), // NIC during dataflow receive
                Watts::new(8.0), // default package draw under load
            ),
            Bandwidth::megabytes_per_sec(12.6),
        );
        let small = SimDevice::new(
            DEVICE_SMALL,
            "small",
            deep_registry::Platform::Arm64,
            4,
            Mips::new(40_000.0),
            DataSize::gigabytes(8.0),
            DataSize::gigabytes(32.0),
            DevicePowerModel::per_phase(
                Watts::new(1.8), // idle board + PSU at the wall
                Watts::new(0.6), // NIC+SD during pull
                Watts::new(0.4), // NIC during dataflow receive
                Watts::new(2.0), // default whole-board delta under load
            ),
            Bandwidth::megabytes_per_sec(11.0),
        )
        .with_base_speed_factor(3.0);

        let topology = TopologyBuilder::new(2, 2)
            .symmetric_device_link(DEVICE_MEDIUM, DEVICE_SMALL, params.lan)
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_MEDIUM, params.hub_to_medium)
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_SMALL, params.hub_to_small)
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_MEDIUM,
                params.regional_to_medium,
            )
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_SMALL,
                params.regional_to_small,
            )
            .build()
            .expect("testbed topology is complete");

        let entries = deep_registry::paper_catalog()
            .into_iter()
            .map(|e| ((e.application.clone(), e.microservice.clone()), e))
            .collect();
        Testbed {
            devices: vec![medium, small],
            topology,
            hub: HubRegistry::with_paper_catalog(),
            regional: RegionalRegistry::with_paper_catalog(),
            mirrors: Vec::new(),
            peer_plane: PeerPlane::uniform(2, params.peer_bw, params.peer_overhead),
            params,
            fault_model: FaultModel::default(),
            entries,
        }
    }

    /// The cloud–edge continuum testbed: the paper's two edge devices plus
    /// a cloud server — the extension the paper's conclusion announces
    /// ("schedule the computation between cloud and edge").
    ///
    /// The cloud device: 32 amd64 cores at twice the medium device's MI/s,
    /// abundant memory/storage, NVMe-fast extraction, and power figures
    /// that model the *billed/amortised* datacenter draw (PUE-adjusted):
    /// a high static share and a processing draw that beats the medium
    /// device per instruction, but every dataflow to/from the edge pays
    /// the WAN.
    pub fn continuum() -> Self {
        Self::continuum_with_params(TestbedParams::default())
    }

    /// [`Testbed::continuum`] with custom parameters.
    pub fn continuum_with_params(params: TestbedParams) -> Self {
        let mut tb = Self::with_params(params);
        let cloud = SimDevice::new(
            DEVICE_CLOUD,
            "cloud",
            deep_registry::Platform::Amd64,
            32,
            Mips::new(80_000.0),
            DataSize::gigabytes(128.0),
            DataSize::gigabytes(1000.0),
            DevicePowerModel::per_phase(
                Watts::new(4.0),  // amortised idle share of the server
                Watts::new(1.0),  // NIC+NVMe during pull
                Watts::new(1.5),  // NIC during dataflow receive
                Watts::new(10.0), // PUE-adjusted package under load
            ),
            Bandwidth::megabytes_per_sec(400.0),
        )
        .with_class(deep_dataflow::DeviceClass::Cloud);
        tb.devices.push(cloud);
        // The peer plane widens with the fleet (the cloud both serves and
        // is served at the uniform rate unless a sweep dents its links).
        tb.peer_plane = PeerPlane::uniform(3, tb.params.peer_bw, tb.params.peer_overhead);
        // Rebuild the topology with the cloud's WAN links.
        tb.topology = TopologyBuilder::new(3, 2)
            .symmetric_device_link(DEVICE_MEDIUM, DEVICE_SMALL, tb.params.lan)
            .symmetric_device_link(DEVICE_MEDIUM, DEVICE_CLOUD, tb.params.wan)
            .symmetric_device_link(DEVICE_SMALL, DEVICE_CLOUD, tb.params.wan)
            .registry_link(
                RegistryChoice::Hub.registry_id(),
                DEVICE_MEDIUM,
                tb.params.hub_to_medium,
            )
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_SMALL, tb.params.hub_to_small)
            .registry_link(RegistryChoice::Hub.registry_id(), DEVICE_CLOUD, tb.params.hub_to_cloud)
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_MEDIUM,
                tb.params.regional_to_medium,
            )
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_SMALL,
                tb.params.regional_to_small,
            )
            .registry_link(
                RegistryChoice::Regional.registry_id(),
                DEVICE_CLOUD,
                tb.params.regional_to_cloud,
            )
            .build()
            .expect("continuum topology is complete");
        tb
    }

    /// A seeded synthetic fleet: the calibrated testbed scaled to 10³
    /// devices for the fleet-scale solver.
    ///
    /// Devices 0/1 are the paper pair verbatim (and with `devices ≥ 3`
    /// device 2 is the continuum cloud), so every calibration that
    /// targets the canonical ids applies unchanged. Each further device
    /// clones one of the three archetypes — mostly edge, with every
    /// 16th slot a cloud-tier server — under splitmix64-jittered
    /// compute, extraction and power figures (±15 % MI/s and extract
    /// bandwidth, ±10 % per-phase draw), all drawn from `seed`:
    /// identical `(devices, registries, seed)` triples build identical
    /// testbeds.
    ///
    /// `registries` counts the full mesh sources: the hub + regional
    /// pair plus `registries − 2` regional mirrors at seeded site rates
    /// (7–12 MB/s, 4–6 s overhead). The device mesh keeps the paper's
    /// LAN between edge devices and the WAN on any cloud leg; fleet
    /// devices pull the base registries at the small-device route rates
    /// ([`TestbedParams::route_bandwidth`] is archetype-keyed, not
    /// per-id — per-device heterogeneity comes from the device figures).
    pub fn synthetic_fleet(devices: usize, registries: usize, seed: u64) -> Self {
        assert!(devices >= 2, "a fleet needs at least the paper's device pair");
        assert!(registries >= 2, "a fleet needs at least the hub + regional pair");
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn jitter(state: &mut u64, lo: f64, hi: f64) -> f64 {
            lo + (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        }
        let mut tb = if devices >= 3 { Self::continuum() } else { Self::paper() };
        let mut state = seed;
        for i in tb.devices.len()..devices {
            // Slot 15 of every 16 is a cloud clone; the rest alternate
            // the two edge archetypes.
            let archetype = match i % 16 {
                15 => DEVICE_CLOUD,
                k if k % 2 == 0 => DEVICE_MEDIUM,
                _ => DEVICE_SMALL,
            };
            let base = &tb.devices[archetype.0];
            let compute = jitter(&mut state, 0.85, 1.15);
            let extract = jitter(&mut state, 0.85, 1.15);
            let power = jitter(&mut state, 0.9, 1.1);
            let device = SimDevice::new(
                DeviceId(i),
                &format!("fleet-{i}-{}", base.name),
                base.arch,
                base.cores,
                base.mips.scale(compute),
                base.memory,
                base.storage,
                DevicePowerModel::per_phase(
                    base.power.static_watts.scale(power),
                    base.power.deploy_watts.scale(power),
                    base.power.transfer_watts.scale(power),
                    base.power.process_watts.scale(power),
                ),
                base.extract_bw.scale(extract),
            )
            .with_base_speed_factor(base.base_speed_factor())
            .with_class(base.class);
            tb.devices.push(device);
        }
        if devices > tb.topology.device_count() {
            let cloudish: Vec<bool> =
                tb.devices.iter().map(|d| d.class == deep_dataflow::DeviceClass::Cloud).collect();
            let mut builder = TopologyBuilder::new(devices, 2);
            for a in 0..devices {
                for b in (a + 1)..devices {
                    let bw = if cloudish[a] || cloudish[b] { tb.params.wan } else { tb.params.lan };
                    builder = builder.symmetric_device_link(DeviceId(a), DeviceId(b), bw);
                }
                for choice in [RegistryChoice::Hub, RegistryChoice::Regional] {
                    builder = builder.registry_link(
                        choice.registry_id(),
                        DeviceId(a),
                        tb.params.route_bandwidth(choice, DeviceId(a)),
                    );
                }
            }
            tb.topology = builder.build().expect("fleet topology is complete by construction");
            tb.peer_plane = PeerPlane::uniform(devices, tb.params.peer_bw, tb.params.peer_overhead);
        }
        for _ in 2..registries {
            let bw = Bandwidth::megabytes_per_sec(jitter(&mut state, 7.0, 12.0));
            let overhead = Seconds::new(jitter(&mut state, 4.0, 6.0));
            tb.add_regional_mirror(bw, overhead);
        }
        tb
    }

    /// Catalog entry for `(application, microservice)`, if published.
    pub fn entry(&self, application: &str, microservice: &str) -> Option<&CatalogEntry> {
        self.entries.get(&(application.to_string(), microservice.to_string()))
    }

    /// Replace (or insert) the catalog entry used for reference lookup —
    /// ablation hooks re-publish variant images under the same keys.
    pub fn replace_entry(&mut self, entry: CatalogEntry) {
        self.entries.insert((entry.application.clone(), entry.microservice.clone()), entry);
    }

    /// Publish single-layer images for every microservice of a non-catalog
    /// application (generated workloads) to every full registry in the
    /// mesh (both paper registries plus any mirrors).
    pub fn publish_application(&mut self, app: &Application) {
        for id in app.ids() {
            let ms = app.microservice(id);
            let key = (app.name().to_string(), ms.name.clone());
            if self.entries.contains_key(&key) {
                continue;
            }
            let entry = CatalogEntry::single_layer(app.name(), &ms.name, ms.image_size);
            self.hub.publish(&entry);
            self.regional.publish(&entry).expect("synthetic publish fits capacity");
            for mirror in &mut self.mirrors {
                mirror.registry.publish(&entry).expect("synthetic publish fits mirror capacity");
            }
            self.entries.insert(key, entry);
        }
    }

    /// Register an additional regional registry (a mirror of the regional
    /// namespace, pre-loaded with everything published so far) under the
    /// next mirror mesh id, and return its strategy handle.
    pub fn add_regional_mirror(
        &mut self,
        download_bw: Bandwidth,
        overhead: Seconds,
    ) -> RegistryChoice {
        let id = RegistryId(REGISTRY_MIRROR_BASE.0 + self.mirrors.len());
        assert!(
            id < REGISTRY_PEER_BASE,
            "mirror ids exhausted the range below the per-holder peer sources"
        );
        let mut registry = RegionalRegistry::with_paper_catalog();
        for entry in self.entries.values() {
            registry.publish(entry).expect("mirror capacity fits the published catalog");
        }
        let choice = RegistryChoice::mesh(id);
        self.mirrors.push(RegionalMirror { choice, registry, download_bw, overhead });
        choice
    }

    /// The strategy space of the registry side of the game: every mesh
    /// source a scheduler may name as a pull's primary (full registries
    /// only — the paper pair plus any mirrors; peer caches cannot resolve
    /// manifests and ride along via `peer_sharing` instead).
    pub fn registry_choices(&self) -> Vec<RegistryChoice> {
        let mut out = vec![RegistryChoice::Hub, RegistryChoice::Regional];
        out.extend(self.mirrors.iter().map(|m| m.choice));
        out
    }

    /// The mirror registered under `choice`, if any.
    pub fn mirror(&self, choice: RegistryChoice) -> Option<&RegionalMirror> {
        self.mirrors.iter().find(|m| m.choice == choice)
    }

    /// [`SourceParams`] for one source→device route (paper registries,
    /// aggregated peer, per-holder peers, or mirrors), with the route
    /// slowed by `slowdown` (contention factor ≥ 1). The mesh-wide
    /// generalization of [`TestbedParams::source_params`].
    pub fn source_params(
        &self,
        choice: RegistryChoice,
        device: DeviceId,
        slowdown: f64,
    ) -> SourceParams {
        source_params_for(&self.mirrors, &self.peer_plane, &self.params, choice, device, slowdown)
    }

    /// The serving bandwidth of one `(serving, pulling)` peer pair.
    pub fn peer_bandwidth(&self, serving: DeviceId, pulling: DeviceId) -> Bandwidth {
        self.peer_plane.bandwidth(&self.params, serving, pulling)
    }

    /// Dent one directed peer link (requires the per-pair plane; the
    /// scalar aggregate oracle has no pairs to dent).
    pub fn set_peer_link(&mut self, serving: DeviceId, pulling: DeviceId, bw: Bandwidth) {
        match &mut self.peer_plane {
            PeerPlane::PerPair { links, .. } => links
                .set_device_bandwidth(serving, pulling, bw)
                .expect("peer plane covers every device pair"),
            PeerPlane::Aggregate => panic!("the aggregate peer plane has no per-pair links"),
        }
    }

    /// Throttle every link *from* `serving` — the hot-peer scenario's
    /// saturated uplink NIC.
    pub fn set_peer_uplink(&mut self, serving: DeviceId, bw: Bandwidth) {
        let n = self.devices.len();
        for j in 0..n {
            if j != serving.0 {
                self.set_peer_link(serving, DeviceId(j), bw);
            }
        }
    }

    /// The full-registry backend for a choice. Panics for handles that
    /// name no full registry — blob-only sources (peers) have no backend
    /// here.
    pub fn registry(&self, choice: RegistryChoice) -> &dyn Registry {
        match choice.registry_id().0 {
            0 => &self.hub,
            1 => &self.regional,
            n => self
                .mirror(choice)
                .map(|m| &m.registry as &dyn Registry)
                .unwrap_or_else(|| panic!("testbed has no full registry under mesh id r{n}")),
        }
    }

    /// The reference `entry` is published under on `choice`'s registry.
    /// Mirrors serve the regional namespace.
    pub fn reference(
        &self,
        entry: &CatalogEntry,
        choice: RegistryChoice,
        platform: Platform,
    ) -> Reference {
        match choice.registry_id().0 {
            0 => entry.hub_reference(platform),
            1 => entry.regional_reference(platform),
            _ if self.mirror(choice).is_some() => entry.regional_reference(platform),
            n => panic!("no reference namespace for mesh id r{n}"),
        }
    }

    /// A single-source mesh for pulling from `registry` onto `device`,
    /// with the route slowed by `slowdown` (contention factor ≥ 1). This
    /// is the seed pull path expressed through the mesh API — schedulers
    /// estimate against it and the executor realises it, so predictions
    /// and measurements agree bit for bit.
    pub fn pull_mesh(
        &self,
        registry: RegistryChoice,
        device: DeviceId,
        slowdown: f64,
    ) -> RegistryMesh<'_> {
        let mut mesh = RegistryMesh::new();
        mesh.add_registry(
            registry.registry_id(),
            self.registry(registry),
            self.source_params(registry, device, slowdown),
        );
        mesh
    }

    /// The full registry mesh as seen from `device`: every full registry
    /// (paper pair + mirrors) at its calibrated route parameters (no
    /// contention). Split-pull experiments add peer sources on top.
    pub fn mesh(&self, device: DeviceId) -> RegistryMesh<'_> {
        let mut mesh = RegistryMesh::new();
        for choice in self.registry_choices() {
            mesh.add_registry(
                choice.registry_id(),
                self.registry(choice),
                self.source_params(choice, device, 1.0),
            );
        }
        mesh
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &SimDevice {
        &self.devices[id.0]
    }

    /// Mutable device by id.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut SimDevice {
        &mut self.devices[id.0]
    }

    /// An independent deep copy of the whole testbed: devices, caches,
    /// topology, registries and mirrors (storage *forked*, never shared —
    /// chaos events delete tags and GC blobs, so replications running in
    /// parallel must not alias registry state), peer plane, fault model
    /// and catalog entries. Two replicas evolve with no cross-talk.
    pub fn replica(&self) -> Testbed {
        Testbed {
            devices: self.devices.clone(),
            topology: self.topology.clone(),
            hub: self.hub.clone(),
            regional: self.regional.fork(),
            mirrors: self.mirrors.iter().map(RegionalMirror::fork).collect(),
            params: self.params,
            peer_plane: self.peer_plane.clone(),
            fault_model: self.fault_model.clone(),
            entries: self.entries.clone(),
        }
    }

    /// Reset all device caches (fresh testbed between trials).
    pub fn reset_caches(&mut self) {
        for d in &mut self.devices {
            d.cache.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_registry::{BlobSource, ManifestSource};

    #[test]
    fn paper_testbed_shape() {
        let t = Testbed::paper();
        assert_eq!(t.devices.len(), 2);
        assert_eq!(t.device(DEVICE_MEDIUM).cores, 8);
        assert_eq!(t.device(DEVICE_SMALL).cores, 4);
        assert_eq!(t.device(DEVICE_MEDIUM).memory, DataSize::gigabytes(16.0));
        assert_eq!(t.device(DEVICE_SMALL).memory, DataSize::gigabytes(8.0));
        assert_eq!(t.topology.device_count(), 2);
        assert_eq!(t.topology.registry_count(), 2);
    }

    #[test]
    fn registries_serve_the_catalog() {
        let t = Testbed::paper();
        assert_eq!(t.hub.repositories().len(), 12);
        assert_eq!(t.regional.repositories().len(), 12);
        assert_eq!(t.registry(RegistryChoice::Hub).host(), "docker.io");
        assert_eq!(t.registry(RegistryChoice::Regional).host(), "dcloud2.itec.aau.at");
    }

    #[test]
    fn route_bandwidths_favor_hub_on_medium_and_regional_on_small() {
        let p = TestbedParams::default();
        assert!(
            p.route_bandwidth(RegistryChoice::Hub, DEVICE_MEDIUM)
                > p.route_bandwidth(RegistryChoice::Regional, DEVICE_MEDIUM)
        );
        assert!(
            p.route_bandwidth(RegistryChoice::Regional, DEVICE_SMALL)
                > p.route_bandwidth(RegistryChoice::Hub, DEVICE_SMALL)
        );
    }

    #[test]
    fn regional_overhead_is_lower() {
        let p = TestbedParams::default();
        assert!(p.overhead(RegistryChoice::Regional) < p.overhead(RegistryChoice::Hub));
    }

    #[test]
    fn contention_factor_grows_linearly() {
        let p = TestbedParams::default();
        assert_eq!(p.contention_factor(0), 1.0);
        assert!((p.contention_factor(2) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn small_device_is_slower_by_default() {
        let t = Testbed::paper();
        let cpu = deep_dataflow::Mi::new(4_000_000.0);
        let tp_med = t.device(DEVICE_MEDIUM).processing_time("x", cpu);
        let tp_small = t.device(DEVICE_SMALL).processing_time("x", cpu);
        assert!((tp_small.as_f64() / tp_med.as_f64() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn regional_mirrors_widen_the_strategy_space() {
        let mut t = Testbed::paper();
        assert_eq!(t.registry_choices().len(), 2, "paper testbed: hub + regional");
        let mirror = t.add_regional_mirror(Bandwidth::megabytes_per_sec(11.0), Seconds::new(4.0));
        assert_eq!(mirror.registry_id(), REGISTRY_MIRROR_BASE);
        let choices = t.registry_choices();
        assert_eq!(choices, vec![RegistryChoice::Hub, RegistryChoice::Regional, mirror]);
        // The mirror serves the regional namespace through the mesh.
        let mesh = t.pull_mesh(mirror, DEVICE_MEDIUM, 1.0);
        let mut cache = deep_registry::LayerCache::new(DataSize::gigabytes(64.0));
        let r = Reference::new("dcloud2.itec.aau.at", "aau/tp-retrieve", "amd64");
        let out = mesh
            .session(mirror.registry_id())
            .pull(&r, Platform::Amd64, &mut cache)
            .expect("mirror serves the catalog");
        assert!(out.downloaded > DataSize::ZERO);
        assert_eq!(out.per_source[0].source, REGISTRY_MIRROR_BASE);
        // Mirror route parameters are its own, not the regional route's.
        let p = t.source_params(mirror, DEVICE_MEDIUM, 1.0);
        assert_eq!(p.download_bw, Bandwidth::megabytes_per_sec(11.0));
        assert_eq!(p.overhead, Seconds::new(4.0));
        // Contention slows the mirror route like any other.
        let slowed = t.source_params(mirror, DEVICE_MEDIUM, 1.1);
        assert!(slowed.download_bw.as_bytes_per_sec() < p.download_bw.as_bytes_per_sec());
    }

    #[test]
    fn published_applications_reach_mirrors() {
        let mut t = Testbed::paper();
        let mirror = t.add_regional_mirror(Bandwidth::megabytes_per_sec(9.5), Seconds::new(5.0));
        let gen = deep_dataflow::DagGenerator::default();
        let app = gen.generate(7);
        t.publish_application(&app);
        let ms = &app.microservice(deep_dataflow::MicroserviceId(0)).name;
        let entry = t.entry(app.name(), ms).unwrap().clone();
        let reference = t.reference(&entry, mirror, Platform::Amd64);
        let mut cache = deep_registry::LayerCache::new(DataSize::gigabytes(64.0));
        let out = t
            .pull_mesh(mirror, DEVICE_MEDIUM, 1.0)
            .session(mirror.registry_id())
            .pull(&reference, Platform::Amd64, &mut cache)
            .expect("mirror serves generated workloads");
        assert!(out.downloaded > DataSize::ZERO);
    }

    #[test]
    fn full_mesh_includes_mirrors() {
        let mut t = Testbed::paper();
        t.add_regional_mirror(Bandwidth::megabytes_per_sec(9.5), Seconds::new(5.0));
        t.add_regional_mirror(Bandwidth::megabytes_per_sec(7.0), Seconds::new(6.0));
        assert_eq!(t.mesh(DEVICE_MEDIUM).len(), 4, "hub + regional + 2 mirrors");
    }

    #[test]
    fn peer_ids_roundtrip_and_route_keys_pin_the_uplink() {
        let id = peer_source_id(DEVICE_SMALL);
        assert_eq!(id, RegistryId(REGISTRY_PEER_BASE.0 + 1));
        assert_eq!(peer_holder(id), Some(DEVICE_SMALL));
        assert_eq!(peer_holder(RegistryChoice::Hub.registry_id()), None);
        assert_eq!(peer_holder(REGISTRY_PEER), None);
        assert_eq!(peer_holder(REGISTRY_MIRROR_BASE), None);
        // Registry routes contend per pulling device; peer traffic
        // contends on the holder's uplink regardless of who pulls.
        assert_eq!(route_key(RegistryChoice::Hub.registry_id(), DEVICE_SMALL), (RegistryId(0), 1));
        assert_eq!(route_key(id, DEVICE_MEDIUM), (id, 1));
        assert_eq!(route_key(id, DEVICE_CLOUD), (id, 1));
    }

    #[test]
    fn default_peer_plane_is_the_uniform_mesh() {
        let t = Testbed::paper();
        assert!(!t.peer_plane.is_aggregate());
        assert_eq!(t.peer_bandwidth(DEVICE_MEDIUM, DEVICE_SMALL), t.params.peer_bw);
        assert_eq!(t.peer_bandwidth(DEVICE_SMALL, DEVICE_MEDIUM), t.params.peer_bw);
        // Per-holder source params come off the plane, matching the
        // scalar parameters exactly on the uniform default.
        let p =
            t.source_params(RegistryChoice::mesh(peer_source_id(DEVICE_MEDIUM)), DEVICE_SMALL, 1.0);
        assert_eq!(p.download_bw, t.params.peer_bw);
        assert_eq!(p.overhead, t.params.peer_overhead);
        let slowed =
            t.source_params(RegistryChoice::mesh(peer_source_id(DEVICE_MEDIUM)), DEVICE_SMALL, 1.1);
        assert!(slowed.download_bw.as_bytes_per_sec() < p.download_bw.as_bytes_per_sec());
    }

    #[test]
    fn peer_links_and_uplinks_can_be_dented() {
        let mut t = Testbed::continuum();
        t.set_peer_link(DEVICE_MEDIUM, DEVICE_SMALL, Bandwidth::megabytes_per_sec(40.0));
        assert_eq!(
            t.peer_bandwidth(DEVICE_MEDIUM, DEVICE_SMALL),
            Bandwidth::megabytes_per_sec(40.0)
        );
        // Directional: the reverse pair keeps the uniform rate.
        assert_eq!(t.peer_bandwidth(DEVICE_SMALL, DEVICE_MEDIUM), t.params.peer_bw);
        // A throttled uplink dents every link from the holder.
        t.set_peer_uplink(DEVICE_CLOUD, Bandwidth::megabytes_per_sec(10.0));
        assert_eq!(
            t.peer_bandwidth(DEVICE_CLOUD, DEVICE_MEDIUM),
            Bandwidth::megabytes_per_sec(10.0)
        );
        assert_eq!(
            t.peer_bandwidth(DEVICE_CLOUD, DEVICE_SMALL),
            Bandwidth::megabytes_per_sec(10.0)
        );
        // Links *to* the throttled holder are untouched.
        assert_eq!(t.peer_bandwidth(DEVICE_MEDIUM, DEVICE_CLOUD), t.params.peer_bw);
    }

    #[test]
    fn per_pair_snapshots_split_by_holder_and_skip_empty_caches() {
        let mut t = Testbed::continuum();
        let digest = deep_registry::Digest::of(b"warm-layer");
        t.device_mut(DEVICE_CLOUD).cache.insert(digest.clone(), DataSize::megabytes(10.0));
        let caches: Vec<&LayerCache> = t.devices.iter().map(|d| &d.cache).collect();
        // Per-pair: only the cloud advertises (medium/small are empty),
        // under its own holder id, excluding itself.
        let sources = t.peer_plane.snapshot(&caches, DEVICE_MEDIUM.0);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].0, peer_source_id(DEVICE_CLOUD));
        assert_eq!(sources[0].1.holder(), Some(DEVICE_CLOUD));
        assert!(sources[0].1.has_blob(&digest));
        assert!(t.peer_plane.snapshot(&caches, DEVICE_CLOUD.0).is_empty(), "no self-serving");
        // The aggregate oracle folds everyone into one anonymous source.
        t.peer_plane = PeerPlane::Aggregate;
        let folded = t.peer_plane.snapshot(&caches, DEVICE_MEDIUM.0);
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].0, REGISTRY_PEER);
        assert_eq!(folded[0].1.holder(), None);
        assert!(folded[0].1.has_blob(&digest));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "not a TestbedParams route")]
    fn unknown_route_ids_are_a_debug_assertion() {
        // Regression for the wildcard fallthrough that silently priced
        // any unknown id — mirrors included — as a peer.
        let p = TestbedParams::default();
        let _ = p.route_bandwidth(RegistryChoice::mesh(REGISTRY_MIRROR_BASE), DEVICE_MEDIUM);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "carries no TestbedParams overhead")]
    fn unknown_overhead_ids_are_a_debug_assertion() {
        let p = TestbedParams::default();
        let _ = p.overhead(RegistryChoice::mesh(RegistryId(17)));
    }

    #[test]
    fn cache_reset() {
        let mut t = Testbed::paper();
        t.device_mut(DEVICE_MEDIUM)
            .cache
            .insert(deep_registry::Digest::of(b"x"), DataSize::megabytes(1.0));
        t.reset_caches();
        assert!(t.device(DEVICE_MEDIUM).cache.is_empty());
    }
}

#[cfg(test)]
mod continuum_tests {
    use super::*;
    use deep_dataflow::DeviceClass;

    #[test]
    fn continuum_adds_a_cloud_device() {
        let t = Testbed::continuum();
        assert_eq!(t.devices.len(), 3);
        let cloud = t.device(DEVICE_CLOUD);
        assert_eq!(cloud.class, DeviceClass::Cloud);
        assert_eq!(cloud.cores, 32);
        assert_eq!(t.topology.device_count(), 3);
    }

    #[test]
    fn cloud_routes_resolve() {
        let p = TestbedParams::default();
        assert_eq!(p.route_bandwidth(RegistryChoice::Hub, DEVICE_CLOUD), p.hub_to_cloud);
        assert_eq!(p.route_bandwidth(RegistryChoice::Regional, DEVICE_CLOUD), p.regional_to_cloud);
    }

    #[test]
    fn wan_links_are_slower_than_lan() {
        let t = Testbed::continuum();
        let lan = t.topology.device_bandwidth(DEVICE_MEDIUM, DEVICE_SMALL).unwrap();
        let wan = t.topology.device_bandwidth(DEVICE_MEDIUM, DEVICE_CLOUD).unwrap();
        assert!(wan.as_bytes_per_sec() < lan.as_bytes_per_sec());
    }

    #[test]
    fn edge_pinned_requirements_rejected_by_cloud() {
        let t = Testbed::continuum();
        let req = deep_dataflow::Requirements::minimal(deep_dataflow::Mi::new(1.0))
            .pinned_to(DeviceClass::Edge);
        assert!(t.device(DEVICE_MEDIUM).admits(&req));
        assert!(!t.device(DEVICE_CLOUD).admits(&req));
    }

    #[test]
    fn cloud_is_faster_per_instruction() {
        let t = Testbed::continuum();
        let cpu = deep_dataflow::Mi::new(4_000_000.0);
        let tp_cloud = t.device(DEVICE_CLOUD).processing_time("x", cpu);
        let tp_medium = t.device(DEVICE_MEDIUM).processing_time("x", cpu);
        assert!(tp_cloud.as_f64() < tp_medium.as_f64());
    }
}
