//! The Monitoring component of Figure 1: an event log of service
//! executions on the computing devices.

use deep_netsim::{DeviceId, Seconds};
use serde::{Deserialize, Serialize};

/// Kinds of monitored events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    DeploymentStarted,
    DeploymentFinished,
    TransferStarted,
    TransferFinished,
    ProcessingStarted,
    ProcessingFinished,
    StageBarrierReleased,
    /// A scripted [`crate::ChaosEvent`] fired at a wave barrier; the
    /// label records what it did (victims evicted, blobs swept).
    ChaosEventFired,
}

/// One monitored event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub at: Seconds,
    pub kind: TraceKind,
    pub device: DeviceId,
    /// Microservice name, or stage label for barrier events.
    pub label: String,
}

/// An append-only monitoring log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event. Events must be appended in non-decreasing time
    /// order (the executor guarantees this; the assert catches executor
    /// bugs).
    pub fn record(&mut self, at: Seconds, kind: TraceKind, device: DeviceId, label: &str) {
        if let Some(last) = self.events.last() {
            assert!(
                at.as_f64() >= last.at.as_f64() - 1e-9,
                "trace went backwards: {at} after {}",
                last.at
            );
        }
        self.events.push(TraceEvent { at, kind, device, label: label.to_string() });
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events touching one microservice.
    pub fn for_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(Seconds::new(0.0), TraceKind::DeploymentStarted, DeviceId(0), "a");
        t.record(Seconds::new(5.0), TraceKind::DeploymentFinished, DeviceId(0), "a");
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].kind, TraceKind::DeploymentFinished);
    }

    #[test]
    fn filters_by_kind_and_label() {
        let mut t = Trace::new();
        t.record(Seconds::new(0.0), TraceKind::DeploymentStarted, DeviceId(0), "a");
        t.record(Seconds::new(1.0), TraceKind::DeploymentStarted, DeviceId(1), "b");
        t.record(Seconds::new(2.0), TraceKind::ProcessingStarted, DeviceId(0), "a");
        assert_eq!(t.of_kind(TraceKind::DeploymentStarted).count(), 2);
        assert_eq!(t.for_label("a").count(), 2);
        assert_eq!(t.for_label("b").count(), 1);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn out_of_order_rejected() {
        let mut t = Trace::new();
        t.record(Seconds::new(5.0), TraceKind::DeploymentStarted, DeviceId(0), "a");
        t.record(Seconds::new(1.0), TraceKind::DeploymentFinished, DeviceId(0), "a");
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
