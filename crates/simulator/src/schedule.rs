//! Schedules: the joint assignment `(regist(m_i), sched(m_i))`.

use deep_netsim::{DeviceId, RegistryId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which mesh source a microservice's image is pulled from: a thin typed
/// handle into the registry mesh.
///
/// The paper's testbed registers exactly two sources —
/// [`RegistryChoice::Hub`] (id 0) and [`RegistryChoice::Regional`] (id 1)
/// by workspace convention — but a schedule can name any mesh source via
/// [`RegistryChoice::mesh`]; N regional registries are additional ids,
/// not new enum variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegistryChoice(RegistryId);

impl RegistryChoice {
    /// Public Docker Hub (mesh id 0).
    #[allow(non_upper_case_globals)]
    pub const Hub: RegistryChoice = RegistryChoice(RegistryId(0));

    /// The regional MinIO-backed registry (mesh id 1).
    #[allow(non_upper_case_globals)]
    pub const Regional: RegistryChoice = RegistryChoice(RegistryId(1));

    /// A handle to an arbitrary mesh source.
    pub fn mesh(id: RegistryId) -> Self {
        RegistryChoice(id)
    }

    /// The paper testbed's strategy set: the two sources every scheduler
    /// chooses between.
    pub fn all() -> [RegistryChoice; 2] {
        [RegistryChoice::Hub, RegistryChoice::Regional]
    }

    /// The underlying mesh/topology registry id.
    pub fn registry_id(self) -> RegistryId {
        self.0
    }
}

impl fmt::Display for RegistryChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 .0 {
            0 => f.write_str("docker-hub"),
            1 => f.write_str("regional"),
            n if n >= crate::testbed::REGISTRY_PEER_BASE.0 => {
                write!(f, "peer-d{}", n - crate::testbed::REGISTRY_PEER_BASE.0)
            }
            n => write!(f, "mesh-r{n}"),
        }
    }
}

/// One microservice's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    pub registry: RegistryChoice,
    pub device: DeviceId,
}

/// A full schedule: placement per microservice, indexed by
/// `MicroserviceId`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    placements: Vec<Placement>,
}

impl Schedule {
    /// Build from per-microservice placements (index = microservice id).
    pub fn new(placements: Vec<Placement>) -> Self {
        assert!(!placements.is_empty(), "schedules cover at least one microservice");
        Schedule { placements }
    }

    /// The uniform schedule: every microservice from `registry` onto
    /// `device`.
    pub fn uniform(n: usize, registry: RegistryChoice, device: DeviceId) -> Self {
        Schedule::new(vec![Placement { registry, device }; n])
    }

    /// Placement of microservice `i`.
    pub fn placement(&self, i: deep_dataflow::MicroserviceId) -> Placement {
        self.placements[i.0]
    }

    /// Number of microservices covered.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when the schedule covers no microservices (unreachable by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Iterate placements in microservice order.
    pub fn iter(&self) -> impl Iterator<Item = (deep_dataflow::MicroserviceId, Placement)> + '_ {
        self.placements.iter().enumerate().map(|(i, p)| (deep_dataflow::MicroserviceId(i), *p))
    }

    /// Fraction of microservices pulled from each registry onto each
    /// device — the quantity Table III reports. Covers every mesh source
    /// a placement names, not just the paper pair.
    pub fn distribution(&self) -> Vec<((RegistryChoice, DeviceId), f64)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<(RegistryChoice, DeviceId), usize> = BTreeMap::new();
        for p in &self.placements {
            *counts.entry((p.registry, p.device)).or_insert(0) += 1;
        }
        let n = self.placements.len() as f64;
        counts.into_iter().map(|(key, c)| (key, c as f64 / n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_dataflow::MicroserviceId;

    #[test]
    fn uniform_schedule() {
        let s = Schedule::uniform(6, RegistryChoice::Hub, DeviceId(0));
        assert_eq!(s.len(), 6);
        assert_eq!(
            s.placement(MicroserviceId(3)),
            Placement { registry: RegistryChoice::Hub, device: DeviceId(0) }
        );
    }

    #[test]
    fn distribution_fractions_sum_to_one() {
        let s = Schedule::new(vec![
            Placement { registry: RegistryChoice::Hub, device: DeviceId(0) },
            Placement { registry: RegistryChoice::Hub, device: DeviceId(0) },
            Placement { registry: RegistryChoice::Regional, device: DeviceId(1) },
        ]);
        let dist = s.distribution();
        let total: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(dist.len(), 2);
        let hub_med = dist
            .iter()
            .find(|((r, d), _)| *r == RegistryChoice::Hub && *d == DeviceId(0))
            .unwrap()
            .1;
        assert!((hub_med - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn registry_ids_are_stable() {
        assert_eq!(RegistryChoice::Hub.registry_id(), RegistryId(0));
        assert_eq!(RegistryChoice::Regional.registry_id(), RegistryId(1));
        assert_eq!(RegistryChoice::mesh(RegistryId(7)).registry_id(), RegistryId(7));
    }

    #[test]
    fn mesh_choices_distribute_alongside_paper_pair() {
        let extra = RegistryChoice::mesh(RegistryId(3));
        let s = Schedule::new(vec![
            Placement { registry: RegistryChoice::Hub, device: DeviceId(0) },
            Placement { registry: extra, device: DeviceId(0) },
        ]);
        let dist = s.distribution();
        assert_eq!(dist.len(), 2);
        assert!(dist.iter().any(|((r, _), f)| *r == extra && (*f - 0.5).abs() < 1e-12));
    }

    #[test]
    fn iteration_covers_all() {
        let s = Schedule::uniform(4, RegistryChoice::Regional, DeviceId(1));
        assert_eq!(s.iter().count(), 4);
        for (id, p) in s.iter() {
            assert!(id.0 < 4);
            assert_eq!(p.registry, RegistryChoice::Regional);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RegistryChoice::Hub.to_string(), "docker-hub");
        assert_eq!(RegistryChoice::Regional.to_string(), "regional");
        assert_eq!(RegistryChoice::mesh(RegistryId(4)).to_string(), "mesh-r4");
        let peer = crate::testbed::peer_source_id(DeviceId(2));
        assert_eq!(RegistryChoice::mesh(peer).to_string(), "peer-d2");
    }
}
