//! Discrete-event testbed simulator — the physical-testbed substitution.
//!
//! The paper benchmarks on two physical devices (an 8-core Intel i7-7700
//! "medium" and a 4-core Raspberry Pi 4 "small"); this crate reproduces
//! that testbed as a deterministic, seeded simulation:
//!
//! * [`engine`] — a generic discrete-event engine (time-ordered event heap)
//!   used by the executor and available to ablation experiments;
//! * [`device`] — simulated edge devices: cores, MI/s speed with
//!   per-microservice architecture factors, memory/storage, per-phase power
//!   models, layer cache, extraction bandwidth;
//! * [`testbed`] — the two-device, two-registry testbed of Section IV with
//!   calibrated link parameters;
//! * [`schedule`] — the assignment type produced by schedulers and consumed
//!   by the executor: per-microservice `(registry, device)`;
//! * [`executor`] — runs an application under a schedule: staged
//!   deployments with route contention and layer dedup, barrier-ordered
//!   non-concurrent execution, per-phase energy metering through the
//!   emulated RAPL counters (Intel device) and the sampling wall meter
//!   (ARM device), and optional seeded fault injection
//!   ([`ExecutorConfig::fault_injection`]) sampling the testbed's
//!   [`Testbed::fault_model`](testbed::Testbed::fault_model) — dead
//!   primaries fail over onto standby mesh sources, transient bursts
//!   retry under the model's policy;
//! * [`gossip`] — the decentralized discovery plane
//!   ([`GossipPlane`]): epoch-versioned holder advertisements spread by
//!   seeded epidemic rounds at every wave barrier, bounded per-pull
//!   views ([`executor::PeerDiscovery::Gossip`]), and stale-ad
//!   retraction so an evicted layer fails over mid-pull instead of
//!   serving; with fanout ≥ devices − 1 it reproduces the omniscient
//!   snapshot byte for byte;
//! * [`jitter`] — seeded multiplicative noise reproducing run-to-run
//!   variance (Table II reports ranges, not points);
//! * [`metrics`] — per-microservice `Td/Tc/Tp/CT/EC` records and run
//!   reports;
//! * [`trace`] — the Monitoring component of Figure 1: an event log of
//!   every deployment and execution step.

pub mod chaos;
pub mod device;
pub mod engine;
pub mod executor;
pub mod gossip;
pub mod jitter;
pub mod metrics;
pub mod schedule;
pub mod testbed;
pub mod trace;

pub use chaos::{ChaosEvent, ChaosKind};
pub use device::SimDevice;
pub use engine::Engine;
pub use executor::{
    execute, execute_with_events, plan_waves, validate_schedule, ExecError, ExecutorConfig, JobRun,
    OnlineExecutor, PeerDiscovery,
};
pub use gossip::GossipPlane;
pub use jitter::Jitter;
pub use metrics::{MicroserviceMetrics, RunReport};
pub use schedule::{Placement, RegistryChoice, Schedule};
pub use testbed::{
    peer_holder, peer_source_id, route_key, PeerPlane, RegionalMirror, Testbed, TestbedParams,
    DEVICE_CLOUD, DEVICE_MEDIUM, DEVICE_SMALL, REGISTRY_MIRROR_BASE, REGISTRY_PEER,
    REGISTRY_PEER_BASE,
};
pub use trace::{Trace, TraceEvent, TraceKind};
