//! Gossip-backed peer discovery: the decentralized replacement for the
//! executor's omniscient per-wave peer snapshot.
//!
//! The snapshot plane ([`crate::testbed::PeerPlane::snapshot`]) hands a
//! pulling device the *current* cache of every other device — a central
//! catalog. [`GossipPlane`] replaces it with the epidemic protocol of
//! [`deep_netsim::gossip`]: each device advertises its layer-cache
//! digest set (as a [`PeerCacheSource`]) under an epoch, a seeded
//! push/pull round runs at every wave barrier, and a pull's mesh is
//! assembled from the *puller's partial view* — bounded to `view_size`
//! holders, because the `peer_plane` bench prices every extra holder a
//! session must consider (~0.2 µs each).
//!
//! Two kinds of staleness arise, and both must degrade into the mesh's
//! existing mid-pull failover rather than a wrong answer:
//!
//! * **Lag** — a holder warmed a layer but the epoch hasn't reached the
//!   viewer yet: the viewer simply doesn't count on that holder. The
//!   scheduler prices this correctly for free, because the estimator
//!   runs the *same* plane over its mirrored caches.
//! * **Lies** — a viewer holds an old epoch advertising a layer the
//!   holder has since evicted. [`GossipPlane::mesh_view`] materializes
//!   such entries with the dead digests *retracted*: `has_blob` keeps
//!   answering true (the session plans against the stale advertisement,
//!   exactly like the cache-pressure chaos path), but the fetch fails
//!   and the session fails over. Without this, a stale ad would let a
//!   simulated fetch succeed against bytes that no longer exist.
//!
//! Materialized views are cached per target and keyed on the gossip
//! state's [generation](deep_netsim::gossip::GossipState::generation):
//! between two barriers of an unchanged fleet no epoch moves, so every
//! re-materialization would rebuild the identical holder list — the
//! cache hands back the stored copy instead. Any advertisement or view
//! movement bumps the generation and invalidates every cached view;
//! out-of-band cache mutations (the chaos path) go through
//! [`GossipPlane::readvertise`], which is itself an epoch bump. Bounded
//! views use an O(n) partial selection (`select_nth_unstable_by`) in
//! place of a full sort — the (len desc, holder asc) comparator is a
//! total order over the unique holders, so the selected top-k set is
//! exactly the full sort's prefix.
//!
//! With `fanout >= devices - 1` and one round per wave, every barrier
//! fully re-converges the views, and an unbounded `view_size` makes
//! `mesh_view` reproduce `PeerPlane::snapshot` holder for holder — the
//! differential bridge `tests/gossip_discovery.rs` locks down byte for
//! byte, against both the omniscient snapshot and the PR 9 clone-based
//! exchange (retained as [`deep_netsim::gossip::oracle`]).

use crate::testbed::peer_source_id;
use deep_netsim::gossip::{oracle, GossipState};
use deep_netsim::{DeviceId, RegistryId};
use deep_registry::{BlobSource, LayerCache, PeerCacheSource};

/// A materialized mesh view, remembered until the gossip generation it
/// was built under moves.
type CachedView = Option<(u64, Vec<(RegistryId, PeerCacheSource)>)>;

/// The two exchange engines a plane can run on. Everything observable —
/// partner schedule, merge semantics, view order — is identical; the
/// delta backend ships epoch-vector diffs and caches materialized
/// views, the oracle backend is the PR 9 clone-and-merge kept alive for
/// differential testing.
#[derive(Debug, Clone)]
enum Backend {
    Delta { state: GossipState<PeerCacheSource>, views: Vec<CachedView> },
    Oracle(oracle::GossipState<PeerCacheSource>),
}

/// The fleet-wide gossip discovery plane: epidemic state plus the knobs
/// of [`crate::executor::PeerDiscovery::Gossip`].
#[derive(Debug, Clone)]
pub struct GossipPlane {
    backend: Backend,
    fanout: u32,
    view_size: u32,
    rounds_per_wave: u32,
}

impl GossipPlane {
    /// A fresh plane over `devices` nodes. `fanout` is clamped to
    /// `devices - 1` per round; `view_size` bounds how many holder
    /// sources [`Self::mesh_view`] materializes into one pull's mesh.
    pub fn new(
        devices: usize,
        fanout: u32,
        view_size: u32,
        rounds_per_wave: u32,
        seed: u64,
    ) -> Self {
        GossipPlane {
            backend: Backend::Delta {
                state: GossipState::new(devices, seed),
                views: vec![None; devices],
            },
            fanout,
            view_size,
            rounds_per_wave,
        }
    }

    /// A plane running the PR 9 clone-based exchange — the differential
    /// oracle behind `PeerDiscovery::GossipOracle`. Same observable
    /// behaviour as [`Self::new`], kept only so the test planes can run
    /// the full scheduler/executor pipeline on both engines.
    #[doc(hidden)]
    pub fn new_oracle(
        devices: usize,
        fanout: u32,
        view_size: u32,
        rounds_per_wave: u32,
        seed: u64,
    ) -> Self {
        GossipPlane {
            backend: Backend::Oracle(oracle::GossipState::new(devices, seed)),
            fanout,
            view_size,
            rounds_per_wave,
        }
    }

    /// The wave-barrier step, mirroring the snapshot plane's "peers
    /// advertise what they held when the wave began": every device whose
    /// cache diverged from its own last advertisement re-advertises
    /// (epoch bump), then `rounds_per_wave` epidemic rounds spread the
    /// freshest epochs. `caches[j]` is device `j`'s layer cache. On an
    /// unchanged fleet nothing re-advertises and every round
    /// short-circuits — the barrier allocates nothing and the cached
    /// mesh views stay live.
    pub fn barrier_round(&mut self, caches: &[&LayerCache]) {
        match &mut self.backend {
            Backend::Delta { state, .. } => {
                for (j, cache) in caches.iter().enumerate() {
                    let fresh = match state.self_ad(j) {
                        Some(ad) => {
                            ad.len() != cache.len() || cache.digests().any(|d| !ad.has_blob(d))
                        }
                        None => true,
                    };
                    if fresh {
                        state.advertise(j, PeerCacheSource::for_holder(DeviceId(j), cache));
                    }
                }
                state.run_rounds(self.rounds_per_wave, self.fanout);
            }
            Backend::Oracle(state) => {
                for (j, cache) in caches.iter().enumerate() {
                    let fresh = match state.self_ad(j) {
                        Some(ad) => {
                            ad.len() != cache.len() || cache.digests().any(|d| !ad.has_blob(d))
                        }
                        None => true,
                    };
                    if fresh {
                        state.advertise(j, PeerCacheSource::for_holder(DeviceId(j), cache));
                    }
                }
                state.run_rounds(self.rounds_per_wave, self.fanout);
            }
        }
    }

    /// Immediate re-advertisement after an out-of-band cache change —
    /// the chaos cache-pressure path. The epoch bump makes every remote
    /// copy of the old advertisement stale, so it ages out of the fleet
    /// as subsequent rounds spread the fresh (smaller) one; until then,
    /// viewers acting on the lie pay a failover, never a wrong estimate.
    /// (The bump also moves the generation, invalidating every cached
    /// mesh view — which is why out-of-band mutations must come through
    /// here.)
    pub fn readvertise(&mut self, holder: DeviceId, cache: &LayerCache) {
        match &mut self.backend {
            Backend::Delta { state, .. } => {
                if holder.0 < state.devices() {
                    state.advertise(holder.0, PeerCacheSource::for_holder(holder, cache));
                }
            }
            Backend::Oracle(state) => {
                if holder.0 < state.devices() {
                    state.advertise(holder.0, PeerCacheSource::for_holder(holder, cache));
                }
            }
        }
    }

    /// Materialize the pulling device's bounded mesh view: the holders
    /// it currently knows of, largest advertisement first, truncated to
    /// `view_size`, returned in ascending holder order under the same
    /// [`peer_source_id`] scheme as the snapshot plane (so route keys,
    /// uplink contention and trace ids are identical across discovery
    /// modes). Digests a holder advertised but no longer actually holds
    /// (per `caches`) are retracted in the materialized source: the
    /// session still *plans* against the stale advertisement, but the
    /// fetch fails over instead of serving vanished bytes.
    ///
    /// Views are cached per target for as long as the gossip generation
    /// holds still: between barriers of an unchanged fleet this is a
    /// clone of the stored vector, not a rebuild.
    pub fn mesh_view(
        &mut self,
        caches: &[&LayerCache],
        target: usize,
    ) -> Vec<(RegistryId, PeerCacheSource)> {
        let view_size = self.view_size;
        match &mut self.backend {
            Backend::Delta { state, views } => {
                let generation = state.generation();
                if let Some((built_at, view)) = &views[target] {
                    if *built_at == generation {
                        return view.clone();
                    }
                }
                let view = materialize(state.known(target), view_size, caches, target);
                views[target] = Some((generation, view.clone()));
                view
            }
            Backend::Oracle(state) => materialize(state.known(target), view_size, caches, target),
        }
    }

    /// True when every view carries the freshest epoch of every
    /// advertisement — the regime in which `mesh_view` (unbounded)
    /// equals the omniscient snapshot.
    pub fn converged(&self) -> bool {
        match &self.backend {
            Backend::Delta { state, .. } => state.converged(),
            Backend::Oracle(state) => state.converged(),
        }
    }

    /// Epidemic rounds run so far.
    pub fn rounds_run(&self) -> u64 {
        match &self.backend {
            Backend::Delta { state, .. } => state.rounds_run(),
            Backend::Oracle(state) => state.rounds_run(),
        }
    }

    /// The configured view bound.
    pub fn view_size(&self) -> u32 {
        self.view_size
    }
}

/// Shared view materialization over either backend's `known` iterator:
/// bounded deterministic selection (largest advertisement first, ties to
/// the lower device id), ascending-holder output, stale digests
/// retracted against the live `caches`.
fn materialize<'a>(
    known: impl Iterator<Item = (usize, u64, &'a PeerCacheSource)>,
    view_size: u32,
    caches: &[&LayerCache],
    target: usize,
) -> Vec<(RegistryId, PeerCacheSource)> {
    let mut candidates: Vec<(usize, &PeerCacheSource)> = known
        .filter(|&(holder, _, ad)| holder != target && !ad.is_empty())
        .map(|(holder, _, ad)| (holder, ad))
        .collect();
    // Deterministic bounded selection: prefer the holders advertising
    // the most layers (most likely to cover the pull), break ties on
    // the lower device id. Holders are unique, so the comparator is a
    // total order and an O(n) partial selection keeps exactly the set a
    // full sort-and-truncate would — without sorting the n - k holders
    // the bound is about to discard.
    let k = view_size as usize;
    if k == 0 {
        candidates.clear();
    } else if k < candidates.len() {
        candidates
            .select_nth_unstable_by(k - 1, |a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        candidates.truncate(k);
    }
    // Ascending holder order — the snapshot plane's order — so an
    // unbounded converged view is indistinguishable from it.
    candidates.sort_unstable_by_key(|&(holder, _)| holder);
    candidates
        .into_iter()
        .map(|(holder, ad)| {
            let mut source = ad.clone();
            for digest in ad.digests() {
                if !caches[holder].contains(digest) {
                    source.retract(digest);
                }
            }
            (peer_source_id(DeviceId(holder)), source)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::PeerPlane;
    use deep_netsim::{Bandwidth, DataSize, Seconds};
    use deep_registry::Digest;

    fn digest(tag: u8) -> Digest {
        Digest::of(&[tag])
    }

    /// Four devices: 0 and 2 warm with distinct layer sets, 1 and 3 cold.
    fn fleet() -> Vec<LayerCache> {
        let mut caches = vec![LayerCache::new(DataSize::gigabytes(8.0)); 4];
        caches[0].insert(digest(1), DataSize::megabytes(10.0));
        caches[0].insert(digest(2), DataSize::megabytes(10.0));
        caches[2].insert(digest(3), DataSize::megabytes(10.0));
        caches
    }

    fn converged_plane(caches: &[LayerCache]) -> GossipPlane {
        let mut plane = GossipPlane::new(caches.len(), u32::MAX, u32::MAX, 1, 42);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        plane.barrier_round(&refs);
        assert!(plane.converged());
        plane
    }

    #[test]
    fn converged_unbounded_view_matches_the_omniscient_snapshot() {
        let caches = fleet();
        let mut plane = converged_plane(&caches);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let snapshot_plane =
            PeerPlane::uniform(4, Bandwidth::megabits_per_sec(100.0), Seconds::ZERO);
        for target in 0..4 {
            let gossip = plane.mesh_view(&refs, target);
            let snapshot = snapshot_plane.snapshot(&refs, target);
            assert_eq!(gossip.len(), snapshot.len(), "target {target}");
            for ((gid, gsrc), (sid, ssrc)) in gossip.iter().zip(snapshot.iter()) {
                assert_eq!(gid, sid);
                assert_eq!(gsrc.holder(), ssrc.holder());
                assert_eq!(gsrc.len(), ssrc.len());
                for d in ssrc.digests() {
                    assert!(gsrc.has_blob(d));
                    assert!(gsrc.fetch_blob(d).is_ok(), "no spurious retraction");
                }
            }
        }
    }

    #[test]
    fn bounded_view_keeps_the_largest_advertisements() {
        let caches = fleet();
        let mut plane = {
            let mut p = GossipPlane::new(4, u32::MAX, 1, 1, 42);
            let refs: Vec<&LayerCache> = caches.iter().collect();
            p.barrier_round(&refs);
            p
        };
        let refs: Vec<&LayerCache> = caches.iter().collect();
        // Device 1 knows holders 0 (2 layers) and 2 (1 layer); a view of
        // one keeps only the larger advertisement.
        let view = plane.mesh_view(&refs, 1);
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].0, peer_source_id(DeviceId(0)));
        // The full view is a superset of the bounded one.
        let full = converged_plane(&caches).mesh_view(&refs, 1);
        assert_eq!(full.len(), 2);
        assert!(full.iter().any(|(id, _)| *id == view[0].0));
    }

    #[test]
    fn partial_selection_pins_the_full_sorts_view_at_every_bound() {
        // Many holders with colliding advertisement sizes: for every
        // view bound, the O(n) partial selection must keep exactly the
        // holders a stable full sort under (len desc, holder asc) keeps
        // — the PR 9 selection, pinned contents-for-contents.
        let n = 17;
        let mut caches = vec![LayerCache::new(DataSize::gigabytes(8.0)); n];
        for (holder, cache) in caches.iter_mut().enumerate().skip(1) {
            // Sizes 1..=4 repeating, so ties abound.
            for layer in 0..(1 + (holder - 1) % 4) {
                cache.insert(Digest::of(&[holder as u8, layer as u8]), DataSize::megabytes(5.0));
            }
        }
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let target = 0;
        for bound in 0..=n as u32 {
            let mut plane = GossipPlane::new(n, u32::MAX, bound, 1, 7);
            plane.barrier_round(&refs);
            assert!(plane.converged());
            let view = plane.mesh_view(&refs, target);
            // Reference: the PR 9 full sort-and-truncate.
            let mut reference: Vec<(usize, usize)> = caches
                .iter()
                .enumerate()
                .filter(|&(holder, cache)| holder != target && !cache.is_empty())
                .map(|(holder, cache)| (holder, cache.len()))
                .collect();
            reference.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            reference.truncate(bound as usize);
            reference.sort_by_key(|&(holder, _)| holder);
            assert_eq!(
                view.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                reference
                    .iter()
                    .map(|&(holder, _)| peer_source_id(DeviceId(holder)))
                    .collect::<Vec<_>>(),
                "bound {bound}"
            );
            for ((_, src), &(holder, len)) in view.iter().zip(&reference) {
                assert_eq!(src.holder(), Some(DeviceId(holder)));
                assert_eq!(src.len(), len, "bound {bound} holder {holder}");
            }
        }
    }

    #[test]
    fn cached_views_replay_until_an_epoch_moves_then_rebuild() {
        let caches = fleet();
        let mut plane = converged_plane(&caches);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let first = plane.mesh_view(&refs, 1);
        // A barrier over the unchanged fleet moves no epoch: the cached
        // view replays bit-identically.
        plane.barrier_round(&refs);
        let replay = plane.mesh_view(&refs, 1);
        assert_eq!(first.len(), replay.len());
        for ((id_a, src_a), (id_b, src_b)) in first.iter().zip(replay.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(src_a.holder(), src_b.holder());
            assert_eq!(src_a.len(), src_b.len());
        }
        // An out-of-band eviction + readvertise moves the generation;
        // the next materialization must see the fresh state, not the
        // cached copy.
        let mut caches = fleet();
        caches[0].evict_to(DataSize::ZERO);
        plane.readvertise(DeviceId(0), &caches[0]);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        plane.barrier_round(&refs);
        let fresh = plane.mesh_view(&refs, 1);
        assert!(
            fresh.iter().all(|(id, _)| *id != peer_source_id(DeviceId(0))),
            "cached view outlived the epoch movement"
        );
    }

    #[test]
    fn stale_advertisement_is_materialized_as_a_retraction_not_a_serve() {
        let mut caches = fleet();
        let mut plane = converged_plane(&caches);
        // Holder 0 loses a layer *after* the barrier: remote views still
        // advertise it, but materialization must retract the dead digest
        // so the fetch fails over instead of serving vanished bytes.
        caches[0].evict_to(DataSize::megabytes(10.0));
        let survivor: Vec<Digest> = caches[0].digests().cloned().collect();
        assert_eq!(survivor.len(), 1);
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let view = plane.mesh_view(&refs, 1);
        let holder0 = &view.iter().find(|(id, _)| *id == peer_source_id(DeviceId(0))).unwrap().1;
        assert_eq!(holder0.len(), 2, "stale ad still advertises both layers");
        for tag in [1u8, 2] {
            let d = digest(tag);
            assert!(holder0.has_blob(&d), "stale ad keeps answering has_blob");
            if survivor.contains(&d) {
                assert!(holder0.fetch_blob(&d).is_ok());
            } else {
                assert!(holder0.fetch_blob(&d).is_err(), "evicted layer fails over");
            }
        }
    }

    #[test]
    fn readvertisement_ages_the_evicted_layer_out_of_remote_views() {
        let mut caches = fleet();
        let mut plane = converged_plane(&caches);
        caches[0].evict_to(DataSize::ZERO);
        plane.readvertise(DeviceId(0), &caches[0]);
        assert!(!plane.converged(), "stale epoch copies remain remote");
        let refs: Vec<&LayerCache> = caches.iter().collect();
        plane.barrier_round(&refs);
        assert!(plane.converged());
        let view = plane.mesh_view(&refs, 1);
        assert!(
            view.iter().all(|(id, _)| *id != peer_source_id(DeviceId(0))),
            "empty holder no longer advertised anywhere"
        );
    }

    #[test]
    fn oracle_backend_materializes_identical_views() {
        let caches = fleet();
        let refs: Vec<&LayerCache> = caches.iter().collect();
        let mut delta = GossipPlane::new(4, 2, 2, 1, 42);
        let mut reference = GossipPlane::new_oracle(4, 2, 2, 1, 42);
        for _ in 0..3 {
            delta.barrier_round(&refs);
            reference.barrier_round(&refs);
            assert_eq!(delta.converged(), reference.converged());
            for target in 0..4 {
                let d = delta.mesh_view(&refs, target);
                let r = reference.mesh_view(&refs, target);
                assert_eq!(d.len(), r.len(), "target {target}");
                for ((id_d, src_d), (id_r, src_r)) in d.iter().zip(r.iter()) {
                    assert_eq!(id_d, id_r);
                    assert_eq!(src_d.holder(), src_r.holder());
                    assert_eq!(src_d.len(), src_r.len());
                }
            }
        }
    }
}
