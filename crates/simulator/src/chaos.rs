//! Scripted chaos events the executor fires on its wave clock.
//!
//! [`crate::execute_with_events`] replays a timeline of [`ChaosEvent`]s
//! alongside a deployment: every event whose scripted time has been
//! reached fires at the next wave barrier, *after* the wave's peer
//! gossip round — so a cache eviction lands as a stale advertisement
//! the wave's pulls must fail over from mid-pull, exactly the incident
//! shape a soak test wants to survive. Source outages and degradations
//! are not chaos events: they are [`deep_registry::OutageWindow`]s on
//! the testbed's fault model, gated by the same clock.
//!
//! Timelines come from scenario files (the `deep-scenario` crate) or
//! are built directly in tests.

use deep_netsim::{DataSize, DeviceId, Seconds};

/// One scripted event on the executor clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// Fires at the first wave barrier whose clock has reached `at`.
    pub at: Seconds,
    pub kind: ChaosKind,
}

/// What a [`ChaosEvent`] does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosKind {
    /// Storage pressure on one device: LRU-evict its layer cache down
    /// to `keep` bytes. Evicted layers are *retracted* from the wave's
    /// peer snapshots — peers that advertised them at the gossip round
    /// now fail the fetch, and sessions fail over mid-pull.
    CachePressure { device: DeviceId, keep: DataSize },
    /// Delete one tag from the regional registry's catalog (an operator
    /// un-publishing an image), orphaning its unique layers for the
    /// next [`ChaosKind::RegistryGc`] pass.
    DeleteTag { repository: String, tag: String },
    /// Run mark-and-sweep garbage collection on the regional registry
    /// (`registry garbage-collect` mid-soak). The swept count lands in
    /// the trace.
    RegistryGc,
}

impl ChaosEvent {
    /// Cache pressure on `device` down to `keep` bytes at time `at`.
    pub fn cache_pressure(at: Seconds, device: DeviceId, keep: DataSize) -> Self {
        ChaosEvent { at, kind: ChaosKind::CachePressure { device, keep } }
    }

    /// Delete `repository:tag` from the regional registry at time `at`.
    pub fn delete_tag(at: Seconds, repository: &str, tag: &str) -> Self {
        ChaosEvent {
            at,
            kind: ChaosKind::DeleteTag { repository: repository.to_string(), tag: tag.to_string() },
        }
    }

    /// Garbage-collect the regional registry at time `at`.
    pub fn registry_gc(at: Seconds) -> Self {
        ChaosEvent { at, kind: ChaosKind::RegistryGc }
    }

    /// The device the event acts on (`DeviceId(0)` for registry-side
    /// events — the trace's convention for fleet-wide records).
    pub fn device(&self) -> DeviceId {
        match &self.kind {
            ChaosKind::CachePressure { device, .. } => *device,
            ChaosKind::DeleteTag { .. } | ChaosKind::RegistryGc => DeviceId(0),
        }
    }
}
