//! Simulated edge devices.
//!
//! A device is the paper's `d_j = (CORE_j, CPU_j, MEM_j, STOR_j)` plus the
//! measured quantities a real testbed adds: per-phase power draw, a
//! per-microservice architecture factor (an amd64-tuned ML stack does not
//! run at nominal speed on an arm64 board — and a hardware video codec can
//! run *faster* than the MI/s ratio suggests), image extraction bandwidth
//! (SD cards hurt), and a layer cache bounded by the device's storage.

use deep_dataflow::{DeviceClass, Mi, Mips};
use deep_energy::{DevicePowerModel, Watts};
use deep_netsim::{Bandwidth, DataSize, DeviceId, Seconds};
use deep_registry::{LayerCache, Platform};
use std::collections::HashMap;

/// A simulated edge device.
#[derive(Debug, Clone)]
pub struct SimDevice {
    pub id: DeviceId,
    pub name: String,
    pub arch: Platform,
    /// Continuum tier: edge (the default) or cloud.
    pub class: DeviceClass,
    pub cores: u32,
    /// Nominal speed `CPU_j` in MI/s.
    pub mips: Mips,
    pub memory: DataSize,
    pub storage: DataSize,
    /// Per-phase power draw (process entry is the *default*; see
    /// `process_power`).
    pub power: DevicePowerModel,
    /// Measured per-microservice processing draw overriding the default
    /// (the output of the paper's microservice requirement analysis).
    process_power: HashMap<String, Watts>,
    /// Default multiplier on nominal processing time for this architecture.
    base_speed_factor: f64,
    /// Per-microservice overrides of the speed factor.
    speed_factor: HashMap<String, f64>,
    /// Disk bandwidth for layer extraction.
    pub extract_bw: Bandwidth,
    /// Layer cache (bounded by storage).
    pub cache: LayerCache,
}

impl SimDevice {
    /// Create a device with a neutral speed model.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: DeviceId,
        name: &str,
        arch: Platform,
        cores: u32,
        mips: Mips,
        memory: DataSize,
        storage: DataSize,
        power: DevicePowerModel,
        extract_bw: Bandwidth,
    ) -> Self {
        SimDevice {
            id,
            name: name.to_string(),
            arch,
            class: DeviceClass::Edge,
            cores,
            mips,
            memory,
            storage,
            power,
            process_power: HashMap::new(),
            base_speed_factor: 1.0,
            speed_factor: HashMap::new(),
            extract_bw,
            cache: LayerCache::new(storage),
        }
    }

    /// Set the default architecture speed factor (>1 = slower than
    /// nominal).
    pub fn with_base_speed_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0, "speed factor must be positive");
        self.base_speed_factor = f;
        self
    }

    /// Mark the device as a cloud-tier server.
    pub fn with_class(mut self, class: DeviceClass) -> Self {
        self.class = class;
        self
    }

    /// The default architecture speed factor (what
    /// [`SimDevice::with_base_speed_factor`] set) — cloning an archetype
    /// into a synthetic fleet carries it over.
    pub fn base_speed_factor(&self) -> f64 {
        self.base_speed_factor
    }

    /// Override the speed factor for one microservice.
    pub fn set_speed_factor(&mut self, microservice: &str, f: f64) {
        assert!(f > 0.0, "speed factor must be positive");
        self.speed_factor.insert(microservice.to_string(), f);
    }

    /// Override the processing power draw for one microservice.
    pub fn set_process_power(&mut self, microservice: &str, w: Watts) {
        self.process_power.insert(microservice.to_string(), w);
    }

    /// Effective speed factor for a microservice.
    ///
    /// Keys may be scoped as `"application/microservice"`; lookup tries the
    /// exact key first, then the bare microservice name after the last
    /// `/`, then the device default. Scoping matters because the two
    /// case-study apps share microservice names ("ha-train" exists in
    /// both) with different measured behaviour.
    pub fn speed_factor(&self, microservice: &str) -> f64 {
        if let Some(f) = self.speed_factor.get(microservice) {
            return *f;
        }
        if let Some((_, bare)) = microservice.rsplit_once('/') {
            if let Some(f) = self.speed_factor.get(bare) {
                return *f;
            }
        }
        self.base_speed_factor
    }

    /// Processing time `Tp = CPU(m_i)/CPU_j × factor(m_i)`.
    pub fn processing_time(&self, microservice: &str, cpu: Mi) -> Seconds {
        (cpu / self.mips).scale(self.speed_factor(microservice))
    }

    /// Processing power draw for a microservice (measured override or the
    /// device default). Scoped-key lookup as in
    /// [`SimDevice::speed_factor`].
    pub fn process_watts(&self, microservice: &str) -> Watts {
        if let Some(w) = self.process_power.get(microservice) {
            return *w;
        }
        if let Some((_, bare)) = microservice.rsplit_once('/') {
            if let Some(w) = self.process_power.get(bare) {
                return *w;
            }
        }
        self.power.process_watts
    }

    /// Energy for one microservice run with the given phase durations,
    /// using the per-microservice processing draw:
    /// `EC = P_deploy·Td + P_transfer·Tc + P_proc(m)·Tp + P_static·CT`.
    pub fn energy(
        &self,
        microservice: &str,
        td: Seconds,
        tc: Seconds,
        tp: Seconds,
    ) -> deep_energy::Joules {
        let ct = td + tc + tp;
        self.power.deploy_watts * td
            + self.power.transfer_watts * tc
            + self.process_watts(microservice) * tp
            + self.power.static_watts * ct
    }

    /// Admission check against the paper's requirement tuple, including
    /// the continuum-class constraint.
    pub fn admits(&self, req: &deep_dataflow::Requirements) -> bool {
        req.fits_class(self.cores, self.memory, self.storage, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> SimDevice {
        SimDevice::new(
            DeviceId(0),
            "medium",
            Platform::Amd64,
            8,
            Mips::new(40_000.0),
            DataSize::gigabytes(16.0),
            DataSize::gigabytes(64.0),
            DevicePowerModel::per_phase(
                Watts::new(0.3),
                Watts::new(0.1),
                Watts::new(0.1),
                Watts::new(8.0),
            ),
            Bandwidth::megabytes_per_sec(12.6),
        )
    }

    #[test]
    fn processing_time_uses_speed_factor() {
        let mut d = device().with_base_speed_factor(2.0);
        let cpu = Mi::new(4_900_000.0);
        assert!((d.processing_time("x", cpu).as_f64() - 245.0).abs() < 1e-9);
        d.set_speed_factor("x", 1.0);
        assert!((d.processing_time("x", cpu).as_f64() - 122.5).abs() < 1e-9);
        // Other microservices keep the base factor.
        assert!((d.processing_time("y", cpu).as_f64() - 245.0).abs() < 1e-9);
    }

    #[test]
    fn process_power_overrides() {
        let mut d = device();
        assert_eq!(d.process_watts("anything"), Watts::new(8.0));
        d.set_process_power("ha-train", Watts::new(22.6));
        assert_eq!(d.process_watts("ha-train"), Watts::new(22.6));
        assert_eq!(d.process_watts("other"), Watts::new(8.0));
    }

    #[test]
    fn energy_accounts_all_phases() {
        let mut d = device();
        d.set_process_power("m", Watts::new(10.0));
        let e = d.energy("m", Seconds::new(100.0), Seconds::new(10.0), Seconds::new(50.0));
        // 0.1*100 + 0.1*10 + 10*50 + 0.3*160 = 10 + 1 + 500 + 48 = 559.
        assert!((e.as_f64() - 559.0).abs() < 1e-9);
    }

    #[test]
    fn admission_respects_requirements() {
        let d = device();
        let fits = deep_dataflow::Requirements::new(
            4,
            Mi::new(1.0),
            DataSize::gigabytes(8.0),
            DataSize::gigabytes(32.0),
        );
        assert!(d.admits(&fits));
        let too_many_cores = deep_dataflow::Requirements::new(
            16,
            Mi::new(1.0),
            DataSize::gigabytes(1.0),
            DataSize::gigabytes(1.0),
        );
        assert!(!d.admits(&too_many_cores));
    }

    #[test]
    fn cache_bounded_by_storage() {
        let d = device();
        assert_eq!(d.cache.capacity(), DataSize::gigabytes(64.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_factor_rejected() {
        device().with_base_speed_factor(0.0);
    }
}
