//! Seeded multiplicative run-to-run noise.
//!
//! Table II reports ranges, not points — real testbeds jitter. The
//! simulator reproduces that with a seeded uniform multiplicative factor
//! `U[1 - amplitude, 1 + amplitude]` applied per phase duration. Seeds make
//! every experiment bit-for-bit reproducible.

use deep_netsim::Seconds;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A deterministic jitter source.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: ChaCha8Rng,
    amplitude: f64,
}

impl Jitter {
    /// Jitter with the given relative amplitude (e.g. `0.02` = ±2 %).
    pub fn new(seed: u64, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
        Jitter { rng: ChaCha8Rng::seed_from_u64(seed), amplitude }
    }

    /// Zero-amplitude jitter: `apply` is the identity.
    pub fn none() -> Self {
        Jitter::new(0, 0.0)
    }

    /// The configured amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Draw the next multiplicative factor.
    pub fn factor(&mut self) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        self.rng.gen_range(1.0 - self.amplitude..=1.0 + self.amplitude)
    }

    /// Apply jitter to a duration.
    pub fn apply(&mut self, t: Seconds) -> Seconds {
        t.scale(self.factor())
    }

    /// Draw a uniform sample in `[0, 1)` (used for CDN PoP selection).
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Jitter::new(7, 0.05);
        let mut b = Jitter::new(7, 0.05);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jitter::new(1, 0.05);
        let mut b = Jitter::new(2, 0.05);
        let same = (0..50).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 5);
    }

    #[test]
    fn factors_bounded_by_amplitude() {
        let mut j = Jitter::new(3, 0.03);
        for _ in 0..1000 {
            let f = j.factor();
            assert!((0.97..=1.03).contains(&f), "{f}");
        }
    }

    #[test]
    fn none_is_identity() {
        let mut j = Jitter::none();
        let t = Seconds::new(123.456);
        assert_eq!(j.apply(t), t);
        assert_eq!(j.factor(), 1.0);
    }

    #[test]
    fn applied_duration_scales() {
        let mut j = Jitter::new(9, 0.02);
        let t = Seconds::new(100.0);
        let out = j.apply(t);
        assert!((98.0..=102.0).contains(&out.as_f64()));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut j = Jitter::new(4, 0.1);
        for _ in 0..100 {
            let u = j.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn amplitude_validated() {
        Jitter::new(0, 1.5);
    }
}
