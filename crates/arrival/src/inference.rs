//! Online outage inference: watch realized pull failures per source
//! and synthesize [`OutageWindow`]s the next repair can price, closing
//! the loop for operators whose scripted windows are *not* known ahead
//! of time.
//!
//! The rule is deliberately simple — `threshold` consecutive fatal
//! pulls on one source opens a dark window from "now" over a horizon,
//! and a single successful serve from that source clears it. It is the
//! streak detector a registry health-checker would run, not a
//! statistical estimator; the point is feeding *something* back into
//! the game so a blind scheduler stops routing into a dead registry.

use deep_netsim::{RegistryId, Seconds};
use deep_registry::{FaultModel, OutageWindow};
use deep_simulator::RunReport;
use std::collections::BTreeMap;

/// Streak-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageInference {
    /// Consecutive fatal pulls on one source before a window is
    /// inferred.
    pub threshold: usize,
    /// How long an inferred window is assumed to last; effectively
    /// "until proven otherwise" at the default.
    pub horizon: Seconds,
}

impl Default for OutageInference {
    fn default() -> Self {
        OutageInference { threshold: 3, horizon: Seconds::new(1e9) }
    }
}

/// Running per-source failure streaks and the windows inferred so far.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InferenceState {
    consecutive: BTreeMap<RegistryId, usize>,
    inferred: BTreeMap<RegistryId, OutageWindow>,
}

impl InferenceState {
    /// The windows currently inferred, source-ordered.
    pub fn windows(&self) -> Vec<OutageWindow> {
        self.inferred.values().cloned().collect()
    }

    /// Fold one realized job report into the streaks at executor time
    /// `now`. Returns `true` when the inferred window set changed (the
    /// caller should rebuild the scheduler's fault view).
    pub fn observe(&mut self, cfg: &OutageInference, report: &RunReport, now: Seconds) -> bool {
        let mut changed = false;
        for m in &report.microservices {
            for &source in &m.failed_sources {
                let streak = self.consecutive.entry(source).or_insert(0);
                *streak += 1;
                if *streak >= cfg.threshold && !self.inferred.contains_key(&source) {
                    self.inferred.insert(source, OutageWindow::dark(source, now, cfg.horizon));
                    changed = true;
                }
            }
            // A source that actually served bytes is demonstrably up:
            // reset its streak and retract any window pinned on it.
            for pull in &m.sources {
                self.consecutive.insert(pull.source, 0);
                if self.inferred.remove(&pull.source).is_some() {
                    changed = true;
                }
            }
        }
        changed
    }

    /// The scheduler-visible fault model: `base` plus every inferred
    /// window. `base` is the operator's prior (rates, any windows they
    /// *did* script), kept pristine so retracting an inference never
    /// loses scripted knowledge.
    pub fn apply(&self, base: &FaultModel) -> FaultModel {
        let mut model = base.clone();
        for window in self.inferred.values() {
            model = model.with_window(*window);
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_energy::Joules;
    use deep_netsim::{DataSize, DeviceId, Seconds};
    use deep_registry::SourcePull;
    use deep_simulator::{MicroserviceMetrics, Placement, RegistryChoice, RunReport};

    fn report(failed: &[RegistryId], served: &[RegistryId]) -> RunReport {
        RunReport {
            application: "t".into(),
            microservices: vec![MicroserviceMetrics {
                name: "m".into(),
                placement: Placement { registry: RegistryChoice::Hub, device: DeviceId(0) },
                td: Seconds::ZERO,
                tc: Seconds::ZERO,
                tp: Seconds::ZERO,
                downloaded_mb: 0.0,
                sources: served
                    .iter()
                    .map(|&source| SourcePull { source, downloaded: DataSize::ZERO, layers: 1 })
                    .collect(),
                failed_sources: failed.to_vec(),
                backoff_total: Seconds::ZERO,
                energy: Joules::ZERO,
                metered_energy: Joules::ZERO,
            }],
            makespan: Seconds::ZERO,
        }
    }

    #[test]
    fn a_streak_opens_a_window_and_a_serve_clears_it() {
        let cfg = OutageInference { threshold: 3, horizon: Seconds::new(100.0) };
        let mut state = InferenceState::default();
        let hub = RegistryId(0);
        assert!(!state.observe(&cfg, &report(&[hub], &[]), Seconds::new(1.0)));
        assert!(!state.observe(&cfg, &report(&[hub], &[]), Seconds::new(2.0)));
        assert!(
            state.observe(&cfg, &report(&[hub], &[]), Seconds::new(3.0)),
            "third strike infers"
        );
        let windows = state.windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].source, hub);
        assert!(windows[0].is_dark());
        assert!(windows[0].active_at(Seconds::new(50.0)));
        // The inferred window lands in the scheduler's fault view.
        let model = state.apply(&FaultModel::reliable());
        assert!(model.dark_at(hub, Seconds::new(50.0)));
        // One successful serve retracts the inference.
        assert!(state.observe(&cfg, &report(&[], &[hub]), Seconds::new(60.0)));
        assert!(state.windows().is_empty());
        assert!(!state.apply(&FaultModel::reliable()).has_windows());
    }

    #[test]
    fn streaks_are_per_source_and_interleaving_success_resets() {
        let cfg = OutageInference { threshold: 2, horizon: Seconds::new(10.0) };
        let mut state = InferenceState::default();
        let (a, b) = (RegistryId(1), RegistryId(2));
        state.observe(&cfg, &report(&[a, b], &[]), Seconds::ZERO);
        // `a` serves successfully before striking again: streak resets,
        // so its second failure alone cannot cross the threshold.
        state.observe(&cfg, &report(&[], &[a]), Seconds::new(1.0));
        assert!(state.observe(&cfg, &report(&[a, b], &[]), Seconds::new(2.0)));
        let windows = state.windows();
        assert_eq!(windows.len(), 1, "only b crossed the threshold");
        assert_eq!(windows[0].source, b);
    }
}
