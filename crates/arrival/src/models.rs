//! Arrival processes: turning `[[arrivals]]` specs into a concrete,
//! seeded request timeline.
//!
//! Each `[[arrivals]]` entry samples its own splitmix64 stream (the
//! same generator the registry fault plans draw from, seeded with the
//! scenario seed plus the entry's gamma increment), so the arrival
//! timeline is deterministic per scenario, identical across
//! replications, and independent of the per-replication fault seed
//! stream `seed + r`.

use deep_netsim::Seconds;
use deep_scenario::{ArrivalModel, Scenario};

/// splitmix64 (Steele et al.): the workspace's seed-stream generator.
/// `deep-registry` keeps its copy private, so the arrival plane carries
/// its own — the constants are the published ones, bit-for-bit.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from the top 53 bits.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One deployment request on the executor clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time in executor seconds ([`Scenario::time_scale`]
    /// applied, like scripted event times).
    pub time: Seconds,
    /// Warm-up arrival: executed (it loads caches and queues) but
    /// excluded from steady-state statistics.
    pub warmup: bool,
    /// Index of the `[[arrivals]]` entry that emitted it.
    pub stream: usize,
    /// Position within that stream.
    pub index: usize,
}

/// Sample the scenario's merged arrival timeline: every `[[arrivals]]`
/// stream drawn independently, merged into one time-ordered request
/// list (stable on ties: file order, then stream position). An
/// arrival-free scenario yields an empty list — the plane treats that
/// as a single measured request at `t = 0`, the one-shot soak.
pub fn sample_arrivals(scenario: &Scenario) -> Vec<Arrival> {
    let mut out = Vec::new();
    for (stream, spec) in scenario.arrivals.iter().enumerate() {
        // One independent stream per entry: splitmix64's gamma jump
        // keeps entries decorrelated even under adjacent seeds.
        let mut state =
            scenario.seed.wrapping_add((stream as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let times: Vec<f64> = match &spec.model {
            ArrivalModel::Poisson { rate } => {
                let mut t = 0.0;
                (0..spec.count)
                    .map(|_| {
                        // Exponential inter-arrival by inversion; the
                        // unit draw never reaches 1.0, so ln stays
                        // finite.
                        t += -(1.0 - unit(&mut state)).ln() / rate;
                        t
                    })
                    .collect()
            }
            ArrivalModel::Deterministic { interval } => {
                (0..spec.count).map(|k| k as f64 * interval).collect()
            }
            ArrivalModel::Trace { times } => times.clone(),
        };
        for (index, t) in times.into_iter().enumerate() {
            out.push(Arrival {
                time: Seconds::new(t * scenario.time_scale),
                warmup: index < spec.warmup,
                stream,
                index,
            });
        }
    }
    out.sort_by(|a, b| {
        (a.time.as_f64(), a.stream, a.index)
            .partial_cmp(&(b.time.as_f64(), b.stream, b.index))
            .expect("arrival times are finite")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_scenario::Scenario;

    fn scenario(arrivals: &str) -> Scenario {
        Scenario::parse(&format!("name = \"a\"\napp = \"text-processing\"\nseed = 9\n{arrivals}"))
            .unwrap()
    }

    #[test]
    fn poisson_streams_are_seeded_and_monotone() {
        let s =
            scenario("[[arrivals]]\nmodel = \"poisson\"\nrate = 0.01\ncount = 20\nwarmup = 5\n");
        let a = sample_arrivals(&s);
        let b = sample_arrivals(&s);
        assert_eq!(a, b, "same seed, same timeline");
        assert_eq!(a.len(), 20);
        assert!(a.windows(2).all(|w| w[0].time.as_f64() <= w[1].time.as_f64()));
        assert!(a[0].time.as_f64() > 0.0, "first gap is exponential, not zero");
        assert_eq!(a.iter().filter(|x| x.warmup).count(), 5);
        assert!(a[..5].iter().all(|x| x.warmup), "warm-up phase leads");
        // A different seed moves every arrival.
        let other = sample_arrivals(&Scenario { seed: 10, ..s });
        assert_ne!(a, other);
        // The mean gap is roughly 1/rate = 100 s (loose law-of-large
        // numbers bound; the stream is only 20 draws).
        let mean_gap = a.last().unwrap().time.as_f64() / 20.0;
        assert!((20.0..500.0).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn deterministic_and_trace_streams_are_exact_and_scaled() {
        let s = scenario(
            "time_scale = 0.5\n\
             [[arrivals]]\nmodel = \"deterministic\"\ninterval = 100.0\ncount = 3\n\
             [[arrivals]]\nmodel = \"trace\"\ntimes = [50.0, 150.0]\nwarmup = 1\n",
        );
        let a = sample_arrivals(&s);
        let times: Vec<f64> = a.iter().map(|x| x.time.as_f64()).collect();
        // Streams merge time-ordered, scaled by time_scale = 0.5:
        // deterministic {0, 50, 100}, trace {25, 75}.
        assert_eq!(times, vec![0.0, 25.0, 50.0, 75.0, 100.0]);
        assert_eq!(a[1].stream, 1);
        assert!(a[1].warmup, "the trace's first arrival is warm-up");
        assert!(!a[3].warmup);
    }

    #[test]
    fn simultaneous_arrivals_keep_file_order() {
        let s = scenario(
            "[[arrivals]]\nmodel = \"trace\"\ntimes = [10.0]\n\
             [[arrivals]]\nmodel = \"trace\"\ntimes = [10.0]\n",
        );
        let a = sample_arrivals(&s);
        assert_eq!((a[0].stream, a[1].stream), (0, 1));
    }

    #[test]
    fn no_arrival_section_samples_empty() {
        let s = scenario("");
        assert!(sample_arrivals(&s).is_empty());
    }
}
