//! The arrival plane: an event-driven online executor timeline that
//! admits deployment requests mid-flight and re-enters the mesh game
//! incrementally on each admission.
//!
//! One plane run drives the scenario's [`OnlineExecutor`] per
//! replication: arrivals advance the clock, each admission prices the
//! game *at the current clock* (windows that have passed no longer
//! scare the scheduler; windows ahead do) and warm-starts best-response
//! dynamics from the incumbent equilibrium via
//! [`DeepScheduler::incremental_repair`]. Queued jobs interleave at
//! wave barriers — the executor's wave clock is the only admission
//! point during execution; idle gaps become explicit barriers
//! ([`OnlineExecutor::fire_due_events`]) so gap chaos is priced, not
//! discovered one wave late.
//!
//! **When repair is allowed.** The wave-route repair game prices
//! physical route transfer time, so it can re-balance contention but
//! cannot see the fault landscape move. Whenever the scheduler-visible
//! landscape changes between solves — a scripted outage window opens or
//! clears, or online inference adds/retracts a window — the incumbent
//! is invalidated and the next admission re-solves the full game.
//! Repair is the fast path for the common case: sustained arrivals
//! into an unchanged landscape.

use crate::inference::{InferenceState, OutageInference};
use crate::metrics::{ArrivalOutcome, JobRecord, RepairStats};
use crate::models::{sample_arrivals, Arrival};
use deep_core::{scenario_scheduler, scenario_testbed, DeepScheduler, Scheduler};
use deep_dataflow::Application;
use deep_netsim::Seconds;
use deep_registry::FaultModel;
use deep_scenario::Scenario;
use deep_simulator::{plan_waves, OnlineExecutor, Schedule, Testbed};
use rayon::prelude::*;

/// Deviation budget an [`ArrivalPlane`] grants each incremental repair
/// before it falls back to a full re-solve.
pub const DEFAULT_DEVIATION_BUDGET: usize = 16;

/// How the plane re-equilibrates on each admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepairPolicy {
    /// Re-solve the full game from scratch on every admission — the
    /// periodic-re-solve baseline.
    Full,
    /// Warm-start best-response dynamics from the incumbent
    /// equilibrium, falling back to a full re-solve past `budget`
    /// unilateral deviations (or whenever the fault landscape moved).
    Incremental { budget: usize },
}

impl RepairPolicy {
    /// Stable name for reports and PERF tables.
    pub fn name(&self) -> &'static str {
        match self {
            RepairPolicy::Full => "full-resolve",
            RepairPolicy::Incremental { .. } => "incremental-repair",
        }
    }
}

/// Configuration of one online run over a scenario's arrival timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalPlane {
    /// Re-equilibration policy per admission.
    pub policy: RepairPolicy,
    /// Strip scripted outage windows from the *scheduler's* view (the
    /// executor still injects them): the operator flying blind.
    /// Pair with `inference` to measure online window recovery.
    pub blind: bool,
    /// Streak-detect fatal pulls and feed inferred windows back into
    /// the next admission's pricing.
    pub inference: Option<OutageInference>,
}

impl Default for ArrivalPlane {
    fn default() -> Self {
        ArrivalPlane {
            policy: RepairPolicy::Incremental { budget: DEFAULT_DEVIATION_BUDGET },
            blind: false,
            inference: None,
        }
    }
}

/// A request admitted (schedule in hand) but not yet executed.
struct Pending {
    arrival: Arrival,
    schedule: Schedule,
    admitted: Seconds,
    queue_depth: usize,
    repair: RepairStats,
}

/// True when any scripted-window boundary (start or end) lies in
/// `(from, to]`: the priced landscape changed, so an equilibrium from
/// before the boundary may be stale.
fn boundary_crossed(model: &FaultModel, from: Seconds, to: Seconds) -> bool {
    model.windows().iter().any(|w| {
        let (start, end) = (w.start.as_f64(), w.end().as_f64());
        (start > from.as_f64() && start <= to.as_f64())
            || (end > from.as_f64() && end <= to.as_f64())
    })
}

/// Run the plane over every replication of `scenario`. Replications run
/// in parallel; jobs come back replication-major in arrival order, so
/// the outcome is deterministic (up to wall-clock repair timings).
pub fn run_plane(scenario: &Scenario, plane: &ArrivalPlane) -> ArrivalOutcome {
    let mut arrivals = sample_arrivals(scenario);
    if arrivals.is_empty() {
        // No [[arrivals]] section: the plane degenerates to the
        // one-shot soak — a single measured request at t = 0.
        arrivals.push(Arrival { time: Seconds::ZERO, warmup: false, stream: 0, index: 0 });
    }
    let jobs: Vec<Vec<JobRecord>> = (0..scenario.replications)
        .into_par_iter()
        .map(|r| run_replication(scenario, plane, &arrivals, r))
        .collect();
    ArrivalOutcome {
        scenario: scenario.name.clone(),
        policy: plane.policy.name().to_string(),
        jobs: jobs.into_iter().flatten().collect(),
    }
}

/// The per-replication state the admission path threads through.
struct Replication {
    incumbent: Option<(Schedule, Seconds)>,
    queue: Vec<Pending>,
    next: usize,
}

impl Replication {
    /// Admit every arrival due at the executor's clock: invalidate the
    /// incumbent if a window boundary passed since it was solved, then
    /// price a schedule per request and enqueue it.
    fn admit(
        &mut self,
        scenario: &Scenario,
        plane: &ArrivalPlane,
        app: &Application,
        tb: &Testbed,
        exec: &OnlineExecutor,
        arrivals: &[Arrival],
    ) {
        while self.next < arrivals.len()
            && arrivals[self.next].time.as_f64() <= exec.clock().as_f64()
        {
            if let Some((_, solved_at)) = self.incumbent {
                if boundary_crossed(&tb.fault_model, solved_at, exec.clock()) {
                    self.incumbent = None;
                }
            }
            let incumbent = self.incumbent.as_ref().map(|(s, _)| s);
            let (schedule, repair) = solve(scenario, plane, app, tb, exec, incumbent);
            self.incumbent = Some((schedule.clone(), exec.clock()));
            let arrival = arrivals[self.next].clone();
            self.next += 1;
            let queue_depth = self.queue.len() + 1;
            self.queue.push(Pending {
                arrival,
                schedule,
                admitted: exec.clock(),
                queue_depth,
                repair,
            });
        }
    }
}

fn run_replication(
    scenario: &Scenario,
    plane: &ArrivalPlane,
    arrivals: &[Arrival],
    replication: u32,
) -> Vec<JobRecord> {
    let mut tb = scenario_testbed(scenario);
    let app = scenario.application();
    let cfg = scenario.executor_config(replication);
    let events = scenario.chaos_events();
    // The executor samples its fault plan from the testbed up front;
    // stripping windows *afterwards* blinds only the scheduler's view,
    // never the injection.
    let mut exec = OnlineExecutor::new(&tb, &cfg, &events);
    if plane.blind {
        tb.fault_model = tb.fault_model.without_windows();
    }
    let visible_base = tb.fault_model.clone();
    let waves = plan_waves(&app, cfg.staged_deployment);
    let mut inference = InferenceState::default();
    let mut state = Replication { incumbent: None, queue: Vec::new(), next: 0 };
    let mut records = Vec::new();

    while state.next < arrivals.len() || !state.queue.is_empty() {
        if state.queue.is_empty() {
            // Idle: jump the clock to the next request and make the gap
            // an explicit barrier so pending chaos is priced.
            exec.advance_to(arrivals[state.next].time);
            exec.fire_due_events(&mut tb).expect("scripted chaos applies");
            state.admit(scenario, plane, &app, &tb, &exec, arrivals);
            continue;
        }
        let mut pending = state.queue.remove(0);
        // Queued schedules can go stale while earlier jobs execute: if
        // a window boundary passed between admission and now, re-solve
        // the full game before committing pulls to a re-priced mesh.
        if boundary_crossed(&tb.fault_model, pending.admitted, exec.clock()) {
            let (schedule, repair) = solve(scenario, plane, &app, &tb, &exec, None);
            state.incumbent = Some((schedule.clone(), exec.clock()));
            pending.schedule = schedule;
            pending.repair.micros += repair.micros;
            pending.repair.deviations += repair.deviations;
            pending.repair.fell_back |= repair.fell_back;
            pending.repair.full_solve |= repair.full_solve;
        }
        let started = exec.clock();
        let mut run = exec.begin_job(&app);
        for (w, wave) in waves.iter().enumerate() {
            // Wave barrier: requests that arrived while the previous
            // wave executed are admitted (and priced) here, mid-flight.
            state.admit(scenario, plane, &app, &tb, &exec, arrivals);
            exec.run_wave(&mut tb, &app, &pending.schedule, wave, w, &mut run)
                .expect("arrival plane executes");
        }
        let report = run.into_report(&app, &pending.schedule, exec.clock());
        if let Some(cfg) = &plane.inference {
            if inference.observe(cfg, &report, exec.clock()) {
                // The visible landscape moved: rebuild the scheduler's
                // fault view and retire the incumbent equilibrium.
                tb.fault_model = inference.apply(&visible_base);
                state.incumbent = None;
            }
        }
        state.admit(scenario, plane, &app, &tb, &exec, arrivals);
        records.push(JobRecord {
            replication,
            stream: pending.arrival.stream,
            arrival_index: pending.arrival.index,
            warmup: pending.arrival.warmup,
            arrived: pending.arrival.time.as_f64(),
            admitted: pending.admitted.as_f64(),
            started: started.as_f64(),
            completed: exec.clock().as_f64(),
            queue_depth: pending.queue_depth,
            repair: pending.repair,
            schedule: pending.schedule,
            report,
        });
    }
    records
}

/// Produce a schedule at the executor's current clock under the plane's
/// policy, timing the solve. `incumbent: None` forces a full re-solve.
fn solve(
    scenario: &Scenario,
    plane: &ArrivalPlane,
    app: &Application,
    tb: &Testbed,
    exec: &OnlineExecutor,
    incumbent: Option<&Schedule>,
) -> (Schedule, RepairStats) {
    let scheduler = DeepScheduler {
        start_clock: exec.clock(),
        start_pull: exec.pulls(),
        ..scenario_scheduler(scenario)
    };
    let begin = std::time::Instant::now();
    let (schedule, mut stats) = match (plane.policy, incumbent) {
        (RepairPolicy::Incremental { budget }, Some(incumbent)) => {
            let outcome = scheduler.incremental_repair(app, tb, incumbent, budget);
            let stats = RepairStats {
                full_solve: outcome.fell_back,
                fell_back: outcome.fell_back,
                deviations: outcome.deviations,
                micros: 0,
            };
            (outcome.schedule, stats)
        }
        _ => (
            scheduler.schedule(app, tb),
            RepairStats { full_solve: true, ..RepairStats::default() },
        ),
    };
    stats.micros = begin.elapsed().as_micros() as u64;
    (schedule, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soak_scenario(arrivals: &str) -> Scenario {
        Scenario::parse(&format!(
            "name = \"plane\"\napp = \"text-processing\"\nreplications = 2\n\
             [testbed]\nbase = \"paper\"\ncalibrate = true\n{arrivals}"
        ))
        .unwrap()
    }

    #[test]
    fn the_plane_executes_every_arrival_in_order() {
        let scenario = soak_scenario(
            "[[arrivals]]\nmodel = \"deterministic\"\ninterval = 40.0\ncount = 4\nwarmup = 1\n",
        );
        let outcome = run_plane(&scenario, &ArrivalPlane::default());
        assert_eq!(outcome.jobs.len(), 8, "4 arrivals x 2 replications");
        assert_eq!(outcome.measured().count(), 6);
        for pair in outcome.jobs.chunks(4) {
            for w in pair.windows(2) {
                assert!(w[0].completed <= w[1].started + 1e-9, "jobs execute FIFO");
            }
        }
        for job in &outcome.jobs {
            assert!(job.admitted >= job.arrived - 1e-9, "admission never precedes arrival");
            assert!(job.started >= job.admitted - 1e-9);
            assert!(job.completed > job.started);
            assert!(job.queue_depth >= 1);
        }
        // Deterministic up to wall-clock solve timings.
        let stable = |mut o: ArrivalOutcome| {
            o.jobs.iter_mut().for_each(|j| j.repair.micros = 0);
            o
        };
        let again = run_plane(&scenario, &ArrivalPlane::default());
        assert_eq!(stable(outcome), stable(again), "the plane is deterministic");
    }

    #[test]
    fn a_fast_burst_builds_queue_and_the_first_admission_full_solves() {
        let scenario = soak_scenario("[[arrivals]]\nmodel = \"trace\"\ntimes = [0.0, 1.0, 2.0]\n");
        let outcome = run_plane(&scenario, &ArrivalPlane::default());
        let first = &outcome.jobs[0];
        assert!(first.repair.full_solve, "no incumbent yet: first admission re-solves");
        assert!(!first.repair.fell_back);
        // Later burst arrivals land while job 0 executes, so depth grows.
        assert!(outcome.max_queue_depth() >= 2, "burst stacks the queue");
        // With a stable mesh the incumbent stays an equilibrium: every
        // later admission repairs with zero deviations.
        for job in &outcome.jobs[1..3] {
            assert!(!job.repair.full_solve, "incumbent warm-start, not a re-solve");
            assert_eq!(job.repair.deviations, 0, "stable mesh keeps the incumbent");
        }
    }

    #[test]
    fn full_policy_resolves_every_admission() {
        let scenario =
            soak_scenario("[[arrivals]]\nmodel = \"deterministic\"\ninterval = 100.0\ncount = 3\n");
        let outcome = run_plane(
            &scenario,
            &ArrivalPlane { policy: RepairPolicy::Full, ..ArrivalPlane::default() },
        );
        assert_eq!(outcome.policy, "full-resolve");
        assert!(outcome.jobs.iter().all(|j| j.repair.full_solve));
        assert_eq!(outcome.fallbacks(), 0);
    }

    #[test]
    fn a_window_boundary_between_admissions_retires_the_incumbent() {
        // Two arrivals straddle a scripted outage boundary (start =
        // 500): the second admission must re-solve the full game, not
        // warm-start from a stale incumbent.
        let scenario = soak_scenario(
            "[[events]]\nkind = \"outage\"\ntarget = \"regional\"\nstart = 500.0\n\
             duration = 10000.0\n\
             [[arrivals]]\nmodel = \"trace\"\ntimes = [0.0, 2000.0]\n",
        );
        let outcome = run_plane(&scenario, &ArrivalPlane::default());
        for pair in outcome.jobs.chunks(2) {
            assert!(pair[0].repair.full_solve, "first admission always re-solves");
            assert!(pair[1].repair.full_solve, "the boundary at t=500 must retire the incumbent");
        }
    }
}
