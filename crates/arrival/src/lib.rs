//! # deep-arrival — online deployment under continuous arrivals
//!
//! The paper's experiments deploy one application per run; a registry
//! mesh in production sees a *stream* of deployment requests. This
//! crate adds that arrival plane on top of the DEEP game:
//!
//! - [`models`] turns a scenario's `[[arrivals]]` streams (Poisson,
//!   deterministic, trace-driven; seeded splitmix64, warm-up phases)
//!   into one merged request timeline.
//! - [`plane`] drives the [`deep_simulator::OnlineExecutor`] through
//!   that timeline: requests are admitted at wave barriers, each
//!   admission re-enters the game **incrementally**
//!   ([`deep_core::DeepScheduler::incremental_repair`]) warm-started
//!   from the incumbent equilibrium, with a full re-solve fallback
//!   past a deviation budget or across a scripted-window boundary.
//! - [`inference`] closes the loop for blind operators: streaks of
//!   fatal pulls synthesize [`deep_registry::OutageWindow`]s that feed
//!   back into the next repair.
//! - [`metrics`] aggregates the steady-state soak numbers: mean and
//!   percentile `Td`, time-to-react, queue depth, repair economics.
//!
//! A scenario without `[[arrivals]]` degenerates to a single request
//! at `t = 0` and reproduces [`deep_core::run_scenario`] byte for byte
//! — the static-parity contract pinned by `tests/arrival_plane.rs`.

pub mod inference;
pub mod metrics;
pub mod models;
pub mod plane;

pub use inference::{InferenceState, OutageInference};
pub use metrics::{ArrivalOutcome, JobRecord, RepairStats};
pub use models::{sample_arrivals, Arrival};
pub use plane::{run_plane, ArrivalPlane, RepairPolicy, DEFAULT_DEVIATION_BUDGET};
