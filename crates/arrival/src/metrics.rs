//! Steady-state soak metrics: per-job records on the shared executor
//! clock, aggregated into the arrival-plane headline numbers (mean and
//! tail `Td`, time-to-react, queue depth, repair economics).

use deep_core::percentile;
use deep_simulator::{RunReport, Schedule};
use serde::{Deserialize, Serialize};

/// What re-equilibration cost on one admission (plus any mid-queue
/// re-solves folded in before the job executed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RepairStats {
    /// A full game re-solve ran (first admission, policy choice, or
    /// scripted-window boundary crossing).
    pub full_solve: bool,
    /// Incremental repair gave up (budget exhausted, non-convergence,
    /// incumbent outside the mesh) and fell back to a full re-solve.
    pub fell_back: bool,
    /// Unilateral strategy deviations the repair's best-response
    /// dynamics applied before converging.
    pub deviations: usize,
    /// Wall-clock microseconds spent producing the schedule.
    pub micros: u64,
}

/// One deployment request's life on the arrival plane, from arrival to
/// completed execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Replication index (fault-seed stream position) the job ran in.
    pub replication: u32,
    /// `[[arrivals]]` stream that emitted the request.
    pub stream: usize,
    /// Position within that stream.
    pub arrival_index: usize,
    /// Warm-up job: executed but excluded from steady-state stats.
    pub warmup: bool,
    /// When the request arrived (executor seconds).
    pub arrived: f64,
    /// When the plane admitted it and produced its schedule.
    pub admitted: f64,
    /// When its first wave started executing.
    pub started: f64,
    /// When its last wave finished.
    pub completed: f64,
    /// Jobs in flight (this one included) at admission.
    pub queue_depth: usize,
    /// What producing the schedule cost.
    pub repair: RepairStats,
    /// The schedule the job ran under.
    pub schedule: Schedule,
    /// The realized execution report.
    pub report: RunReport,
}

impl JobRecord {
    /// Scheduling latency: how long after arrival the plane had a
    /// deployable schedule. The online-operations headline — repair is
    /// only worth having if this stays small under sustained load.
    pub fn time_to_react(&self) -> f64 {
        self.admitted - self.arrived
    }
}

/// Every job of every replication of one arrival-plane run, with the
/// steady-state aggregations the soak reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalOutcome {
    /// Scenario name (grid-expanded names keep their axis suffixes).
    pub scenario: String,
    /// The repair policy's name (`incremental-repair` / `full-resolve`).
    pub policy: String,
    /// All jobs, replication-major, arrival order within each.
    pub jobs: Vec<JobRecord>,
}

impl ArrivalOutcome {
    /// The measurement-phase jobs (warm-up excluded).
    pub fn measured(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| !j.warmup)
    }

    fn measured_td(&self) -> Vec<f64> {
        self.measured().flat_map(|j| j.report.microservices.iter()).map(|m| m.td.as_f64()).collect()
    }

    /// Mean realized per-microservice deployment time over measured
    /// jobs — the steady-state counterpart of
    /// [`deep_core::ScenarioOutcome::mean_td`].
    pub fn mean_td(&self) -> f64 {
        let td = self.measured_td();
        td.iter().sum::<f64>() / td.len().max(1) as f64
    }

    /// The `p`-th percentile (0–100) of measured per-microservice `Td`.
    pub fn percentile_td(&self, p: f64) -> f64 {
        percentile(&self.measured_td(), p)
    }

    /// Mean scheduling latency (arrival → schedule in hand) over
    /// measured jobs.
    pub fn mean_time_to_react(&self) -> f64 {
        let n = self.measured().count();
        self.measured().map(JobRecord::time_to_react).sum::<f64>() / n.max(1) as f64
    }

    /// Mean jobs in flight at admission, measured jobs.
    pub fn mean_queue_depth(&self) -> f64 {
        let n = self.measured().count();
        self.measured().map(|j| j.queue_depth as f64).sum::<f64>() / n.max(1) as f64
    }

    /// Deepest backlog any measured admission saw.
    pub fn max_queue_depth(&self) -> usize {
        self.measured().map(|j| j.queue_depth).max().unwrap_or(0)
    }

    /// Mean realized makespan over measured jobs.
    pub fn mean_makespan(&self) -> f64 {
        let n = self.measured().count();
        self.measured().map(|j| j.report.makespan.as_f64()).sum::<f64>() / n.max(1) as f64
    }

    /// Measured microservice deployments that lost at least one source
    /// fatally.
    pub fn failovers(&self) -> usize {
        self.measured()
            .flat_map(|j| j.report.microservices.iter())
            .filter(|m| !m.failed_sources.is_empty())
            .count()
    }

    /// Measured admissions where incremental repair gave up and
    /// re-solved from scratch.
    pub fn fallbacks(&self) -> usize {
        self.measured().filter(|j| j.repair.fell_back).count()
    }

    /// Mean wall-clock microseconds spent producing each measured
    /// schedule — the repair-vs-full-resolve headline.
    pub fn mean_repair_micros(&self) -> f64 {
        let n = self.measured().count();
        self.measured().map(|j| j.repair.micros as f64).sum::<f64>() / n.max(1) as f64
    }

    /// Total strategy deviations repair applied across measured jobs.
    pub fn total_deviations(&self) -> usize {
        self.measured().map(|j| j.repair.deviations).sum()
    }
}
