//! Mixed strategies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Tolerance for probability arithmetic across the crate.
pub const EPS: f64 = 1e-9;

/// A probability distribution over a player's pure strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedStrategy(Vec<f64>);

impl MixedStrategy {
    /// Construct, validating non-negativity and unit mass.
    pub fn new(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "strategy over zero actions");
        let sum: f64 = probs.iter().sum();
        assert!(
            probs.iter().all(|&p| p >= -EPS) && (sum - 1.0).abs() < 1e-6,
            "probabilities must be non-negative and sum to 1 (sum = {sum})"
        );
        MixedStrategy(probs.into_iter().map(|p| p.max(0.0)).collect())
    }

    /// The pure strategy playing action `i` among `n`.
    pub fn pure(i: usize, n: usize) -> Self {
        assert!(i < n, "action index out of range");
        let mut p = vec![0.0; n];
        p[i] = 1.0;
        MixedStrategy(p)
    }

    /// Uniform mixing over `n` actions.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        MixedStrategy(vec![1.0 / n as f64; n])
    }

    /// Probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.0
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false — strategies are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Actions played with probability > EPS.
    pub fn support(&self) -> Vec<usize> {
        self.0.iter().enumerate().filter(|(_, &p)| p > EPS).map(|(i, _)| i).collect()
    }

    /// `Some(i)` when the strategy is (numerically) pure.
    pub fn as_pure(&self) -> Option<usize> {
        let support = self.support();
        match support.as_slice() {
            [only] if self.0[*only] > 1.0 - 1e-6 => Some(*only),
            _ => None,
        }
    }

    /// The most likely action (ties broken towards the lower index).
    pub fn mode(&self) -> usize {
        let mut best = 0usize;
        for (i, &p) in self.0.iter().enumerate().skip(1) {
            if p > self.0[best] {
                best = i;
            }
        }
        best
    }

    /// Numerical equality within `tol`.
    pub fn approx_eq(&self, other: &MixedStrategy, tol: f64) -> bool {
        self.len() == other.len()
            && self.0.iter().zip(other.probs()).all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Display for MixedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|p| format!("{p:.3}")).collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_and_uniform_constructors() {
        let p = MixedStrategy::pure(1, 3);
        assert_eq!(p.probs(), &[0.0, 1.0, 0.0]);
        assert_eq!(p.as_pure(), Some(1));
        assert_eq!(p.support(), vec![1]);

        let u = MixedStrategy::uniform(4);
        assert_eq!(u.support(), vec![0, 1, 2, 3]);
        assert_eq!(u.as_pure(), None);
    }

    #[test]
    fn mode_picks_heaviest_action() {
        let s = MixedStrategy::new(vec![0.2, 0.5, 0.3]);
        assert_eq!(s.mode(), 1);
        // Pure tie-break: lower index.
        let t = MixedStrategy::new(vec![0.5, 0.5]);
        assert_eq!(t.mode(), 0);
    }

    #[test]
    fn support_filters_zero_mass() {
        let s = MixedStrategy::new(vec![0.0, 0.7, 0.0, 0.3]);
        assert_eq!(s.support(), vec![1, 3]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = MixedStrategy::new(vec![0.5, 0.5]);
        let b = MixedStrategy::new(vec![0.5 + 1e-10, 0.5 - 1e-10]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = MixedStrategy::new(vec![0.6, 0.4]);
        assert!(!a.approx_eq(&c, 1e-3));
        assert!(!a.approx_eq(&MixedStrategy::uniform(3), 1.0), "length mismatch");
    }

    #[test]
    fn display_formats() {
        let s = MixedStrategy::new(vec![0.25, 0.75]);
        assert_eq!(format!("{s}"), "(0.250, 0.750)");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn non_unit_mass_rejected() {
        MixedStrategy::new(vec![0.5, 0.4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pure_index_validated() {
        MixedStrategy::pure(3, 3);
    }
}
